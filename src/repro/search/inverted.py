"""A positional inverted index.

Postings map ``term → {doc_id → [positions]}``.  Positions are token
offsets within the analyzed document, which is what makes exact phrase
queries possible: *"coal mining"* matches documents where the two terms
occur at consecutive positions.

The analyzer reuses the KWIC subject index's notion of a significant word
(folded, stopword-free, length ≥ 3) but keeps *positions* from the full
token stream, so phrases survive intervening stopwords exactly as typed:
"law of coal" is the phrase [law, of→skipped, coal] with positions 0 and 2.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.kwic import MIN_KEYWORD_LENGTH, STOPWORDS
from repro.names.normalize import strip_diacritics

_STRIP = "\"'()[]{}.,;:!?*-—"


def analyze(text: str) -> list[tuple[str, int]]:
    """Tokenize ``text`` into ``(term, position)`` pairs.

    Positions index the raw token stream (stopwords and short tokens hold
    their slot but produce no term), so phrase adjacency reflects the
    original text.

    >>> analyze("The Law of Coal")
    [('law', 1), ('coal', 3)]
    """
    folded = strip_diacritics(text).casefold()
    out: list[tuple[str, int]] = []
    for position, raw in enumerate(folded.split()):
        word = raw.strip(_STRIP).replace("'", "")
        if len(word) < MIN_KEYWORD_LENGTH or word in STOPWORDS:
            continue
        if not any(c.isalpha() for c in word):
            continue
        out.append((word, position))
    return out


class InvertedIndex:
    """Positional inverted index over integer document ids.

    >>> index = InvertedIndex()
    >>> index.add(1, "The Law of Coal")
    >>> index.add(2, "Coal Mining Law")
    >>> sorted(index.search_and(["coal", "law"]))
    [1, 2]
    >>> index.search_phrase(["coal", "mining"])
    [2]
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[int, list[int]]] = {}
        self._doc_lengths: dict[int, int] = {}  # terms per document

    # -- maintenance ---------------------------------------------------------

    def add(self, doc_id: int, text: str) -> None:
        """Index ``text`` under ``doc_id`` (re-adding replaces)."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        terms = analyze(text)
        self._doc_lengths[doc_id] = len(terms)
        for term, position in terms:
            self._postings.setdefault(term, {}).setdefault(doc_id, []).append(position)

    def remove(self, doc_id: int) -> bool:
        """Drop a document; returns True when it was indexed."""
        if doc_id not in self._doc_lengths:
            return False
        del self._doc_lengths[doc_id]
        dead_terms = []
        for term, postings in self._postings.items():
            postings.pop(doc_id, None)
            if not postings:
                dead_terms.append(term)
        for term in dead_terms:
            del self._postings[term]
        return True

    # -- statistics -------------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    def vocabulary(self) -> list[str]:
        """All indexed terms, sorted."""
        return sorted(self._postings)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term.casefold(), ()))

    def document_length(self, doc_id: int) -> int:
        """Significant-term count of ``doc_id`` (0 when unknown)."""
        return self._doc_lengths.get(doc_id, 0)

    def term_frequency(self, term: str, doc_id: int) -> int:
        """Occurrences of ``term`` in ``doc_id``."""
        return len(self._postings.get(term.casefold(), {}).get(doc_id, ()))

    def postings(self, term: str) -> Mapping[int, list[int]]:
        """The raw postings of ``term`` (read-only view semantics)."""
        return self._postings.get(term.casefold(), {})

    # -- retrieval ------------------------------------------------------------------

    def search_or(self, terms: Iterable[str]) -> set[int]:
        """Documents containing *any* of ``terms``."""
        out: set[int] = set()
        for term in terms:
            out.update(self._postings.get(term.casefold(), ()))
        return out

    def search_and(self, terms: Iterable[str]) -> set[int]:
        """Documents containing *all* of ``terms``.

        Intersects smallest-posting-first, the classic optimization.
        """
        posting_sets = []
        for term in terms:
            docs = self._postings.get(term.casefold())
            if not docs:
                return set()
            posting_sets.append(docs)
        posting_sets.sort(key=len)
        result = set(posting_sets[0])
        for docs in posting_sets[1:]:
            result.intersection_update(docs)
            if not result:
                break
        return result

    def search_phrase(self, terms: list[str]) -> list[int]:
        """Documents containing ``terms`` in order as a phrase.

        ``terms`` are the phrase's *significant* words; each consecutive
        pair may be separated by at most two stopword/short-token slots in
        the original text, so ``["law", "coal"]`` matches "The Law of
        Coal" but not "law … five words … coal".
        """
        if not terms:
            return []
        analyzed = [t.casefold() for t in terms]
        candidates = self.search_and(analyzed)
        hits = []
        for doc_id in candidates:
            first_positions = self._postings[analyzed[0]][doc_id]
            for start in first_positions:
                offset = start
                ok = True
                for term in analyzed[1:]:
                    offset = _next_position(self._postings[term][doc_id], offset)
                    if offset is None:
                        ok = False
                        break
                if ok:
                    hits.append(doc_id)
                    break
        return sorted(hits)


def _next_position(positions: list[int], after: int) -> int | None:
    """The position in ``positions`` that extends a phrase ending at
    ``after`` — i.e. the smallest position > ``after`` within a stopword
    gap of at most 2 slots."""
    import bisect

    i = bisect.bisect_right(positions, after)
    if i < len(positions) and positions[i] - after <= 3:
        return positions[i]
    return None

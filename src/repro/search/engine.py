"""TF-IDF-ranked title search over publication records.

Query syntax: bare words are AND-ed; a double-quoted span is an exact
phrase.  Results are ranked by the standard smoothed TF-IDF sum with
document-length normalization, so short on-point titles beat long ones
that merely mention every term.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterable

from repro.core.entry import PublicationRecord
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.resilience.deadline import Guard
from repro.search.inverted import InvertedIndex, analyze

_QUERIES = _metrics.counter("search.queries")
_POSTINGS_SCANNED = _metrics.counter("search.postings.scanned")
_CANDIDATES_SCORED = _metrics.counter("search.candidates.scored")


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One ranked result."""

    record_id: int
    score: float
    title: str


_PHRASE = re.compile(r'"([^"]*)"')


def _parse_query(query: str) -> tuple[list[str], list[list[str]]]:
    """Split a query into loose terms and quoted phrases (analyzed)."""
    phrases: list[list[str]] = []

    def grab(match: re.Match[str]) -> str:
        words = [term for term, _ in analyze(match.group(1))]
        if words:
            phrases.append(words)
        return " "

    rest = _PHRASE.sub(grab, query)
    terms = [term for term, _ in analyze(rest)]
    return terms, phrases


class TitleSearchEngine:
    """Searchable view over a fixed set of records.

    >>> records = [
    ...     PublicationRecord.create(1, "The Law of Coal", ["A, B."], "74:283 (1972)"),
    ...     PublicationRecord.create(2, "Coal Mining Law", ["C, D."], "76:257 (1974)"),
    ... ]
    >>> engine = TitleSearchEngine(records)
    >>> [hit.record_id for hit in engine.search("coal law")]
    [1, 2]
    >>> [hit.record_id for hit in engine.search('"coal mining"')]
    [2]
    """

    def __init__(self, records: Iterable[PublicationRecord]):
        self.index = InvertedIndex()
        self._titles: dict[int, str] = {}
        for record in records:
            self.index.add(record.record_id, record.title)
            self._titles[record.record_id] = record.title

    def __len__(self) -> int:
        return self.index.document_count

    def search(
        self, query: str, *, k: int | None = None, guard: Guard | None = None
    ) -> list[SearchHit]:
        """Ranked hits for ``query`` (AND semantics; quoted = phrase).

        An empty or all-stopword query returns no hits.  ``guard`` (a
        :class:`repro.resilience.Guard`) is ticked once per candidate
        scored, so a deadline or cancellation interrupts the ranking
        loop on broad queries.
        """
        _QUERIES.inc()
        if guard is not None:
            guard.check()
        terms, phrases = _parse_query(query)
        all_terms = terms + [t for phrase in phrases for t in phrase]
        if not all_terms:
            return []

        # Postings scanned = total posting-list length across probed
        # terms (the work AND-intersection walks through).
        _POSTINGS_SCANNED.inc(
            sum(self.index.document_frequency(term) for term in all_terms)
        )
        candidates = self.index.search_and(all_terms)
        for phrase in phrases:
            candidates &= set(self.index.search_phrase(phrase))
            if not candidates:
                return []

        _CANDIDATES_SCORED.inc(len(candidates))
        n = max(self.index.document_count, 1)
        hits = []
        for doc_id in candidates:
            if guard is not None:
                guard.tick()
            score = 0.0
            for term in all_terms:
                tf = self.index.term_frequency(term, doc_id)
                df = self.index.document_frequency(term)
                idf = math.log((n + 1) / (df + 1)) + 1.0
                score += tf * idf
            length = self.index.document_length(doc_id) or 1
            score /= math.sqrt(length)
            hits.append(SearchHit(record_id=doc_id, score=score, title=self._titles[doc_id]))
        hits.sort(key=lambda h: (-h.score, h.record_id))
        out = hits[:k] if k is not None else hits
        _logging.debug(
            "search.query",
            query=query,
            terms=len(all_terms),
            candidates=len(candidates),
            hits=len(out),
        )
        return out

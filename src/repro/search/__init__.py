"""Full-text title search.

`LIKE "%coal%"` scans; an editor searching 30 volumes of titles wants an
inverted index.  This package provides one, built from scratch:

* :mod:`inverted` — positional inverted index (term → doc → positions)
  with boolean AND/OR retrieval and exact phrase queries;
* :mod:`engine` — :class:`TitleSearchEngine`: records in, TF-IDF-ranked
  results out, with the same analyzer vocabulary as the KWIC subject
  index so search and the printed index agree on terms.

The repository facade exposes it as ``repo.search_titles(...)``.
"""

from repro.search.inverted import InvertedIndex, analyze
from repro.search.engine import SearchHit, TitleSearchEngine
from repro.search.similar import RelatedArticles, RelatedHit

__all__ = [
    "InvertedIndex",
    "analyze",
    "SearchHit",
    "TitleSearchEngine",
    "RelatedArticles",
    "RelatedHit",
]

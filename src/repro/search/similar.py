"""Related-article recommendations by title similarity.

Classic vector-space model: each title is a TF-IDF vector over the search
analyzer's vocabulary; relatedness is cosine similarity.  This powers the
"see also" lists editors attach to survey articles — e.g. the corpus's
black-lung literature clusters tightly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.entry import PublicationRecord
from repro.errors import RecordNotFoundError
from repro.search.inverted import analyze


@dataclass(frozen=True, slots=True)
class RelatedHit:
    """One related article."""

    record_id: int
    similarity: float  #: cosine in (0, 1]
    title: str


class RelatedArticles:
    """Precomputed TF-IDF vectors with cosine lookups.

    >>> records = [
    ...     PublicationRecord.create(1, "Black Lung Benefits Reform", ["A, B."], "82:1 (1980)"),
    ...     PublicationRecord.create(2, "The Federal Black Lung Program", ["C, D."], "85:677 (1983)"),
    ...     PublicationRecord.create(3, "Zoning Ordinance Use Restrictions", ["E, F."], "78:522 (1976)"),
    ... ]
    >>> related = RelatedArticles(records)
    >>> [hit.record_id for hit in related.related_to(1, k=1)]
    [2]
    """

    def __init__(self, records: Iterable[PublicationRecord]):
        docs: dict[int, dict[str, int]] = {}
        df: dict[str, int] = {}
        titles: dict[int, str] = {}
        for record in records:
            counts: dict[str, int] = {}
            for term, _ in analyze(record.title):
                counts[term] = counts.get(term, 0) + 1
            docs[record.record_id] = counts
            titles[record.record_id] = record.title
            for term in counts:
                df[term] = df.get(term, 0) + 1

        n = max(len(docs), 1)
        self._titles = titles
        self._vectors: dict[int, dict[str, float]] = {}
        for doc_id, counts in docs.items():
            vector = {
                term: tf * (math.log((n + 1) / (df[term] + 1)) + 1.0)
                for term, tf in counts.items()
            }
            norm = math.sqrt(sum(w * w for w in vector.values()))
            if norm:
                vector = {t: w / norm for t, w in vector.items()}
            self._vectors[doc_id] = vector

    def __len__(self) -> int:
        return len(self._vectors)

    def similarity(self, a: int, b: int) -> float:
        """Cosine similarity between two records' title vectors."""
        va = self._vector(a)
        vb = self._vector(b)
        if len(vb) < len(va):
            va, vb = vb, va
        return sum(weight * vb.get(term, 0.0) for term, weight in va.items())

    def related_to(self, record_id: int, *, k: int = 5) -> list[RelatedHit]:
        """The ``k`` most similar other records (zero-similarity excluded)."""
        anchor = self._vector(record_id)
        hits = []
        for other_id, vector in self._vectors.items():
            if other_id == record_id:
                continue
            score = sum(weight * vector.get(term, 0.0) for term, weight in anchor.items())
            if score > 0.0:
                hits.append(
                    RelatedHit(
                        record_id=other_id,
                        similarity=score,
                        title=self._titles[other_id],
                    )
                )
        hits.sort(key=lambda h: (-h.similarity, h.record_id))
        return hits[:k]

    def _vector(self, record_id: int) -> dict[str, float]:
        try:
            return self._vectors[record_id]
        except KeyError:
            raise RecordNotFoundError(record_id) from None

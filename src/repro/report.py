"""Corpus report generator: one Markdown document answering "what is in
this corpus?"

Combines the statistics, linter, bibliometrics, and trend tooling into the
report an editorial board reads once a year.  Pure function of the record
set; rendering is deterministic so reports diff cleanly between years.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.coauthors import collaboration_stats
from repro.analysis.productivity import gini_coefficient, head_share, productivity
from repro.analysis.trends import top_keywords
from repro.core.builder import build_index
from repro.core.entry import PublicationRecord
from repro.core.lint import lint_index
from repro.core.toc import build_toc


def corpus_report(
    records: Sequence[PublicationRecord],
    *,
    title: str = "Corpus report",
    keyword_stopwords: Iterable[str] = (),
    top_authors: int = 10,
    top_terms: int = 10,
) -> str:
    """Render the full corpus report as Markdown.

    Sections: overview, volumes, authors (productivity + collaboration),
    topics, and editorial issues (linter findings).  Empty corpora produce
    a minimal valid report rather than an error.
    """
    lines: list[str] = [f"# {title}", ""]

    index = build_index(records)
    stats = index.statistics()
    toc = build_toc(records)

    # -- overview ------------------------------------------------------------
    lines += ["## Overview", ""]
    span = (
        f"{stats.year_min}–{stats.year_max}" if stats.year_min is not None else "n/a"
    )
    lines += [
        f"- records: **{len(records)}**",
        f"- index rows: **{stats.entry_count}** under "
        f"**{stats.author_count}** author headings",
        f"- student material: **{stats.student_entry_count}** rows "
        f"({stats.student_share:.1%})",
        f"- span: **{span}** across **{len(toc)}** volumes",
        "",
    ]

    # -- volumes --------------------------------------------------------------
    if len(toc):
        lines += ["## Volumes", "", "| volume | years | articles |", "| --- | --- | --- |"]
        for volume in toc:
            lines.append(
                f"| {volume.volume} | {volume.year_label} | {volume.article_count} |"
            )
        lines.append("")

    # -- authors ----------------------------------------------------------------
    table = productivity(records)
    if table:
        counts = [p.total for p in table]
        lines += ["## Authors", ""]
        lines += [
            f"- distinct authors: **{len(table)}**",
            f"- output Gini coefficient: **{gini_coefficient(counts):.3f}**; "
            f"top-10 share: **{head_share(counts, 10):.1%}**",
        ]
        collab = collaboration_stats(records)
        lines.append(
            f"- collaboration: **{collab.collaborations}** co-authoring pairs, "
            f"**{collab.solo_authors}** solo authors, largest cluster "
            f"**{collab.largest_component}**"
        )
        lines += ["", "| pieces | author | active |", "| --- | --- | --- |"]
        for p in table[:top_authors]:
            lines.append(
                f"| {p.total} | {p.author.inverted()} | {p.first_year}–{p.last_year} |"
            )
        lines.append("")

    # -- topics --------------------------------------------------------------------
    terms = top_keywords(records, k=top_terms, stopwords=keyword_stopwords)
    if terms:
        lines += ["## Topics", ""]
        lines.append(
            "Top title keywords: "
            + ", ".join(f"**{word}** ({count})" for word, count in terms)
        )
        lines.append("")

    # -- editorial issues ---------------------------------------------------------------
    issues = lint_index(index)
    lines += ["## Editorial issues", ""]
    if issues:
        for issue in issues:
            lines.append(f"- `{issue.code}` — {issue.message}")
    else:
        lines.append("No issues found.")
    lines.append("")

    return "\n".join(lines)

"""Index linter: editorial checks an index editor runs before printing.

Checks a built :class:`~repro.core.builder.AuthorIndex` for the defect
classes the scanned artifact actually exhibits:

* ``suspect-duplicate-heading`` — adjacent headings whose names are nearly
  identical (OCR-split authors like *Herdon/Hemdon*);
* ``volume-year-outlier`` — citations whose printed year disagrees with
  the rest of their volume (OCR-damaged digits);
* ``empty-given-name`` — headings with a bare surname (usually a parsing
  casualty);
* ``title-case-shouting`` — titles that are entirely upper case;
* ``misordered`` — entries out of collation order (hand-edited data).

The linter reports; it never mutates.  Fixes live elsewhere
(:mod:`repro.names.resolution`, :mod:`repro.textproc.ocr`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.citation.validate import check_volume_year_consistency
from repro.core.collation import collation_key
from repro.names.similarity import name_similarity

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex


@dataclass(frozen=True, slots=True)
class LintIssue:
    """One finding: a machine-usable code plus a human explanation."""

    code: str
    message: str
    position: int | None = None  # entry index in the printed order

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" @{self.position}" if self.position is not None else ""
        return f"[{self.code}{where}] {self.message}"


#: Similarity above which two adjacent distinct headings look like one
#: OCR-split person.
SUSPECT_SIMILARITY = 0.90


def lint_index(index: "AuthorIndex") -> list[LintIssue]:
    """Run every check; returns findings ordered by position."""
    issues: list[LintIssue] = []
    issues.extend(_check_ordering(index))
    issues.extend(_check_duplicate_headings(index))
    issues.extend(_check_citations(index))
    issues.extend(_check_names_and_titles(index))
    issues.sort(key=lambda i: (i.position if i.position is not None else -1, i.code))
    return issues


def _check_ordering(index: "AuthorIndex") -> list[LintIssue]:
    issues = []
    previous_key = None
    for position, entry in enumerate(index):
        key = collation_key(entry, index.options)
        if previous_key is not None and key < previous_key:
            issues.append(
                LintIssue(
                    "misordered",
                    f"{entry.author.inverted()!r} files before its predecessor",
                    position,
                )
            )
        previous_key = key
    return issues


def _check_duplicate_headings(index: "AuthorIndex") -> list[LintIssue]:
    issues = []
    groups = index.groups()
    position = 0
    for prev, current in zip(groups, groups[1:]):
        position += len(prev.entries)
        if prev.author.identity_key() == current.author.identity_key():
            continue  # student/non-student split of the same person: fine
        score = name_similarity(prev.author, current.author)
        if score >= SUSPECT_SIMILARITY:
            issues.append(
                LintIssue(
                    "suspect-duplicate-heading",
                    f"{prev.heading!r} and {current.heading!r} look like one "
                    f"person (similarity {score:.2f}); run entity resolution",
                    position,
                )
            )
    return issues


def _check_citations(index: "AuthorIndex") -> list[LintIssue]:
    citations = [entry.citation for entry in index]
    by_citation: dict[object, int] = {}
    for position, entry in enumerate(index):
        by_citation.setdefault(entry.citation, position)
    return [
        LintIssue(
            "volume-year-outlier",
            str(problem),
            by_citation.get(problem.citation),
        )
        for problem in check_volume_year_consistency(citations)
    ]


def _check_names_and_titles(index: "AuthorIndex") -> list[LintIssue]:
    issues = []
    seen_bare: set[str] = set()
    for position, entry in enumerate(index):
        author = entry.author
        if not author.given and author.surname not in seen_bare:
            seen_bare.add(author.surname)
            issues.append(
                LintIssue(
                    "empty-given-name",
                    f"heading {author.surname!r} has no given name",
                    position,
                )
            )
        alpha = [c for c in entry.title if c.isalpha()]
        if alpha and all(c.isupper() for c in alpha):
            issues.append(
                LintIssue(
                    "title-case-shouting",
                    f"title is all upper case: {entry.title[:50]!r}",
                    position,
                )
            )
    return issues

"""Per-volume tables of contents — the third front-matter artifact.

A cumulative index issue opens with a volume-by-volume table of contents:
articles in page order within each volume.  Trivial on top of the record
model, but it completes the front-matter bundle the artifact's issue
carries (author index, title index, contents) and gives the query engine a
natural GROUP BY workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.entry import PublicationRecord


@dataclass(frozen=True, slots=True)
class VolumeContents:
    """One volume's articles in page order."""

    volume: int
    year_min: int
    year_max: int
    records: tuple[PublicationRecord, ...]

    @property
    def article_count(self) -> int:
        return len(self.records)

    @property
    def year_label(self) -> str:
        if self.year_min == self.year_max:
            return str(self.year_min)
        return f"{self.year_min}-{self.year_max}"


class TableOfContents:
    """All volumes of a corpus, ascending."""

    def __init__(self, volumes: Sequence[VolumeContents]):
        self._volumes = tuple(volumes)

    def __len__(self) -> int:
        return len(self._volumes)

    def __iter__(self) -> Iterator[VolumeContents]:
        return iter(self._volumes)

    def volume(self, number: int) -> VolumeContents | None:
        """Contents of volume ``number``, or None."""
        for vc in self._volumes:
            if vc.volume == number:
                return vc
        return None

    def render_text(self, *, width: int = 78) -> str:
        """Headed text rendering, one block per volume."""
        import textwrap

        lines: list[str] = []
        body = width - 8
        for vc in self._volumes:
            lines.append(f"VOLUME {vc.volume} ({vc.year_label})")
            for record in vc.records:
                marker = "*" if record.is_student_work else ""
                authors = "; ".join(a.inverted() for a in record.authors)
                head = f"{record.title}{marker} — {authors}"
                wrapped = textwrap.wrap(head, body) or [""]
                first, *rest = wrapped
                lines.append(f"  {first:<{body}} {record.citation.page:>5}")
                lines.extend(f"  {cont}" for cont in rest)
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


def build_toc(records: Iterable[PublicationRecord]) -> TableOfContents:
    """Group records by volume, pages ascending within each volume.

    >>> from repro.core.entry import PublicationRecord
    >>> toc = build_toc([
    ...     PublicationRecord.create(1, "B", ["X, Y."], "70:163 (1967)"),
    ...     PublicationRecord.create(2, "A", ["X, Y."], "70:20 (1967)"),
    ...     PublicationRecord.create(3, "C", ["X, Y."], "69:1 (1966)"),
    ... ])
    >>> [(v.volume, [r.citation.page for r in v.records]) for v in toc]
    [(69, [1]), (70, [20, 163])]
    """
    by_volume: dict[int, list[PublicationRecord]] = {}
    for record in records:
        by_volume.setdefault(record.citation.volume, []).append(record)

    volumes = []
    for number in sorted(by_volume):
        group = sorted(by_volume[number], key=lambda r: (r.citation.page, r.title))
        years = [r.citation.year for r in group]
        volumes.append(
            VolumeContents(
                volume=number,
                year_min=min(years),
                year_max=max(years),
                records=tuple(group),
            )
        )
    return TableOfContents(volumes)

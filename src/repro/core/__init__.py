"""The paper's artifact pipeline: records in, author index out.

* :mod:`entry` — publication records and index rows
* :mod:`collation` — the ordering rules the printed index obeys
* :mod:`builder` — :class:`AuthorIndexBuilder`, the primary public API
* :mod:`pagination` — page layout (running headers, volume footers)
* :mod:`render` — text / markdown / HTML / LaTeX / JSON renderers
* :mod:`statistics` — corpus and index statistics
* :mod:`diffing` — structural index comparison for the fidelity experiment
"""

from repro.core.entry import IndexEntry, PublicationRecord
from repro.core.collation import CollationOptions, collation_key, sort_entries
from repro.core.builder import AuthorIndex, AuthorIndexBuilder, AuthorGroup, build_index
from repro.core.pagination import Page, PageLayout, paginate
from repro.core.statistics import IndexStatistics
from repro.core.diffing import IndexDiff, diff_indexes
from repro.core.incremental import IncrementalIndexer
from repro.core.lint import LintIssue, lint_index
from repro.core.titleindex import TitleIndex, TitleIndexBuilder, build_title_index
from repro.core.kwic import KwicIndex, KwicIndexBuilder, build_kwic_index
from repro.core.toc import TableOfContents, build_toc

__all__ = [
    "IndexEntry",
    "PublicationRecord",
    "CollationOptions",
    "collation_key",
    "sort_entries",
    "AuthorIndex",
    "AuthorIndexBuilder",
    "AuthorGroup",
    "build_index",
    "Page",
    "PageLayout",
    "paginate",
    "IndexStatistics",
    "IndexDiff",
    "diff_indexes",
    "TitleIndex",
    "TitleIndexBuilder",
    "build_title_index",
    "KwicIndex",
    "KwicIndexBuilder",
    "build_kwic_index",
    "TableOfContents",
    "build_toc",
    "IncrementalIndexer",
    "LintIssue",
    "lint_index",
]

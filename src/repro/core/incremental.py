"""Incremental index maintenance.

A cumulative index grows by one volume a year; rebuilding the whole thing
for every added article is wasteful once the corpus is large.
:class:`IncrementalIndexer` keeps the entry list sorted under the same
collation as :class:`~repro.core.builder.AuthorIndexBuilder` and applies
record additions/removals in O(log n + k) per record via binary insertion,
guaranteeing at all times::

    indexer.snapshot() == AuthorIndexBuilder().add_records(all_records).build()

(the equivalence the tests assert).  E2's companion benchmark measures the
incremental-vs-rebuild win.
"""

from __future__ import annotations

import bisect
from typing import Iterable

from repro.core.builder import AuthorIndex
from repro.core.collation import CollationOptions, DEFAULT_OPTIONS, collation_key
from repro.core.entry import IndexEntry, PublicationRecord, explode
from repro.errors import RecordNotFoundError, ValidationError
from repro.obs import metrics as _metrics

_RECORDS_ADDED = _metrics.counter("incremental.records.added")
_RECORDS_REMOVED = _metrics.counter("incremental.records.removed")
_ENTRIES_INSERTED = _metrics.counter("incremental.entries.inserted")
#: Rows whose sorted position was already occupied by an identical row —
#: the incremental rebuild's "cache hit": no insertion work needed.
_DEDUPE_HITS = _metrics.counter("incremental.dedupe.hits")


class IncrementalIndexer:
    """Maintains a sorted, de-duplicated entry list under record churn.

    Parameters
    ----------
    options:
        Collation rules (must stay fixed for the life of the indexer; the
        sort keys are cached).

    >>> indexer = IncrementalIndexer()
    >>> indexer.add(PublicationRecord.create(1, "T", ["Zed, A."], "90:1 (1987)"))
    >>> indexer.add(PublicationRecord.create(2, "U", ["Abel, B."], "90:2 (1987)"))
    >>> [e.author.surname for e in indexer.snapshot()]
    ['Abel', 'Zed']
    >>> indexer.remove(1)
    >>> [e.author.surname for e in indexer.snapshot()]
    ['Abel']
    """

    def __init__(self, *, options: CollationOptions = DEFAULT_OPTIONS):
        self.options = options
        self._keys: list[tuple] = []
        self._entries: list[IndexEntry] = []
        self._row_keys: dict[tuple, int] = {}  # row_key -> multiplicity
        self._by_record: dict[int, list[IndexEntry]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def record_count(self) -> int:
        return len(self._by_record)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._by_record

    # -- mutation ------------------------------------------------------------

    def add(self, record: PublicationRecord) -> None:
        """Insert one record's rows at their collation positions."""
        if record.record_id in self._by_record:
            raise ValidationError(
                f"record {record.record_id} already indexed", field="record_id"
            )
        added: list[IndexEntry] = []
        for entry in explode(record):
            row_key = entry.row_key()
            count = self._row_keys.get(row_key, 0)
            self._row_keys[row_key] = count + 1
            added.append(entry)
            if count:
                _DEDUPE_HITS.inc()
                continue  # duplicate row (e.g. identical record content)
            key = collation_key(entry, self.options)
            at = bisect.bisect_left(self._keys, key)
            self._keys.insert(at, key)
            self._entries.insert(at, entry)
            _ENTRIES_INSERTED.inc()
        self._by_record[record.record_id] = added
        _RECORDS_ADDED.inc()

    def add_all(self, records: Iterable[PublicationRecord]) -> None:
        """Insert many records in one sorted merge.

        Equivalent to repeated :meth:`add` — same entries, same metrics —
        but collects every new row into one sorted run and merges it with
        the entry list in a single O(n + k) pass instead of k binary
        insertions (each of which shifts the tail).  A duplicate record
        id — already indexed, or repeated within the batch — raises
        before anything mutates.
        """
        records = list(records)
        if not records:
            return
        batch_ids: set[int] = set()
        for record in records:
            if record.record_id in self._by_record or record.record_id in batch_ids:
                raise ValidationError(
                    f"record {record.record_id} already indexed", field="record_id"
                )
            batch_ids.add(record.record_id)
        fresh: list[tuple[tuple, IndexEntry]] = []
        pending: dict[tuple, int] = {}
        by_record: dict[int, list[IndexEntry]] = {}
        dedupe_hits = 0
        for record in records:
            added: list[IndexEntry] = []
            for entry in explode(record):
                row_key = entry.row_key()
                count = self._row_keys.get(row_key, 0) + pending.get(row_key, 0)
                pending[row_key] = pending.get(row_key, 0) + 1
                added.append(entry)
                if count:
                    dedupe_hits += 1
                    continue
                fresh.append((collation_key(entry, self.options), entry))
            by_record[record.record_id] = added
        if fresh:
            # collation_key totally orders distinct rows, so the merge has
            # no ties to break and the result matches repeated bisection.
            fresh.sort(key=lambda pair: pair[0])
            merged_keys: list[tuple] = []
            merged_entries: list[IndexEntry] = []
            old_i = new_i = 0
            while old_i < len(self._keys) and new_i < len(fresh):
                if fresh[new_i][0] < self._keys[old_i]:
                    key, entry = fresh[new_i]
                    merged_keys.append(key)
                    merged_entries.append(entry)
                    new_i += 1
                else:
                    merged_keys.append(self._keys[old_i])
                    merged_entries.append(self._entries[old_i])
                    old_i += 1
            merged_keys.extend(self._keys[old_i:])
            merged_entries.extend(self._entries[old_i:])
            for key, entry in fresh[new_i:]:
                merged_keys.append(key)
                merged_entries.append(entry)
            self._keys = merged_keys
            self._entries = merged_entries
        for row_key, count in pending.items():
            self._row_keys[row_key] = self._row_keys.get(row_key, 0) + count
        self._by_record.update(by_record)
        _RECORDS_ADDED.inc(len(records))
        _ENTRIES_INSERTED.inc(len(fresh))
        if dedupe_hits:
            _DEDUPE_HITS.inc(dedupe_hits)

    def remove(self, record_id: int) -> None:
        """Remove a record's rows (duplicates only vanish when the last
        contributing record goes)."""
        try:
            entries = self._by_record.pop(record_id)
        except KeyError:
            raise RecordNotFoundError(record_id) from None
        _RECORDS_REMOVED.inc()
        for entry in entries:
            row_key = entry.row_key()
            remaining = self._row_keys[row_key] - 1
            if remaining:
                self._row_keys[row_key] = remaining
                continue
            del self._row_keys[row_key]
            key = collation_key(entry, self.options)
            at = bisect.bisect_left(self._keys, key)
            # collation_key is a total order over distinct rows, so the
            # first match at the insertion point is the row itself.
            while self._entries[at].row_key() != row_key:
                at += 1
            self._keys.pop(at)
            self._entries.pop(at)

    def replace(self, record: PublicationRecord) -> None:
        """Atomically swap a record's rows for its new content."""
        if record.record_id in self._by_record:
            self.remove(record.record_id)
        self.add(record)

    # -- reads -------------------------------------------------------------------

    def snapshot(self) -> AuthorIndex:
        """The current index (an immutable :class:`AuthorIndex` copy)."""
        return AuthorIndex(list(self._entries), self.options)

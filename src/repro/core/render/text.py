"""Plain-text facsimile renderer.

Reproduces the look of the printed artifact: paginated three-column layout
with running headers, wrapped titles, and the author printed once per row
group.  This is the renderer the fidelity experiment (E1) inspects.
"""

from __future__ import annotations

import textwrap
from typing import TYPE_CHECKING

from repro.core.entry import IndexEntry
from repro.core.pagination import PageLayout, paginate
from repro.core.render.base import Renderer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex

_AUTHOR_WIDTH = 26
_TITLE_WIDTH = 36
_CITE_WIDTH = 16


class TextRenderer(Renderer):
    """Facsimile text output (see module docstring)."""

    format_name = "text"

    def render(self, index: "AuthorIndex", **options: object) -> str:
        """Render.

        Options
        -------
        layout:
            A :class:`PageLayout`; defaults to the artifact's layout.
        paginated:
            When False (default True), emit one continuous table without
            page furniture — easier to diff and to feed to other tools.
        """
        self._reject_unknown(options, "layout", "paginated")
        layout = options.get("layout", PageLayout())
        if not isinstance(layout, PageLayout):
            raise TypeError("layout must be a PageLayout")
        paginated = bool(options.get("paginated", True))

        if not paginated:
            lines = [layout.column_head(), ""]
            for entry in index:
                lines.extend(_entry_lines(entry))
            return "\n".join(lines).rstrip() + "\n"

        blocks: list[str] = []
        for page in paginate(index, layout):
            lines = [page.header, "", page.column_head, ""]
            for entry in page.entries:
                lines.extend(_entry_lines(entry))
            blocks.append("\n".join(lines).rstrip())
        return "\n\n".join(blocks) + "\n"


def _entry_lines(entry: IndexEntry) -> list[str]:
    """Lay one entry out across as many lines as its columns need."""
    author_text = entry.author.inverted() + ("*" if entry.is_student_work else "")
    author_lines = textwrap.wrap(author_text, _AUTHOR_WIDTH) or [""]
    title_lines = textwrap.wrap(entry.title, _TITLE_WIDTH) or [""]
    cite_lines = [entry.citation.columnar()]

    height = max(len(author_lines), len(title_lines), len(cite_lines))
    author_lines += [""] * (height - len(author_lines))
    title_lines += [""] * (height - len(title_lines))
    cite_lines += [""] * (height - len(cite_lines))

    rows = []
    for a, t, c in zip(author_lines, title_lines, cite_lines):
        rows.append(f"{a:<{_AUTHOR_WIDTH}} {t:<{_TITLE_WIDTH}} {c:>{_CITE_WIDTH}}".rstrip())
    return rows

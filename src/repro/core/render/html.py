"""HTML renderer: a semantic table with per-letter section anchors."""

from __future__ import annotations

import html
from typing import TYPE_CHECKING

from repro.core.render.base import Renderer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex


class HtmlRenderer(Renderer):
    """Standalone HTML document output."""

    format_name = "html"

    def render(self, index: "AuthorIndex", **options: object) -> str:
        """Render.

        Options
        -------
        title:
            Document title (default ``"Author Index"``).
        letter_anchors:
            Emit an ``<h2 id="letter-X">`` before each new initial
            (default True).
        """
        self._reject_unknown(options, "title", "letter_anchors")
        title = str(options.get("title", "Author Index"))
        anchors = bool(options.get("letter_anchors", True))

        out: list[str] = [
            "<!DOCTYPE html>",
            '<html lang="en">',
            "<head>",
            '<meta charset="utf-8">',
            f"<title>{html.escape(title)}</title>",
            "</head>",
            "<body>",
            f"<h1>{html.escape(title)}</h1>",
        ]
        current_letter = ""
        open_table = False
        for group in index.groups():
            letter = group.author.surname[:1].upper()
            if anchors and letter != current_letter:
                if open_table:
                    out.append("</tbody></table>")
                    open_table = False
                current_letter = letter
                out.append(f'<h2 id="letter-{html.escape(letter)}">{html.escape(letter)}</h2>')
            if not open_table:
                out.append(
                    "<table><thead><tr><th>Author</th><th>Article</th>"
                    "<th>Citation</th></tr></thead><tbody>"
                )
                open_table = True
            heading = group.heading + ("*" if group.entries[0].is_student_work else "")
            for i, entry in enumerate(group.entries):
                author_cell = html.escape(heading) if i == 0 else ""
                out.append(
                    "<tr>"
                    f"<td>{author_cell}</td>"
                    f"<td>{html.escape(entry.title)}</td>"
                    f"<td>{html.escape(entry.citation.columnar())}</td>"
                    "</tr>"
                )
        if open_table:
            out.append("</tbody></table>")
        out += ["</body>", "</html>"]
        return "\n".join(out) + "\n"

"""Renderer registry.

Renderers share one interface (:class:`~repro.core.render.base.Renderer`)
and register by format name; :meth:`AuthorIndex.render` dispatches here.
"""

from repro.core.render.base import Renderer
from repro.core.render.text import TextRenderer
from repro.core.render.markdown import MarkdownRenderer
from repro.core.render.html import HtmlRenderer
from repro.core.render.latex import LatexRenderer
from repro.core.render.jsonr import JsonRenderer
from repro.core.render.csvr import CsvRenderer

_RENDERERS: dict[str, Renderer] = {
    "text": TextRenderer(),
    "markdown": MarkdownRenderer(),
    "html": HtmlRenderer(),
    "latex": LatexRenderer(),
    "json": JsonRenderer(),
    "csv": CsvRenderer(),
}


def get_renderer(fmt: str) -> Renderer:
    """Renderer registered under ``fmt``; raises ``KeyError`` when unknown."""
    return _RENDERERS[fmt]


def available_formats() -> tuple[str, ...]:
    """All registered format names."""
    return tuple(sorted(_RENDERERS))


__all__ = [
    "Renderer",
    "TextRenderer",
    "MarkdownRenderer",
    "HtmlRenderer",
    "LatexRenderer",
    "JsonRenderer",
    "CsvRenderer",
    "get_renderer",
    "available_formats",
]

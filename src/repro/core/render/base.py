"""Renderer interface."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex


class Renderer(abc.ABC):
    """Turns a built :class:`AuthorIndex` into one output document.

    Renderers are stateless; per-call options arrive as keyword arguments
    to :meth:`render` and unknown options must be rejected, not ignored,
    so typos surface immediately.
    """

    #: Format name used for registration and error messages.
    format_name: str = ""

    @abc.abstractmethod
    def render(self, index: "AuthorIndex", **options: object) -> str:
        """Render ``index`` to a string document."""

    @staticmethod
    def _reject_unknown(options: dict[str, object], *known: str) -> None:
        unknown = set(options) - set(known)
        if unknown:
            raise TypeError(f"unknown renderer options: {sorted(unknown)}")

"""Markdown renderer: one GFM table, author shown once per group."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.render.base import Renderer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


class MarkdownRenderer(Renderer):
    """GitHub-flavoured Markdown table output."""

    format_name = "markdown"

    def render(self, index: "AuthorIndex", **options: object) -> str:
        """Render.

        Options
        -------
        title:
            Optional document heading (emitted as ``# title``).
        repeat_author:
            Print the author on every row instead of only the group's
            first row (default False, matching the artifact's style).
        """
        self._reject_unknown(options, "title", "repeat_author")
        title = options.get("title")
        repeat_author = bool(options.get("repeat_author", False))

        lines: list[str] = []
        if title:
            lines += [f"# {title}", ""]
        lines += ["| Author | Article | Citation |", "| --- | --- | --- |"]
        for group in index.groups():
            heading = group.heading + ("*" if group.entries[0].is_student_work else "")
            for i, entry in enumerate(group.entries):
                author_cell = heading if (i == 0 or repeat_author) else ""
                lines.append(
                    f"| {_escape(author_cell)} | {_escape(entry.title)} "
                    f"| {entry.citation.columnar()} |"
                )
        return "\n".join(lines) + "\n"

"""CSV renderer: one row per index entry, for spreadsheet-bound editors."""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING

from repro.core.render.base import Renderer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex

#: Output column order.
FIELDNAMES = ("author", "student", "title", "volume", "page", "year")


class CsvRenderer(Renderer):
    """RFC-4180 CSV output (header row included)."""

    format_name = "csv"

    def render(self, index: "AuthorIndex", **options: object) -> str:
        """Render.

        Options
        -------
        delimiter:
            Field delimiter (default ``","``; pass ``"\\t"`` for TSV).
        """
        self._reject_unknown(options, "delimiter")
        delimiter = str(options.get("delimiter", ","))
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=FIELDNAMES, delimiter=delimiter)
        writer.writeheader()
        for entry in index:
            writer.writerow(
                {
                    "author": entry.author.inverted(),
                    "student": "true" if entry.is_student_work else "false",
                    "title": entry.title,
                    "volume": entry.citation.volume,
                    "page": entry.citation.page,
                    "year": entry.citation.year,
                }
            )
        return buffer.getvalue()

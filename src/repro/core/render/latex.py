"""LaTeX renderer: a ``longtable`` suitable for journal front matter."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.render.base import Renderer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex

_SPECIALS = {
    "\\": r"\textbackslash{}",
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}


def latex_escape(text: str) -> str:
    """Escape LaTeX special characters.

    >>> latex_escape("Tax & Estates: 50% _net_")
    'Tax \\\\& Estates: 50\\\\% \\\\_net\\\\_'
    """
    return "".join(_SPECIALS.get(ch, ch) for ch in text)


class LatexRenderer(Renderer):
    """``longtable`` output (document body only unless ``standalone``)."""

    format_name = "latex"

    def render(self, index: "AuthorIndex", **options: object) -> str:
        """Render.

        Options
        -------
        standalone:
            Wrap in a minimal compilable document (default False).
        """
        self._reject_unknown(options, "standalone")
        standalone = bool(options.get("standalone", False))

        body: list[str] = [
            r"\begin{longtable}{p{0.28\textwidth}p{0.5\textwidth}r}",
            r"\textbf{Author} & \textbf{Article} & \textbf{Citation} \\",
            r"\hline",
            r"\endhead",
        ]
        for group in index.groups():
            heading = group.heading + ("*" if group.entries[0].is_student_work else "")
            for i, entry in enumerate(group.entries):
                author_cell = latex_escape(heading) if i == 0 else ""
                body.append(
                    f"{author_cell} & {latex_escape(entry.title)} & "
                    f"{latex_escape(entry.citation.columnar())} \\\\"
                )
        body.append(r"\end{longtable}")

        if not standalone:
            return "\n".join(body) + "\n"
        return "\n".join(
            [
                r"\documentclass{article}",
                r"\usepackage{longtable}",
                r"\begin{document}",
                *body,
                r"\end{document}",
            ]
        ) + "\n"

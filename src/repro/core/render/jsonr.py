"""JSON renderer: machine-readable index dump (stable field order)."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.core.render.base import Renderer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex


class JsonRenderer(Renderer):
    """JSON array of row objects; round-trips through the corpus loader."""

    format_name = "json"

    def render(self, index: "AuthorIndex", **options: object) -> str:
        """Render.

        Options
        -------
        indent:
            JSON indentation (default 2; pass ``None`` for compact).
        """
        self._reject_unknown(options, "indent")
        indent = options.get("indent", 2)
        if indent is not None and not isinstance(indent, int):
            raise TypeError("indent must be an int or None")
        rows = [
            {
                "author": entry.author.inverted(),
                "student": entry.is_student_work,
                "title": entry.title,
                "volume": entry.citation.volume,
                "page": entry.citation.page,
                "year": entry.citation.year,
                "record_id": entry.record_id,
            }
            for entry in index
        ]
        return json.dumps(rows, indent=indent, ensure_ascii=False) + "\n"

"""Title index — the author index's sibling front-matter artifact.

Journal cumulative-index issues (the artifact's issue 5 among them) print a
*Title Index* next to the author index: one row per article, alphabetized
by title under the filing rule that skips leading articles ("A", "An",
"The"), citing the same ``volume:page (year)`` column.

The builder mirrors :class:`~repro.core.builder.AuthorIndexBuilder`:
records in, ordered :class:`TitleEntry` rows out, with text/markdown
rendering.  Authors are listed after the title the way the artifact's
title indexes do.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.citation.model import Citation
from repro.core.entry import PublicationRecord
from repro.names.model import PersonName
from repro.names.normalize import strip_diacritics

#: Leading words skipped when filing a title ("The Law of Coal" files
#: under L).  Only the *first* word is ever skipped, matching the
#: artifact's convention.
LEADING_ARTICLES = frozenset({"a", "an", "the"})


_FILING_PUNCTUATION = str.maketrans("", "", "\"'’“”()[]{}*")


def title_filing_key(title: str) -> str:
    """Case/diacritic-folded filing key with the leading article skipped.

    Quotes, brackets, and apostrophes are ignored for filing ("All My
    Friends…" files under A, not under the quotation mark).

    >>> title_filing_key("The Law of Coal")
    'law of coal'
    >>> title_filing_key("A Miner's Bill of Rights")
    'miners bill of rights'
    >>> title_filing_key("Theory of Law")
    'theory of law'
    >>> title_filing_key('"All My Friends" Essay')[0]
    'a'
    """
    folded = strip_diacritics(title).casefold().translate(_FILING_PUNCTUATION)
    words = folded.split()
    if len(words) > 1 and words[0] in LEADING_ARTICLES:
        words = words[1:]
    return " ".join(words)


@dataclass(frozen=True, slots=True)
class TitleEntry:
    """One printed row of the title index."""

    title: str
    authors: tuple[PersonName, ...]
    citation: Citation
    is_student_work: bool = False
    record_id: int | None = None

    def author_line(self) -> str:
        """Authors joined the way the artifact prints them."""
        names = [a.inverted() for a in self.authors]
        return "; ".join(names)

    def row_key(self) -> tuple:
        return (title_filing_key(self.title), self.citation)


class TitleIndex:
    """A built title index: rows in filing order."""

    def __init__(self, entries: Sequence[TitleEntry]):
        self._entries = tuple(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TitleEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> tuple[TitleEntry, ...]:
        return self._entries

    def letters(self) -> list[str]:
        """Distinct first filing letters, in order."""
        seen: list[str] = []
        for entry in self._entries:
            letter = title_filing_key(entry.title)[:1].upper()
            if not seen or seen[-1] != letter:
                if letter not in seen:
                    seen.append(letter)
        return seen

    def render_text(self, *, width: int = 78) -> str:
        """Two-column text rendering: wrapped title+authors, citation."""
        title_width = width - 18
        lines: list[str] = []
        for entry in self._entries:
            marker = "*" if entry.is_student_work else ""
            head = f"{entry.title}{marker}"
            wrapped = textwrap.wrap(head, title_width) or [""]
            cite = entry.citation.columnar()
            first, *rest = wrapped
            lines.append(f"{first:<{title_width}} {cite:>17}")
            lines.extend(f"{cont:<{title_width}}" for cont in rest)
            if entry.authors:
                for cont in textwrap.wrap(entry.author_line(), title_width - 4):
                    lines.append(f"    {cont}")
        return "\n".join(lines) + "\n"

    def render_markdown(self) -> str:
        """GFM table rendering."""
        lines = ["| Title | Authors | Citation |", "| --- | --- | --- |"]
        for entry in self._entries:
            marker = "\\*" if entry.is_student_work else ""
            lines.append(
                f"| {entry.title.replace('|', '∣')}{marker} "
                f"| {entry.author_line().replace('|', '∣')} "
                f"| {entry.citation.columnar()} |"
            )
        return "\n".join(lines) + "\n"


class TitleIndexBuilder:
    """Accumulates records and builds :class:`TitleIndex` values."""

    def __init__(self) -> None:
        self._records: list[PublicationRecord] = []

    def add_record(self, record: PublicationRecord) -> "TitleIndexBuilder":
        """Add one record; returns self for chaining."""
        self._records.append(record)
        return self

    def add_records(self, records: Iterable[PublicationRecord]) -> "TitleIndexBuilder":
        """Add many records; returns self for chaining."""
        self._records.extend(records)
        return self

    def build(self) -> TitleIndex:
        """One row per record, de-duplicated, in title filing order."""
        entries = [
            TitleEntry(
                title=record.title,
                authors=record.authors,
                citation=record.citation,
                is_student_work=record.is_student_work,
                record_id=record.record_id,
            )
            for record in self._records
        ]
        seen: set[tuple] = set()
        unique: list[TitleEntry] = []
        for entry in entries:
            key = entry.row_key()
            if key not in seen:
                seen.add(key)
                unique.append(entry)
        unique.sort(
            key=lambda e: (
                title_filing_key(e.title),
                (e.citation.volume, e.citation.page),
                e.title,
            )
        )
        return TitleIndex(unique)


def build_title_index(records: Iterable[PublicationRecord]) -> TitleIndex:
    """One-call convenience mirroring :func:`repro.core.builder.build_index`.

    >>> from repro.core.entry import PublicationRecord
    >>> idx = build_title_index([
    ...     PublicationRecord.create(1, "The Zebra Question", ["A, B."], "90:2 (1987)"),
    ...     PublicationRecord.create(2, "Amicus Practice", ["C, D."], "90:1 (1987)"),
    ... ])
    >>> [e.title for e in idx]
    ['Amicus Practice', 'The Zebra Question']
    """
    return TitleIndexBuilder().add_records(records).build()

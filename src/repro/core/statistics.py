"""Index and corpus statistics.

The fidelity experiment (E1) compares these numbers between the rebuilt
index and the reference artifact: row counts, distinct headings, the
student-material share, per-initial-letter distribution, per-volume counts,
and the year span.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex


@dataclass(frozen=True, slots=True)
class IndexStatistics:
    """Summary statistics of a built author index."""

    entry_count: int
    author_count: int
    student_entry_count: int
    entries_by_letter: Mapping[str, int]
    entries_by_volume: Mapping[int, int]
    year_min: int | None
    year_max: int | None
    multi_article_authors: int

    @classmethod
    def from_index(cls, index: "AuthorIndex") -> "IndexStatistics":
        """Compute statistics for ``index``."""
        by_letter: Counter[str] = Counter()
        by_volume: Counter[int] = Counter()
        students = 0
        years: list[int] = []
        for entry in index:
            letter = entry.author.surname[:1].upper()
            by_letter[letter] += 1
            by_volume[entry.citation.volume] += 1
            years.append(entry.citation.year)
            if entry.is_student_work:
                students += 1
        groups = index.groups()
        return cls(
            entry_count=len(index),
            author_count=len(groups),
            student_entry_count=students,
            entries_by_letter=dict(sorted(by_letter.items())),
            entries_by_volume=dict(sorted(by_volume.items())),
            year_min=min(years) if years else None,
            year_max=max(years) if years else None,
            multi_article_authors=sum(1 for g in groups if len(g.entries) > 1),
        )

    @property
    def student_share(self) -> float:
        """Fraction of rows carrying the student marker (0 when empty)."""
        if self.entry_count == 0:
            return 0.0
        return self.student_entry_count / self.entry_count

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        span = (
            f"{self.year_min}-{self.year_max}"
            if self.year_min is not None
            else "n/a"
        )
        lines = [
            f"entries:               {self.entry_count}",
            f"author headings:       {self.author_count}",
            f"student entries:       {self.student_entry_count}"
            f" ({self.student_share:.1%})",
            f"multi-article authors: {self.multi_article_authors}",
            f"year span:             {span}",
            f"volumes cited:         {len(self.entries_by_volume)}",
        ]
        return "\n".join(lines)

    def compare(self, other: "IndexStatistics") -> dict[str, tuple[object, object]]:
        """Fields that differ between ``self`` and ``other`` (E1 report)."""
        deltas: dict[str, tuple[object, object]] = {}
        for name in (
            "entry_count",
            "author_count",
            "student_entry_count",
            "year_min",
            "year_max",
            "multi_article_authors",
        ):
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine != theirs:
                deltas[name] = (mine, theirs)
        if self.entries_by_letter != other.entries_by_letter:
            deltas["entries_by_letter"] = (
                self.entries_by_letter,
                other.entries_by_letter,
            )
        return deltas

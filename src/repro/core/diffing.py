"""Structural comparison of two built indexes.

The fidelity experiment needs more than "equal/not equal": it reports which
rows are missing, which are spurious, and how far the common rows are from
the reference ordering (normalized Kendall-tau-style inversion distance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.entry import IndexEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex


@dataclass(frozen=True, slots=True)
class IndexDiff:
    """Differences between a candidate index and a reference index."""

    missing: tuple[IndexEntry, ...]  # in reference, not in candidate
    extra: tuple[IndexEntry, ...]  # in candidate, not in reference
    common_count: int
    inversion_distance: float  # 0.0 = same order, 1.0 = reversed

    @property
    def is_identical(self) -> bool:
        return not self.missing and not self.extra and self.inversion_distance == 0.0

    @property
    def order_fidelity(self) -> float:
        """1 - inversion distance: 1.0 means perfect ordering agreement."""
        return 1.0 - self.inversion_distance

    def summary(self) -> str:
        return (
            f"common={self.common_count} missing={len(self.missing)} "
            f"extra={len(self.extra)} order_fidelity={self.order_fidelity:.4f}"
        )


def diff_indexes(candidate: "AuthorIndex", reference: "AuthorIndex") -> IndexDiff:
    """Compare ``candidate`` against ``reference``.

    Rows are matched by :meth:`IndexEntry.row_key`.  Ordering agreement is
    measured on the common rows only: the candidate's ordering of those rows
    is mapped to reference positions and the normalized inversion count of
    that permutation is reported.
    """
    ref_positions: dict[tuple, int] = {}
    for position, entry in enumerate(reference):
        ref_positions.setdefault(entry.row_key(), position)
    cand_keys = {e.row_key() for e in candidate}

    missing = tuple(e for e in reference if e.row_key() not in cand_keys)
    extra = tuple(e for e in candidate if e.row_key() not in ref_positions)

    permutation = [
        ref_positions[e.row_key()] for e in candidate if e.row_key() in ref_positions
    ]
    inversions = _count_inversions(permutation)
    n = len(permutation)
    max_inversions = n * (n - 1) // 2
    distance = inversions / max_inversions if max_inversions else 0.0

    return IndexDiff(
        missing=missing,
        extra=extra,
        common_count=n,
        inversion_distance=distance,
    )


def _count_inversions(sequence: Sequence[int]) -> int:
    """Number of out-of-order pairs, counted by merge sort in O(n log n).

    >>> _count_inversions([1, 2, 3])
    0
    >>> _count_inversions([3, 2, 1])
    3
    """
    work = list(sequence)
    _, total = _merge_count(work)
    return total


def _merge_count(seq: list[int]) -> tuple[list[int], int]:
    if len(seq) <= 1:
        return seq, 0
    mid = len(seq) // 2
    left, left_inv = _merge_count(seq[:mid])
    right, right_inv = _merge_count(seq[mid:])
    merged: list[int] = []
    inversions = left_inv + right_inv
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
            inversions += len(left) - i
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged, inversions

"""Page layout: how the index flows onto numbered journal pages.

The reference artifact paginates at ~13 rows per page starting at page
1365, with alternating running headers:

* recto (odd) pages:  ``1993]                AUTHOR INDEX            1369``
* verso (even) pages: ``1370        WEST VIRGINIA LAW REVIEW  [Vol. 95:1365``

and a three-column table head (``AUTHOR / ARTICLE / W. VA. L. REV.``) on
every page.  :func:`paginate` reproduces that flow; the text renderer uses
it for facsimile output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.entry import IndexEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import AuthorIndex


@dataclass(frozen=True, slots=True)
class PageLayout:
    """Page-flow parameters of the printed artifact."""

    first_page: int = 1365
    entries_per_page: int = 13
    volume: int = 95
    year: int = 1993
    index_title: str = "AUTHOR INDEX"
    journal_name: str = "WEST VIRGINIA LAW REVIEW"
    width: int = 78

    def header_for(self, page_number: int) -> str:
        """Running header for ``page_number`` (recto/verso alternation)."""
        if page_number % 2 == 1:  # recto
            left, center, right = f"{self.year}]", self.index_title, str(page_number)
        else:  # verso
            left = str(page_number)
            center = self.journal_name
            right = f"[Vol. {self.volume}:{self.first_page}"
        return _spread(left, center, right, self.width)

    def column_head(self) -> str:
        """The three-column table head printed below the running header."""
        reporter = "W. VA. L. REV."
        return _spread("AUTHOR", "ARTICLE", reporter, self.width)


def _spread(left: str, center: str, right: str, width: int) -> str:
    """Left/center/right on one line of ``width`` columns."""
    line = [" "] * width
    line[: len(left)] = left
    start = max((width - len(center)) // 2, len(left) + 1)
    line[start : start + len(center)] = center
    line[width - len(right) :] = right
    return "".join(line).rstrip()


@dataclass(frozen=True, slots=True)
class Page:
    """One laid-out page of the index."""

    number: int
    entries: tuple[IndexEntry, ...]
    header: str
    column_head: str

    @property
    def is_recto(self) -> bool:
        return self.number % 2 == 1


def paginate(
    index: "AuthorIndex | Iterable[IndexEntry]",
    layout: PageLayout = PageLayout(),
) -> list[Page]:
    """Flow the index onto pages under ``layout``.

    >>> from repro.core.builder import build_index
    >>> from repro.core.entry import PublicationRecord
    >>> idx = build_index([
    ...     PublicationRecord.create(i, f"T{i}", [f"Author{i:02d}, A."], f"90:{i+1} (1987)")
    ...     for i in range(30)
    ... ])
    >>> pages = paginate(idx, PageLayout(first_page=100, entries_per_page=13))
    >>> [p.number for p in pages]
    [100, 101, 102]
    >>> len(pages[0].entries), len(pages[-1].entries)
    (13, 4)
    """
    entries = list(index)
    pages: list[Page] = []
    per_page = layout.entries_per_page
    if per_page <= 0:
        raise ValueError(f"entries_per_page must be positive, got {per_page}")
    for offset in range(0, len(entries), per_page):
        number = layout.first_page + len(pages)
        pages.append(
            Page(
                number=number,
                entries=tuple(entries[offset : offset + per_page]),
                header=layout.header_for(number),
                column_head=layout.column_head(),
            )
        )
    return pages

"""The author-index builder — the library's primary public API.

:class:`AuthorIndexBuilder` turns publication records into an
:class:`AuthorIndex`: exploded per author, de-duplicated, optionally
OCR-repaired and entity-resolved, and collated under the artifact's rules.

Typical use::

    builder = AuthorIndexBuilder()
    builder.add_records(records)
    index = builder.build()
    print(index.render("text"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.collation import CollationOptions, DEFAULT_OPTIONS, collation_key
from repro.core.entry import IndexEntry, PublicationRecord, explode
from repro.errors import RenderError
from repro.names.model import PersonName
from repro.names.resolution import NameResolver
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

_BUILD_COUNT = _metrics.counter("build.count")
_BUILD_RECORDS = _metrics.counter("build.records")
_ENTRIES_COLLATED = _metrics.counter("build.entries.collated")
_ENTRIES_DEDUPED = _metrics.counter("build.entries.deduped")
_BUILD_SECONDS = _metrics.histogram("build.seconds")


@dataclass(frozen=True, slots=True)
class AuthorGroup:
    """All rows of one author heading, in printed order."""

    author: PersonName
    entries: tuple[IndexEntry, ...]

    @property
    def heading(self) -> str:
        return self.author.inverted()


class AuthorIndex:
    """A built index: ordered entries plus grouped views and rendering."""

    def __init__(self, entries: Sequence[IndexEntry], options: CollationOptions):
        self._entries = tuple(entries)
        self.options = options

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[IndexEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> tuple[IndexEntry, ...]:
        return self._entries

    def groups(self) -> list[AuthorGroup]:
        """Consecutive entries with the same author identity, grouped.

        The student flag participates in grouping because the artifact
        prints ``Name`` and ``Name*`` as separate headings.
        """
        groups: list[AuthorGroup] = []
        bucket: list[IndexEntry] = []
        for entry in self._entries:
            if bucket and _heading_key(bucket[0]) != _heading_key(entry):
                groups.append(AuthorGroup(bucket[0].author, tuple(bucket)))
                bucket = []
            bucket.append(entry)
        if bucket:
            groups.append(AuthorGroup(bucket[0].author, tuple(bucket)))
        return groups

    def authors(self) -> list[PersonName]:
        """Distinct author headings in index order."""
        return [g.author for g in self.groups()]

    def render(self, fmt: str = "text", **options: object) -> str:
        """Render with a registered renderer (``text``, ``markdown``,
        ``html``, ``latex``, ``json``)."""
        from repro.core.render import get_renderer

        try:
            renderer = get_renderer(fmt)
        except KeyError:
            raise RenderError(f"unknown format {fmt!r}") from None
        return renderer.render(self, **options)

    def statistics(self):
        """Summary statistics (see :class:`repro.core.statistics.IndexStatistics`)."""
        from repro.core.statistics import IndexStatistics

        return IndexStatistics.from_index(self)


def _heading_key(entry: IndexEntry) -> tuple:
    return (entry.author.identity_key(), entry.is_student_work)


class AuthorIndexBuilder:
    """Accumulates records and builds :class:`AuthorIndex` values.

    Parameters
    ----------
    options:
        Collation rules; defaults to the artifact's conventions.
    resolve_variants:
        When set, author names are clustered with
        :class:`~repro.names.resolution.NameResolver` before collation and
        each cluster's canonical spelling replaces its variants — this is
        what repairs OCR-split authors into one heading.
    resolver:
        Custom resolver (implies ``resolve_variants``).
    """

    def __init__(
        self,
        *,
        options: CollationOptions = DEFAULT_OPTIONS,
        resolve_variants: bool = False,
        resolver: NameResolver | None = None,
    ):
        self.options = options
        self._resolver = resolver if resolver is not None else (
            NameResolver() if resolve_variants else None
        )
        self._records: list[PublicationRecord] = []

    # -- accumulation --------------------------------------------------------

    def add_record(self, record: PublicationRecord) -> "AuthorIndexBuilder":
        """Add one record; returns self for chaining."""
        self._records.append(record)
        return self

    def add_records(self, records: Iterable[PublicationRecord]) -> "AuthorIndexBuilder":
        """Add many records; returns self for chaining.

        This is the batched ingestion entry point: records accumulate in
        one extend and :meth:`build` processes the whole corpus in single
        explode/dedupe/collate passes, so feeding a full volume here costs
        the same as the sum of its rows — there is no per-record overhead
        to amortize.  Pair with :meth:`RecordStore.put_many` (via
        ``PublicationRepository.add_all``) to keep the storage side
        batched too.
        """
        self._records.extend(records)
        return self

    @property
    def record_count(self) -> int:
        return len(self._records)

    # -- build ------------------------------------------------------------------

    def build(self) -> AuthorIndex:
        """Explode, (optionally) resolve, de-duplicate, and collate.

        Emits a ``build.index`` span with one child per phase
        (``build.explode``, ``build.resolve`` when resolution is on,
        ``build.dedupe``, ``build.collate``) plus the ``build.*`` metric
        family (see ``docs/observability.md``).
        """
        with _BUILD_SECONDS.time(), _tracing.span(
            "build.index", records=len(self._records)
        ) as build_span:
            with _tracing.span("build.explode"):
                entries = [
                    entry for record in self._records for entry in explode(record)
                ]
            exploded = len(entries)
            if self._resolver is not None:
                with _tracing.span("build.resolve", entries=len(entries)):
                    entries = self._canonicalize(entries)
            with _tracing.span("build.dedupe", entries=len(entries)):
                entries = _dedupe(entries)
            with _tracing.span("build.collate", entries=len(entries)):
                entries.sort(key=lambda e: collation_key(e, self.options))
            _BUILD_COUNT.inc()
            _BUILD_RECORDS.inc(len(self._records))
            _ENTRIES_COLLATED.inc(len(entries))
            _ENTRIES_DEDUPED.inc(exploded - len(entries))
            build_span.set_attribute("entries", len(entries))
            return AuthorIndex(entries, self.options)

    def _canonicalize(self, entries: list[IndexEntry]) -> list[IndexEntry]:
        assert self._resolver is not None
        report = self._resolver.resolve([e.author for e in entries])
        replacement: dict[tuple, PersonName] = {}
        for cluster in report.clusters:
            for member in cluster.members:
                replacement[member.identity_key()] = cluster.canonical
        return [
            IndexEntry(
                author=replacement.get(e.author.identity_key(), e.author),
                title=e.title,
                citation=e.citation,
                is_student_work=e.is_student_work,
                record_id=e.record_id,
            )
            for e in entries
        ]


def _dedupe(entries: list[IndexEntry]) -> list[IndexEntry]:
    """Drop rows identical in (author, title, citation), keeping the first."""
    seen: set[tuple] = set()
    out: list[IndexEntry] = []
    for entry in entries:
        key = entry.row_key()
        if key not in seen:
            seen.add(key)
            out.append(entry)
    return out


def build_index(
    records: Iterable[PublicationRecord],
    *,
    options: CollationOptions = DEFAULT_OPTIONS,
    resolve_variants: bool = False,
) -> AuthorIndex:
    """One-call convenience: records in, built index out.

    >>> from repro.core.entry import PublicationRecord
    >>> idx = build_index([
    ...     PublicationRecord.create(1, "T1", ["Zed, Amy"], "90:1 (1987)"),
    ...     PublicationRecord.create(2, "T2", ["Abel, Bo"], "91:5 (1988)"),
    ... ])
    >>> [g.heading for g in idx.groups()]
    ['Abel, Bo', 'Zed, Amy']
    """
    return (
        AuthorIndexBuilder(options=options, resolve_variants=resolve_variants)
        .add_records(records)
        .build()
    )

"""Bibliographic collation: the ordering rules the printed index obeys.

Observed conventions of the reference artifact (verified against the WVLR
text) and encoded here:

* primary order is the case/diacritic-folded surname, compared literally —
  ``McAteer`` sorts between ``Maxwell`` and ``Meadows`` (the artifact does
  **not** use the older "Mc as Mac" library rule; we keep that rule behind
  :attr:`CollationOptions.mc_as_mac` for the E8 ablation);
* apostrophes are ignored inside surnames (``O'Brien`` ~ ``OBrien``) while
  hyphens and spaces count as word breaks filed before letters
  (word-by-word filing: ``Van Tol`` < ``VanCamp`` < ``vanEgmond``);
* given names break surname ties; honorifics are ignored for ordering
  (``Byrd, Hon. Robert C.`` sorts as ``Byrd, Robert C.``);
* generational suffixes break given-name ties in seniority order
  (Jr. < Sr. < II < III < IV);
* for the same person, non-student rows precede student rows;
* an author's own articles appear in citation (volume, page) order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.entry import IndexEntry
from repro.names.model import PersonName
from repro.names.normalize import normalization_key, strip_diacritics


@dataclass(frozen=True, slots=True)
class CollationOptions:
    """Tunable collation rules (the E8 ablation toggles these).

    Attributes
    ----------
    mc_as_mac:
        Treat a leading ``Mc`` as ``Mac`` (traditional library filing).
        The reference artifact does not do this; default off.
    ignore_suffix:
        Drop the generational-suffix tiebreak (naive behaviour).
    ignore_student_flag:
        Drop the non-student-first rule for identical names.
    """

    mc_as_mac: bool = False
    ignore_suffix: bool = False
    ignore_student_flag: bool = False


DEFAULT_OPTIONS = CollationOptions()


def surname_sort_key(surname: str, options: CollationOptions = DEFAULT_OPTIONS) -> str:
    """Folded surname key using word-by-word ("nothing before something")
    filing: hyphens count as word breaks and spaces sort before letters,
    which is how the artifact orders its ``Van`` block
    (``Van Damme`` < ``Van Tol`` < ``VanCamp`` < ``vanEgmond``).

    >>> surname_sort_key("O'Brien")
    'obrien'
    >>> surname_sort_key("Bates-Smith")
    'bates smith'
    >>> surname_sort_key("Van Tol") < surname_sort_key("VanCamp")
    True
    >>> surname_sort_key("McAteer", CollationOptions(mc_as_mac=True))
    'macateer'
    """
    key = normalization_key(surname).replace("-", " ")
    if options.mc_as_mac and key.startswith("mc") and not key.startswith("mac"):
        key = "mac" + key[2:]
    return key


def given_sort_key(name: PersonName) -> str:
    """Folded given-name key; honorifics are excluded by construction."""
    return normalization_key(name.given)


def name_sort_key(
    name: PersonName, options: CollationOptions = DEFAULT_OPTIONS
) -> tuple[Any, ...]:
    """Composite sort key for a person name under ``options``."""
    key: list[Any] = [surname_sort_key(name.surname, options), given_sort_key(name)]
    if not options.ignore_suffix:
        key.append(name.suffix_rank)
    if not options.ignore_student_flag:
        key.append(1 if name.is_student else 0)
    return tuple(key)


def collation_key(
    entry: IndexEntry, options: CollationOptions = DEFAULT_OPTIONS
) -> tuple[Any, ...]:
    """Full sort key for one index row: author key, then citation order.

    The student flag is a row property (the asterisk is printed per row),
    so it is taken from the entry, not the parsed name.
    """
    name = entry.author
    key: list[Any] = [surname_sort_key(name.surname, options), given_sort_key(name)]
    if not options.ignore_suffix:
        key.append(name.suffix_rank)
    if not options.ignore_student_flag:
        key.append(1 if entry.is_student_work else 0)
    key.append((entry.citation.volume, entry.citation.page, entry.citation.year))
    key.append(_title_key(entry.title))
    # Deterministic final tiebreak: distinct rows whose folded keys collide
    # (e.g. "A-a" vs "Aa") must still sort the same way from any input
    # order, so the raw strings settle it.
    key.append((name.inverted(student_marker=True), entry.title, entry.is_student_work))
    return tuple(key)


def _title_key(title: str) -> str:
    return strip_diacritics(title).casefold()


def sort_entries(
    entries: Sequence[IndexEntry], options: CollationOptions = DEFAULT_OPTIONS
) -> list[IndexEntry]:
    """Entries in printed-index order (stable under equal keys).

    >>> from repro.core.entry import PublicationRecord, explode
    >>> records = [
    ...     PublicationRecord.create(1, "B", ["McAteer, J. Davitt"], "80:397 (1978)"),
    ...     PublicationRecord.create(2, "A", ["Maxwell, Robert E."], "70:155 (1968)"),
    ...     PublicationRecord.create(3, "C", ["Meadows, James D.*"], "85:969 (1983)"),
    ... ]
    >>> entries = [e for r in records for e in explode(r)]
    >>> [e.author.surname for e in sort_entries(entries)]
    ['Maxwell', 'McAteer', 'Meadows']
    """
    return sorted(entries, key=lambda e: collation_key(e, options))


def naive_key(entry: IndexEntry) -> tuple[str, Any]:
    """The baseline's key: raw string sort, no folding, no conventions.

    Used by :mod:`repro.baselines.naive`; deliberately wrong on O'/Mc/case
    edge cases so E8 has a behavioural gap to measure.
    """
    return (entry.author.inverted(), (entry.citation.volume, entry.citation.page))

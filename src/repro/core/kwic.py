"""KWIC subject index: keyword-in-title entries for every significant word.

Cumulative-index issues also carry a *Subject Index*.  Historically those
are hand-classified; the automatable classic is the KWIC
(keyword-in-context) index — every significant title word becomes a
heading, with the title rotated so the keyword leads and its context
follows.  This module builds one from publication records:

    COAL
        Fields Under the Clean Water Act | Potential Criminal
        Liability in the ~                          95:691 (1993)

Stopwords and filing follow the same conventions as the other indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.citation.model import Citation
from repro.core.entry import PublicationRecord
from repro.names.normalize import strip_diacritics

#: Words never used as KWIC headings: articles, conjunctions, prepositions,
#: auxiliaries, and the boilerplate of law-review titles.
STOPWORDS = frozenset(
    """
    a an the and or nor but of in on at to for from by with under over
    its it is are was were be been has have had do does did not no
    as into upon after before between through during against toward
    towards their his her this that these those there who whom whose
    which what when where why how than then so such via per v vs
    part one two i ii
    """.split()
)

#: Minimum length for a heading word (single letters are never subjects).
MIN_KEYWORD_LENGTH = 3


def significant_words(title: str) -> list[str]:
    """The KWIC heading words of ``title``, in order of appearance.

    Case/diacritic-folded, punctuation-stripped, stopwords and short
    tokens removed, duplicates dropped (first occurrence wins).

    >>> significant_words("The Law of Coal, Oil and Gas in West Virginia")
    ['law', 'coal', 'oil', 'gas', 'west', 'virginia']
    """
    folded = strip_diacritics(title).casefold()
    seen: set[str] = set()
    out: list[str] = []
    for raw in folded.split():
        word = raw.strip("\"'()[]{}.,;:!?*-—").replace("'", "")
        if len(word) < MIN_KEYWORD_LENGTH:
            continue
        if word in STOPWORDS or not any(c.isalpha() for c in word):
            continue
        if word not in seen:
            seen.add(word)
            out.append(word)
    return out


@dataclass(frozen=True, slots=True)
class KwicEntry:
    """One rotated line under a keyword heading."""

    keyword: str
    title: str
    rotation: str  #: title rotated so the keyword leads
    citation: Citation
    record_id: int | None = None


def _rotate(title: str, keyword: str) -> str:
    """Rotate ``title`` so the word matching ``keyword`` leads.

    The part before the keyword is appended after a ``|`` separator, the
    classic KWIC presentation.

    >>> _rotate("The Law of Coal", "coal")
    'Coal | The Law of'
    """
    words = title.split()
    folded = [strip_diacritics(w).casefold().strip("\"'()[]{}.,;:!?*") for w in words]
    for i, w in enumerate(folded):
        if w.replace("'", "") == keyword:
            head = " ".join(words[i:])
            tail = " ".join(words[:i])
            return f"{head} | {tail}" if tail else head
    return title  # keyword not found verbatim (hyphen-compound): no rotation


@dataclass(frozen=True, slots=True)
class KwicGroup:
    """All rotated lines under one keyword heading."""

    keyword: str
    entries: tuple[KwicEntry, ...]

    @property
    def heading(self) -> str:
        return self.keyword.upper()


class KwicIndex:
    """A built KWIC index: keyword groups in alphabetical order."""

    def __init__(self, groups: Sequence[KwicGroup]):
        self._groups = tuple(groups)

    def __len__(self) -> int:
        """Total rotated lines across all headings."""
        return sum(len(g.entries) for g in self._groups)

    def __iter__(self) -> Iterator[KwicGroup]:
        return iter(self._groups)

    @property
    def groups(self) -> tuple[KwicGroup, ...]:
        return self._groups

    def keywords(self) -> list[str]:
        return [g.keyword for g in self._groups]

    def group(self, keyword: str) -> KwicGroup | None:
        """The group for ``keyword`` (folded), or None."""
        wanted = keyword.casefold()
        for g in self._groups:
            if g.keyword == wanted:
                return g
        return None

    def render_text(self, *, width: int = 78) -> str:
        """Headed text rendering."""
        import textwrap

        lines: list[str] = []
        body_width = width - 22
        for group in self._groups:
            lines.append(group.heading)
            for entry in group.entries:
                wrapped = textwrap.wrap(entry.rotation, body_width) or [""]
                first, *rest = wrapped
                lines.append(f"    {first:<{body_width}} {entry.citation.columnar():>16}")
                lines.extend(f"    {cont}" for cont in rest)
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


class KwicIndexBuilder:
    """Accumulates records and builds :class:`KwicIndex` values.

    Parameters
    ----------
    min_group_size:
        Headings with fewer rotated lines are dropped (singletons rarely
        help navigation; the artifact's subject indexes cluster too).
    extra_stopwords:
        Corpus-specific words to suppress in addition to :data:`STOPWORDS`
        (e.g. ``{"west", "virginia"}`` for a single-state law review where
        those words head half the corpus).
    """

    def __init__(
        self,
        *,
        min_group_size: int = 1,
        extra_stopwords: Iterable[str] = (),
    ):
        if min_group_size < 1:
            raise ValueError("min_group_size must be >= 1")
        self.min_group_size = min_group_size
        self._stopwords = STOPWORDS | {w.casefold() for w in extra_stopwords}
        self._records: list[PublicationRecord] = []

    def add_record(self, record: PublicationRecord) -> "KwicIndexBuilder":
        self._records.append(record)
        return self

    def add_records(self, records: Iterable[PublicationRecord]) -> "KwicIndexBuilder":
        self._records.extend(records)
        return self

    def build(self) -> KwicIndex:
        """Group every significant title word's rotations, alphabetized."""
        by_keyword: dict[str, list[KwicEntry]] = {}
        for record in self._records:
            for keyword in significant_words(record.title):
                if keyword in self._stopwords:
                    continue
                entry = KwicEntry(
                    keyword=keyword,
                    title=record.title,
                    rotation=_rotate(record.title, keyword),
                    citation=record.citation,
                    record_id=record.record_id,
                )
                by_keyword.setdefault(keyword, []).append(entry)

        groups = []
        for keyword in sorted(by_keyword):
            entries = by_keyword[keyword]
            if len(entries) < self.min_group_size:
                continue
            entries.sort(key=lambda e: (e.citation.volume, e.citation.page, e.title))
            # one line per (keyword, citation): co-listed duplicates collapse
            deduped: list[KwicEntry] = []
            seen: set[tuple] = set()
            for entry in entries:
                key = (entry.citation, entry.title.casefold())
                if key not in seen:
                    seen.add(key)
                    deduped.append(entry)
            groups.append(KwicGroup(keyword=keyword, entries=tuple(deduped)))
        return KwicIndex(groups)


def build_kwic_index(
    records: Iterable[PublicationRecord],
    *,
    min_group_size: int = 1,
    extra_stopwords: Iterable[str] = (),
) -> KwicIndex:
    """One-call convenience.

    >>> from repro.core.entry import PublicationRecord
    >>> idx = build_kwic_index([
    ...     PublicationRecord.create(1, "The Law of Coal", ["A, B."], "74:283 (1972)"),
    ...     PublicationRecord.create(2, "Coal and Energy", ["C, D."], "76:257 (1974)"),
    ... ])
    >>> idx.group("coal").heading
    'COAL'
    >>> len(idx.group("coal").entries)
    2
    """
    return (
        KwicIndexBuilder(min_group_size=min_group_size, extra_stopwords=extra_stopwords)
        .add_records(records)
        .build()
    )

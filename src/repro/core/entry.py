"""Publication records and author-index rows.

A :class:`PublicationRecord` is one article as the publisher's database
knows it: a title, one or more authors, and its citation.  The index
builder explodes each record into one :class:`IndexEntry` per author — the
paper's convention, where a three-author article appears three times, once
under each surname.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.citation.model import Citation
from repro.citation.parser import parse_citation
from repro.errors import ValidationError
from repro.names.model import PersonName
from repro.names.parser import parse_name


@dataclass(frozen=True, slots=True)
class PublicationRecord:
    """One article with its full author list.

    Attributes
    ----------
    record_id:
        Stable identifier (store primary key).
    title:
        Article title, already unwrapped (no hyphen line breaks).
    authors:
        Authors in byline order; at least one.
    citation:
        Where the article appears.
    is_student_work:
        The paper marks *student material* (notes, comments) with an
        asterisk on the **author**; the flag lives on the record because it
        is a property of the piece, applied to each of its authors.
    """

    record_id: int
    title: str
    authors: tuple[PersonName, ...]
    citation: Citation
    is_student_work: bool = False

    def __post_init__(self) -> None:
        if not self.title or not self.title.strip():
            raise ValidationError("title must be non-empty", field="title")
        if not self.authors:
            raise ValidationError("at least one author required", field="authors")

    @classmethod
    def create(
        cls,
        record_id: int,
        title: str,
        authors: Iterable[str | PersonName],
        citation: str | Citation,
        *,
        is_student_work: bool | None = None,
    ) -> "PublicationRecord":
        """Build a record from loosely-typed inputs.

        Author strings are parsed; a trailing ``*`` on any author string
        marks the whole record as student work unless ``is_student_work``
        is given explicitly.

        >>> rec = PublicationRecord.create(
        ...     1, "Habeas Corpus in West Virginia",
        ...     ["Fox, Fred L., II*"], "69:293 (1967)")
        >>> rec.is_student_work
        True
        >>> rec.authors[0].surname
        'Fox'
        """
        parsed_authors = tuple(
            a if isinstance(a, PersonName) else parse_name(a) for a in authors
        )
        student = is_student_work
        if student is None:
            student = any(a.is_student for a in parsed_authors)
        parsed_citation = (
            citation if isinstance(citation, Citation) else parse_citation(citation)
        )
        return cls(
            record_id=record_id,
            title=title.strip(),
            authors=parsed_authors,
            citation=parsed_citation,
            is_student_work=student,
        )

    # -- store (de)serialization -------------------------------------------

    def to_store_dict(self) -> dict[str, Any]:
        """Flatten into the dict shape the record store validates."""
        return {
            "id": self.record_id,
            "title": self.title,
            "authors": [a.inverted() for a in self.authors],
            "surnames": [a.surname for a in self.authors],
            "volume": self.citation.volume,
            "page": self.citation.page,
            "year": self.citation.year,
            "student": self.is_student_work,
        }

    @classmethod
    def from_store_dict(cls, record: Mapping[str, Any]) -> "PublicationRecord":
        """Inverse of :meth:`to_store_dict`."""
        return cls(
            record_id=record["id"],
            title=record["title"],
            authors=tuple(parse_name(a) for a in record["authors"]),
            citation=Citation(
                volume=record["volume"], page=record["page"], year=record["year"]
            ),
            is_student_work=record.get("student", False),
        )


@dataclass(frozen=True, slots=True)
class IndexEntry:
    """One printed row of the author index: author → article → citation."""

    author: PersonName
    title: str
    citation: Citation
    is_student_work: bool = False
    record_id: int | None = None

    def row_key(self) -> tuple[Any, ...]:
        """Identity for dedup/diffing: who, what, where."""
        return (
            self.author.identity_key(),
            self.title.casefold(),
            self.citation,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        marker = "*" if self.is_student_work else ""
        return f"{self.author.inverted()}{marker} | {self.title} | {self.citation.columnar()}"


def explode(record: PublicationRecord) -> list[IndexEntry]:
    """One index entry per author of ``record`` (byline order preserved).

    >>> rec = PublicationRecord.create(
    ...     7, "A Miner's Bill of Rights",
    ...     ["Galloway, L. Thomas", "McAteer, J. Davitt", "Webb, Richard L."],
    ...     "80:397 (1978)")
    >>> [e.author.surname for e in explode(rec)]
    ['Galloway', 'McAteer', 'Webb']
    """
    return [
        IndexEntry(
            author=author,
            title=record.title,
            citation=record.citation,
            is_student_work=record.is_student_work,
            record_id=record.record_id,
        )
        for author in record.authors
    ]

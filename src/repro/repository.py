"""The high-level facade: a typed publication repository.

:class:`PublicationRepository` wires the whole stack together — durable
store, default indexes, query engine, and the index builders — behind an
API that speaks :class:`~repro.core.entry.PublicationRecord`, so a
downstream user never touches record dicts::

    with PublicationRepository("indexdb/") as repo:
        repo.add_all(load_reference_records())
        for record in repo.by_surname("McAteer"):
            print(record.title)
        print(repo.author_index().render("text"))

Everything the facade does is also reachable through the underlying
layers (`repo.store`, `repo.engine`) for callers that need them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.core.builder import AuthorIndex, AuthorIndexBuilder
from repro.core.collation import CollationOptions, DEFAULT_OPTIONS
from repro.core.entry import PublicationRecord
from repro.core.kwic import KwicIndex, KwicIndexBuilder
from repro.core.titleindex import TitleIndex, TitleIndexBuilder
from repro.core.toc import TableOfContents, build_toc
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.obs import logging as _logging
from repro.obs.slowlog import SlowQueryLog
from repro.query.executor import QueryEngine
from repro.storage.store import IndexKind, RecordStore


class PublicationRepository:
    """A publication database with the standard index workloads built in.

    Parameters
    ----------
    directory:
        Durable storage location; ``None`` keeps everything in memory.
    sync:
        fsync the WAL on every write (see :class:`RecordStore`).
    create_default_indexes:
        Declare the indexes the standard workloads use: hash on
        ``surnames``, B-trees on ``year`` and ``volume``, and the
        ``(volume, page)`` composite.  Disable for custom tuning.
    slow_log:
        Optional :class:`~repro.obs.slowlog.SlowQueryLog` attached to
        the query engine (see ``docs/operations.md``).
    """

    def __init__(
        self,
        directory: Path | str | None = None,
        *,
        sync: bool = False,
        create_default_indexes: bool = True,
        slow_log: "SlowQueryLog | None" = None,
    ):
        self.store = RecordStore(PUBLICATION_SCHEMA, directory, sync=sync)
        self.engine = QueryEngine(self.store, slow_log=slow_log)
        if create_default_indexes:
            self.store.create_index("surnames", IndexKind.HASH)
            self.store.create_index("year", IndexKind.BTREE)
            self.store.create_index("volume", IndexKind.BTREE)
            self.store.create_composite_index(("volume", "page"))

    # -- record CRUD ---------------------------------------------------------

    def add(self, record: PublicationRecord) -> None:
        """Insert one record (its id must be new)."""
        self.store.insert(record.to_store_dict())

    def add_all(self, records: Iterable[PublicationRecord]) -> int:
        """Insert many records atomically; returns how many.

        Uses the store's batched fast path: every record validates (and
        any duplicate id raises, with nothing written) before the whole
        batch group-commits to the WAL and lands in each index as one
        sorted bulk update.
        """
        count = self.store.put_many(record.to_store_dict() for record in records)
        _logging.info("repository.ingest", records=count, total=len(self.store))
        return count

    def get(self, record_id: int) -> PublicationRecord:
        """Record by id; raises :class:`~repro.errors.RecordNotFoundError`."""
        return PublicationRecord.from_store_dict(self.store.get(record_id))

    def remove(self, record_id: int) -> None:
        """Delete by id; raises when absent."""
        self.store.delete(record_id)

    def replace(self, record: PublicationRecord) -> None:
        """Insert-or-replace by the record's id."""
        self.store.upsert(record.to_store_dict())

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self.store

    def all(self) -> Iterator[PublicationRecord]:
        """All records in insertion order."""
        for row in self.store.scan():
            yield PublicationRecord.from_store_dict(row)

    # -- typed lookups ---------------------------------------------------------

    def by_surname(self, surname: str) -> list[PublicationRecord]:
        """Records with any author of this surname (hash probe)."""
        rows = self.store.find_by("surnames", surname)
        return [PublicationRecord.from_store_dict(r) for r in rows]

    def by_volume(self, volume: int) -> list[PublicationRecord]:
        """A volume's records in page order (composite prefix scan)."""
        rows = self.store.range_by_composite(("volume", "page"), (volume,))
        return [PublicationRecord.from_store_dict(r) for r in rows]

    def between_years(self, first: int, last: int) -> list[PublicationRecord]:
        """Records published in ``[first, last]`` (B-tree range)."""
        rows = self.store.range_by("year", first, last)
        return [PublicationRecord.from_store_dict(r) for r in rows]

    def search(self, query: str) -> list[PublicationRecord]:
        """Records matching a query-language string."""
        rows = self.engine.execute(query)
        return [PublicationRecord.from_store_dict(r) for r in rows]

    def count(self, query: str = "*") -> int:
        """Number of records matching ``query``."""
        return self.engine.count(query)

    def search_titles(self, query: str, *, k: int | None = 10):
        """Full-text title search, TF-IDF ranked.

        Bare words are AND-ed, ``"quoted spans"`` match as phrases.  The
        inverted index is built lazily and rebuilt only after writes (the
        store's mutation counter detects staleness).

        Returns :class:`repro.search.SearchHit` rows.
        """
        from repro.search.engine import TitleSearchEngine

        current = self.store.mutation_count
        cached = getattr(self, "_search_cache", None)
        if cached is None or cached[0] != current:
            cached = (current, TitleSearchEngine(self.all()))
            self._search_cache = cached
        return cached[1].search(query, k=k)

    # -- index products ----------------------------------------------------------

    def author_index(
        self,
        *,
        options: CollationOptions = DEFAULT_OPTIONS,
        resolve_variants: bool = False,
    ) -> AuthorIndex:
        """Build the author index over the whole repository."""
        builder = AuthorIndexBuilder(options=options, resolve_variants=resolve_variants)
        return builder.add_records(self.all()).build()

    def title_index(self) -> TitleIndex:
        """Build the title index over the whole repository."""
        return TitleIndexBuilder().add_records(self.all()).build()

    def subject_index(
        self, *, min_group_size: int = 2, extra_stopwords: Iterable[str] = ()
    ) -> KwicIndex:
        """Build the KWIC subject index over the whole repository."""
        builder = KwicIndexBuilder(
            min_group_size=min_group_size, extra_stopwords=extra_stopwords
        )
        return builder.add_records(self.all()).build()

    def table_of_contents(self) -> TableOfContents:
        """Build the per-volume table of contents."""
        return build_toc(self.all())

    # -- lifecycle -------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a verified snapshot and reclaim the WAL segments it
        covers (durable mode only); bounds WAL disk usage."""
        self.store.checkpoint()

    def snapshot(self) -> None:
        """Compatibility alias for :meth:`checkpoint`."""
        self.store.checkpoint()

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "PublicationRepository":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

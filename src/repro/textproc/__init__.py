"""Text processing substrate: tokenization, hyphenation repair, OCR model.

The raw artifact is scanned text: article titles wrap across lines with
hyphens (``Sur-\\nvive``), page furniture interrupts entries, and characters
are confused (``rn``/``m``, ``l``/``1``).  This package provides the
tokenizer used throughout the library, a hyphen-wrap repairer for ingest,
and a seeded OCR noise model plus its inverse (a lexicon-guided repairer)
for the synthetic-corpus experiments.
"""

from repro.textproc.tokenize import sentence_case, tokenize, word_shape
from repro.textproc.hyphenation import join_hyphen_wraps, unwrap_lines
from repro.textproc.ocr import (
    OCRNoiseModel,
    OCRRepairer,
    default_confusions,
    learn_confusions,
)
from repro.textproc.columns import ColumnSplit, detect_gutter, split_columns

__all__ = [
    "tokenize",
    "word_shape",
    "sentence_case",
    "join_hyphen_wraps",
    "unwrap_lines",
    "OCRNoiseModel",
    "OCRRepairer",
    "default_confusions",
    "learn_confusions",
    "ColumnSplit",
    "detect_gutter",
    "split_columns",
]

"""OCR noise model and its inverse, a lexicon-guided repairer.

The noise model is used by the synthetic corpus generator to plant the same
damage classes visible in the scanned artifact (``rn``→``m``, ``m``→``rn``,
``l``↔``1``↔``I``, dropped characters, swapped neighbours).  The repairer
inverts the common confusions against a lexicon built from the clean corpus
— the ablation experiment (E8) measures how much repair-before-resolution
improves clustering.

All randomness flows through an explicit :class:`random.Random` so corpora
are reproducible from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Multi-character and single-character confusion pairs (clean -> noisy),
#: drawn from the damage classes the reference text exhibits
#: ("Hemdon" for "Herndon", "Johson" for "Johnson", "1I" for "II").
DEFAULT_CONFUSIONS: tuple[tuple[str, str], ...] = (
    ("rn", "m"),
    ("m", "rn"),
    ("cl", "d"),
    ("vv", "w"),
    ("I", "l"),
    ("l", "1"),
    ("1", "l"),
    ("O", "0"),
    ("0", "O"),
    ("e", "c"),
    ("c", "e"),
    ("h", "b"),
    ("u", "n"),
    ("n", "u"),
    ("S", "5"),
)


def default_confusions() -> tuple[tuple[str, str], ...]:
    """The built-in confusion table (clean → noisy substring pairs)."""
    return DEFAULT_CONFUSIONS


@dataclass(slots=True)
class OCRNoiseModel:
    """Seeded generator of OCR-like damage.

    Parameters
    ----------
    rate:
        Expected number of corruptions per 100 characters.
    rng:
        Source of randomness; pass a seeded ``random.Random`` for
        reproducible corpora.
    confusions:
        Substring confusion table; defaults to :data:`DEFAULT_CONFUSIONS`.

    >>> model = OCRNoiseModel(rate=50.0, rng=random.Random(7))
    >>> noisy = model.corrupt("Johnson, Edward P.")
    >>> noisy != "Johnson, Edward P."
    True
    """

    rate: float = 2.0
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    confusions: tuple[tuple[str, str], ...] = DEFAULT_CONFUSIONS

    def corrupt(self, text: str) -> str:
        """Return ``text`` with noise applied at the configured rate."""
        if not text:
            return text
        expected = self.rate * len(text) / 100.0
        # Draw the number of edits from a small Poisson-ish distribution:
        # floor plus a Bernoulli on the fractional part keeps it unbiased.
        edits = int(expected)
        if self.rng.random() < expected - edits:
            edits += 1
        for _ in range(edits):
            text = self._one_edit(text)
        return text

    def _one_edit(self, text: str) -> str:
        if not text:
            return text
        choice = self.rng.random()
        if choice < 0.6:
            return self._confuse(text)
        if choice < 0.8:
            return self._drop(text)
        return self._swap(text)

    def _confuse(self, text: str) -> str:
        candidates = [
            (clean, noisy)
            for clean, noisy in self.confusions
            if clean in text
        ]
        if not candidates:
            return self._drop(text)
        clean, noisy = self.rng.choice(candidates)
        positions = _find_all(text, clean)
        at = self.rng.choice(positions)
        return text[:at] + noisy + text[at + len(clean):]

    def _drop(self, text: str) -> str:
        if len(text) <= 1:
            return text
        at = self.rng.randrange(len(text))
        return text[:at] + text[at + 1:]

    def _swap(self, text: str) -> str:
        if len(text) < 2:
            return text
        at = self.rng.randrange(len(text) - 1)
        return text[:at] + text[at + 1] + text[at] + text[at + 2:]


def _find_all(text: str, needle: str) -> list[int]:
    out = []
    start = 0
    while True:
        at = text.find(needle, start)
        if at == -1:
            return out
        out.append(at)
        start = at + 1


def learn_confusions(
    aligned_pairs: Iterable[tuple[str, str]],
    *,
    min_count: int = 2,
    max_ngram: int = 2,
) -> tuple[tuple[str, str], ...]:
    """Learn a (clean → noisy) confusion table from aligned string pairs.

    Given ``(clean, noisy)`` pairs — e.g. hand-corrected names next to the
    scanner's output — this finds the substring substitutions (up to
    ``max_ngram`` characters on either side) that explain the differences,
    and keeps those seen at least ``min_count`` times.  The result plugs
    straight into :class:`OCRNoiseModel` or :class:`OCRRepairer`.

    Alignment is the simple common-prefix/common-suffix diff: exactly the
    shape single-substitution OCR damage takes; pairs whose difference is
    not a single contiguous substitution are skipped.

    >>> table = learn_confusions([
    ...     ("Herndon", "Hemdon"), ("Barnden", "Bamden"),
    ...     ("Johnson", "Johson"), ("Johnson", "Johnson"),
    ... ], min_count=1)
    >>> ("rn", "m") in table
    True
    >>> ("n", "") in table
    True
    """
    from collections import Counter

    counts: Counter[tuple[str, str]] = Counter()
    for clean, noisy in aligned_pairs:
        if clean == noisy:
            continue
        prefix = 0
        while (
            prefix < len(clean)
            and prefix < len(noisy)
            and clean[prefix] == noisy[prefix]
        ):
            prefix += 1
        suffix = 0
        while (
            suffix < len(clean) - prefix
            and suffix < len(noisy) - prefix
            and clean[len(clean) - 1 - suffix] == noisy[len(noisy) - 1 - suffix]
        ):
            suffix += 1
        clean_mid = clean[prefix : len(clean) - suffix]
        noisy_mid = noisy[prefix : len(noisy) - suffix]
        if len(clean_mid) > max_ngram or len(noisy_mid) > max_ngram:
            continue  # not a local substitution; skip
        counts[(clean_mid, noisy_mid)] += 1
    return tuple(
        pair for pair, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if count >= min_count
    )


class OCRRepairer:
    """Lexicon-guided inversion of common OCR confusions.

    Built from a clean lexicon (e.g. every surname in the reference corpus).
    ``repair(token)`` returns the token unchanged when it is already in the
    lexicon; otherwise it generates candidates by applying each confusion in
    reverse (noisy → clean) plus single-character insertions for dropped
    letters, and returns the unique lexicon hit if exactly one candidate
    lands in the lexicon.  Ambiguity and misses leave the token unchanged —
    a conservative policy that never damages clean text.

    >>> repairer = OCRRepairer(["Johnson", "Herndon"])
    >>> repairer.repair("Johson")
    'Johnson'
    >>> repairer.repair("Hemdon")
    'Herndon'
    >>> repairer.repair("Unrelated")
    'Unrelated'
    """

    def __init__(
        self,
        lexicon: Iterable[str],
        *,
        confusions: Sequence[tuple[str, str]] = DEFAULT_CONFUSIONS,
    ):
        self._lexicon = set(lexicon)
        self._lexicon_folded: dict[str, str] = {}
        for word in self._lexicon:
            self._lexicon_folded.setdefault(word.casefold(), word)
        # reverse table: noisy substring -> clean substrings
        self._reverse: dict[str, list[str]] = {}
        for clean, noisy in confusions:
            self._reverse.setdefault(noisy, []).append(clean)
        self._alphabet = sorted({c for w in self._lexicon for c in w.casefold()})

    def __contains__(self, token: str) -> bool:
        return token in self._lexicon or token.casefold() in self._lexicon_folded

    def repair(self, token: str) -> str:
        """Repair one token; returns it unchanged when no unique fix exists."""
        if token in self:
            return self._lexicon_folded.get(token.casefold(), token)
        hits = {c for c in self._candidates(token) if c.casefold() in self._lexicon_folded}
        resolved = {self._lexicon_folded[c.casefold()] for c in hits}
        if len(resolved) == 1:
            return next(iter(resolved))
        return token

    def repair_text(self, text: str) -> str:
        """Repair every whitespace-delimited token of ``text``."""
        return " ".join(self.repair(tok) for tok in text.split())

    def _candidates(self, token: str) -> set[str]:
        candidates: set[str] = set()
        # Reverse confusions (substring replacement at every position).
        for noisy, cleans in self._reverse.items():
            start = 0
            while True:
                at = token.find(noisy, start)
                if at == -1:
                    break
                for clean in cleans:
                    candidates.add(token[:at] + clean + token[at + len(noisy):])
                start = at + 1
        # Re-insert one dropped character.
        for i in range(len(token) + 1):
            for ch in self._alphabet:
                candidates.add(token[:i] + ch + token[i:])
        # Undo one neighbour swap.
        for i in range(len(token) - 1):
            candidates.add(token[:i] + token[i + 1] + token[i] + token[i + 2:])
        candidates.discard(token)
        return candidates

"""Two-column page splitting for scanned index pages.

Law-review indexes are typeset in one wide table, but many scans of
multi-column front matter interleave two columns line by line::

    Abdalla, Tarek F.*        |  Lorensen, Willard D.
    Abramovsky, Deborah       |  Lynd, Alice

OCR then emits each physical line with both columns' text separated by a
run of spaces at a roughly constant offset (the gutter).  This module
detects that gutter and splits the page back into two logical column
streams (left column first, then right), after which the normal ingest
parser applies.

Detection is conservative: a gutter is accepted only when a single
whitespace column is open on a clear majority of the non-blank lines —
single-column text falls through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Minimum width of the whitespace run accepted as a gutter.
MIN_GUTTER_WIDTH = 3


@dataclass(frozen=True, slots=True)
class ColumnSplit:
    """Result of a split attempt."""

    is_two_column: bool
    gutter_start: int | None
    left: list[str]
    right: list[str]

    def merged(self) -> str:
        """Left column then right column, as one logical text."""
        return "\n".join([*self.left, *self.right])


def _occupancy(lines: list[str]) -> list[int]:
    """How many lines have a non-space character at each column position."""
    width = max((len(line) for line in lines), default=0)
    counts = [0] * width
    for line in lines:
        for i, ch in enumerate(line):
            if not ch.isspace():
                counts[i] += 1
    return counts


def detect_gutter(text: str) -> int | None:
    """Start offset of the inter-column gutter, or ``None``.

    The gutter is the leftmost run of ``MIN_GUTTER_WIDTH``+ positions that
    are blank on **every** non-blank line, with printable text on both
    sides on a majority of lines (a wide right margin is not a gutter).
    The strict blank requirement is deliberate: a lenient threshold would
    let the splitter chop characters off unusually long left-column lines.

    >>> detect_gutter("ab        cd\\nxy        zw\\npq        rs\\n")
    2
    >>> detect_gutter("just one column of text\\nwith several lines\\nof prose\\n") is None
    True
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 3:
        return None
    counts = _occupancy(lines)

    run_start = None
    for i, count in enumerate(counts):
        if count == 0:
            if run_start is None:
                run_start = i
            continue
        if run_start is not None and i - run_start >= MIN_GUTTER_WIDTH:
            if _both_sides_used(lines, run_start, i):
                return run_start
        run_start = None
    # a run reaching the right edge is a margin, not a gutter
    return None


def _both_sides_used(lines: list[str], gutter_start: int, gutter_end: int) -> bool:
    both = 0
    for line in lines:
        left_used = bool(line[:gutter_start].strip())
        right_used = bool(line[gutter_end:].strip())
        if left_used and right_used:
            both += 1
    return both >= len(lines) * 0.5


def split_columns(text: str) -> ColumnSplit:
    """Split ``text`` into its two columns when a gutter is detected.

    Single-column input comes back unchanged in ``left`` with
    ``is_two_column=False``.

    >>> split = split_columns("Abel, A.     Lorens, L.\\n"
    ...                       "Brown, B.    Lynd, Q.\\n"
    ...                       "Cole, C.     Moran, J.\\n")
    >>> split.is_two_column
    True
    >>> split.left
    ['Abel, A.', 'Brown, B.', 'Cole, C.']
    >>> split.right
    ['Lorens, L.', 'Lynd, Q.', 'Moran, J.']
    """
    lines = text.splitlines()
    gutter = detect_gutter(text)
    if gutter is None:
        return ColumnSplit(
            is_two_column=False,
            gutter_start=None,
            left=[line.rstrip() for line in lines],
            right=[],
        )
    # The split point is the end of the all-blank run: the first position
    # after the gutter where any line resumes text.
    content = [line for line in lines if line.strip()]
    counts = _occupancy(content)
    end = gutter
    while end < len(counts) and counts[end] == 0:
        end += 1
    left = [line[:gutter].rstrip() for line in lines]
    right = [line[end:].rstrip() if len(line) > end else "" for line in lines]
    return ColumnSplit(
        is_two_column=True,
        gutter_start=gutter,
        left=left,
        right=right,
    )

"""Tokenization and small word-level utilities.

The tokenizer is deliberately simple and deterministic: it splits on
whitespace, peels leading/trailing punctuation into separate tokens, and
keeps intra-word punctuation (hyphens, apostrophes, periods in
abbreviations) attached.  That is the right granularity for titles and
names; nothing here attempts linguistic analysis.
"""

from __future__ import annotations

import re

_LEADING_PUNCT = re.compile(r"^[\"'“”‘’(\[{<]+")
_TRAILING_PUNCT = re.compile(r"[\"'“”‘’)\]}>.,;:!?]+$")
_ABBREVIATION = re.compile(r"^(?:[A-Za-z]\.)+$")  # U.S., J.R., I.R.C.


def tokenize(text: str) -> list[str]:
    """Split ``text`` into word and punctuation tokens.

    >>> tokenize('The "Due-on-Sale" Clause (1982)')
    ['The', '"', 'Due-on-Sale', '"', 'Clause', '(', '1982', ')']
    >>> tokenize("U.S. v. Smith")
    ['U.S.', 'v.', 'Smith']
    """
    tokens: list[str] = []
    for chunk in text.split():
        lead = _LEADING_PUNCT.match(chunk)
        if lead:
            tokens.extend(lead.group(0))
            chunk = chunk[lead.end():]
        trail = _TRAILING_PUNCT.search(chunk)
        trailing = ""
        if trail and not _ABBREVIATION.match(chunk):
            trailing = trail.group(0)
            chunk = chunk[: trail.start()]
            # keep a single trailing period on abbreviations like "v."
            if len(chunk) <= 2 and trailing.startswith("."):
                chunk += "."
                trailing = trailing[1:]
        if chunk:
            tokens.append(chunk)
        tokens.extend(trailing)
    return tokens


def word_shape(token: str) -> str:
    """Compress a token into a shape signature: ``"McAteer"`` → ``"XxXx"``.

    Runs of the same character class collapse; classes are ``X`` (upper),
    ``x`` (lower), ``9`` (digit), and the character itself for punctuation.
    Used by the ingest parser to recognize column furniture.

    >>> word_shape("McAteer")
    'XxXx'
    >>> word_shape("95:1365")
    '9:9'
    """
    out: list[str] = []
    for ch in token:
        if ch.isupper():
            cls = "X"
        elif ch.islower():
            cls = "x"
        elif ch.isdigit():
            cls = "9"
        else:
            cls = ch
        if not out or out[-1] != cls:
            out.append(cls)
    return "".join(out)


#: Words kept lower-case inside title case (standard bibliographic list).
_MINOR_WORDS = frozenset(
    {
        "a", "an", "and", "as", "at", "but", "by", "for", "in", "nor",
        "of", "on", "or", "per", "the", "to", "v.", "vs.", "via",
    }
)


def sentence_case(title: str) -> str:
    """Normalize a SHOUTING or inconsistent title into bibliographic case.

    First and last words are always capitalized; minor words stay lower.
    When the title as a whole is shouting (mostly upper-case) every word is
    re-cased; otherwise words with internal structure — mixed case, periods,
    or all-caps acronyms — are preserved verbatim (``NLRB``, ``McAteer``,
    ``I.R.C.``).

    >>> sentence_case("THE LAW OF COAL")
    'The Law of Coal'
    >>> sentence_case("regulating human NLRB therapy")
    'Regulating Human NLRB Therapy'
    """
    words = title.split()
    if not words:
        return title
    alpha = [c for c in title if c.isalpha()]
    shouting = bool(alpha) and sum(c.isupper() for c in alpha) / len(alpha) > 0.7

    out: list[str] = []
    last = len(words) - 1
    for i, word in enumerate(words):
        if not shouting and _has_internal_structure(word):
            out.append(word)
            continue
        lower = word.lower()
        if 0 < i < last and lower in _MINOR_WORDS:
            out.append(lower)
        else:
            out.append(lower[:1].upper() + lower[1:])
    return " ".join(out)


def _has_internal_structure(word: str) -> bool:
    body = word[1:]
    return any(c.isupper() for c in body) or "." in word[:-1]

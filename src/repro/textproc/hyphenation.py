"""Repairing hyphenated line wraps in scanned text.

Typeset columns break words with a trailing hyphen; OCR then yields::

    The Federal Surface Mining Control and
    Reclamation Act of 1977-First to Sur-
    vive a Direct Tenth Amendment Attack

Joining is not purely mechanical because real compounds also end lines
(``Employer-\\nEmployee``).  The heuristic used here: join when the
continuation starts lower-case (a broken word); keep the hyphen when the
continuation starts upper-case (a compound split at its natural hyphen).
This matches the conventions of the reference artifact.
"""

from __future__ import annotations

import re

_TRAILING_HYPHEN = re.compile(r"[-‐‑]\s*$")


def join_hyphen_wraps(first: str, second: str) -> tuple[str, bool]:
    """Join ``first`` (ending in a hyphen) with continuation ``second``.

    Returns ``(joined_text, was_word_break)``.  When ``first`` does not end
    with a hyphen the lines are joined with a space.

    >>> join_hyphen_wraps("First to Sur-", "vive a Direct Attack")
    ('First to Survive a Direct Attack', True)
    >>> join_hyphen_wraps("the Employer-", "Employee Relationship")
    ('the Employer-Employee Relationship', False)
    >>> join_hyphen_wraps("no hyphen here", "next line")
    ('no hyphen here next line', False)
    """
    first = first.rstrip()
    second = second.lstrip()
    if not _TRAILING_HYPHEN.search(first):
        return (f"{first} {second}".strip(), False)
    if not second:
        return (_TRAILING_HYPHEN.sub("", first), False)

    head = _TRAILING_HYPHEN.sub("", first)
    if second[0].islower():
        return (head + second, True)
    return (f"{head}-{second}", False)


def unwrap_lines(lines: list[str]) -> str:
    """Collapse a wrapped multi-line block into one logical line.

    Applies :func:`join_hyphen_wraps` pairwise, left to right.

    >>> unwrap_lines(["The Federal Surface Mining Control and",
    ...               "Reclamation Act of 1977-First to Sur-",
    ...               "vive a Direct Tenth Amendment Attack"])
    'The Federal Surface Mining Control and Reclamation Act of 1977-First to Survive a Direct Tenth Amendment Attack'
    """
    if not lines:
        return ""
    text = lines[0].strip()
    for line in lines[1:]:
        text, _ = join_hyphen_wraps(text, line)
    return text


def count_word_breaks(lines: list[str]) -> int:
    """Number of hyphen wraps that would be repaired as word breaks."""
    breaks = 0
    for first, second in zip(lines, lines[1:]):
        first = first.rstrip()
        second = second.lstrip()
        if _TRAILING_HYPHEN.search(first) and second and second[0].islower():
            breaks += 1
    return breaks

"""The co-authorship graph.

Nodes are authors (identity keys, labelled with display names); an edge
joins two authors for every piece they wrote together, weighted by how
many.  Built on :mod:`networkx` so the full graph-analysis toolbox applies
downstream; the stats bundle covers what the corpus reports need.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

import networkx as nx

from repro.core.entry import PublicationRecord


def collaboration_graph(records: Iterable[PublicationRecord]) -> "nx.Graph":
    """Build the weighted co-authorship graph.

    Node keys are :meth:`PersonName.identity_key` tuples with attributes
    ``label`` (inverted display name) and ``pieces`` (authored count).
    Edge attribute ``weight`` counts joint pieces.
    """
    graph = nx.Graph()
    for record in records:
        keys = []
        for author in record.authors:
            key = author.identity_key()
            if not graph.has_node(key):
                graph.add_node(key, label=author.inverted(), pieces=0)
            graph.nodes[key]["pieces"] += 1
            keys.append(key)
        for a, b in combinations(sorted(set(keys)), 2):
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
    return graph


@dataclass(frozen=True, slots=True)
class CollaborationStats:
    """Shape summary of a co-authorship graph."""

    authors: int
    collaborations: int  #: distinct collaborating pairs
    solo_authors: int  #: degree-0 nodes
    components: int  #: connected components among collaborators (size >= 2)
    largest_component: int
    most_collaborative: tuple[str, int] | None  #: (label, degree)
    strongest_pair: tuple[str, str, int] | None  #: (label, label, weight)


def collaboration_stats(records: Iterable[PublicationRecord]) -> CollaborationStats:
    """Compute :class:`CollaborationStats` for ``records``."""
    graph = collaboration_graph(records)
    solo = [n for n in graph.nodes if graph.degree(n) == 0]
    collaborators = graph.subgraph(n for n in graph.nodes if graph.degree(n) > 0)
    components = list(nx.connected_components(collaborators))

    most_collaborative = None
    if collaborators.number_of_nodes():
        node, degree = max(collaborators.degree, key=lambda nd: (nd[1], graph.nodes[nd[0]]["label"]))
        most_collaborative = (graph.nodes[node]["label"], degree)

    strongest_pair = None
    if graph.number_of_edges():
        a, b, data = max(
            graph.edges(data=True),
            key=lambda edge: (edge[2]["weight"], graph.nodes[edge[0]]["label"]),
        )
        strongest_pair = (
            graph.nodes[a]["label"],
            graph.nodes[b]["label"],
            data["weight"],
        )

    return CollaborationStats(
        authors=graph.number_of_nodes(),
        collaborations=graph.number_of_edges(),
        solo_authors=len(solo),
        components=len(components),
        largest_component=max((len(c) for c in components), default=0),
        most_collaborative=most_collaborative,
        strongest_pair=strongest_pair,
    )

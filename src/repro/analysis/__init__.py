"""Bibliometric analysis over publication corpora.

The database exists to be asked questions; this package answers the ones
an editor or historian of a journal actually asks:

* :mod:`productivity` — who writes how much; concentration measures.
* :mod:`coauthors` — the collaboration graph (networkx) and its shape.
* :mod:`trends` — what the journal writes about, by period.

Everything operates on plain ``PublicationRecord`` sequences, so the
input can come from the repository, the corpus loaders, or ingest.
"""

from repro.analysis.productivity import (
    AuthorProductivity,
    gini_coefficient,
    head_share,
    productivity,
)
from repro.analysis.coauthors import CollaborationStats, collaboration_graph, collaboration_stats
from repro.analysis.trends import KeywordTrend, emerging_keywords, keyword_trend, top_keywords

__all__ = [
    "AuthorProductivity",
    "productivity",
    "gini_coefficient",
    "head_share",
    "CollaborationStats",
    "collaboration_graph",
    "collaboration_stats",
    "KeywordTrend",
    "keyword_trend",
    "top_keywords",
    "emerging_keywords",
]

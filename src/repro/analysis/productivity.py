"""Author productivity: counts and concentration.

Scholarly output is famously heavy-tailed (Lotka's law); these helpers
quantify that for a corpus — per-author counts, the Gini coefficient of
the output distribution, and the share written by the most prolific head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.entry import PublicationRecord
from repro.names.model import PersonName


@dataclass(frozen=True, slots=True)
class AuthorProductivity:
    """One author's output."""

    author: PersonName
    total: int
    student_pieces: int
    first_year: int
    last_year: int

    @property
    def span_years(self) -> int:
        return self.last_year - self.first_year + 1


def productivity(records: Iterable[PublicationRecord]) -> list[AuthorProductivity]:
    """Per-author output, most productive first (ties by name).

    Authors are identified by :meth:`PersonName.identity_key`; each
    co-authored piece counts once for every author.
    """
    by_author: dict[tuple, dict] = {}
    for record in records:
        for author in record.authors:
            key = author.identity_key()
            slot = by_author.setdefault(
                key,
                {
                    "author": author,
                    "total": 0,
                    "student": 0,
                    "first": record.citation.year,
                    "last": record.citation.year,
                },
            )
            slot["total"] += 1
            if record.is_student_work:
                slot["student"] += 1
            slot["first"] = min(slot["first"], record.citation.year)
            slot["last"] = max(slot["last"], record.citation.year)

    out = [
        AuthorProductivity(
            author=slot["author"],
            total=slot["total"],
            student_pieces=slot["student"],
            first_year=slot["first"],
            last_year=slot["last"],
        )
        for slot in by_author.values()
    ]
    out.sort(key=lambda p: (-p.total, p.author.inverted()))
    return out


def gini_coefficient(counts: Sequence[int]) -> float:
    """Gini coefficient of a count distribution (0 = equal, →1 = one
    author writes everything).

    >>> gini_coefficient([1, 1, 1, 1])
    0.0
    >>> gini_coefficient([0, 0, 0, 10]) > 0.7
    True
    >>> gini_coefficient([])
    0.0
    """
    values = sorted(counts)
    n = len(values)
    total = sum(values)
    if n == 0 or total == 0:
        return 0.0
    # standard formula over sorted values: G = (2*Σ i*x_i)/(n*Σx) - (n+1)/n
    weighted = sum(i * x for i, x in enumerate(values, start=1))
    return 2.0 * weighted / (n * total) - (n + 1) / n


def head_share(counts: Sequence[int], k: int) -> float:
    """Fraction of total output produced by the ``k`` most productive.

    >>> head_share([5, 3, 1, 1], 1)
    0.5
    >>> head_share([], 3)
    0.0
    """
    values = sorted(counts, reverse=True)
    total = sum(values)
    if total == 0:
        return 0.0
    return sum(values[:k]) / total

"""Topic trends: what the journal writes about, by period.

Keywords come from the same significant-word extraction the KWIC subject
index uses (:func:`repro.core.kwic.significant_words`), so the trend
numbers and the printed subject index agree on vocabulary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.entry import PublicationRecord
from repro.core.kwic import significant_words


@dataclass(frozen=True, slots=True)
class KeywordTrend:
    """Occurrences of one keyword per year."""

    keyword: str
    by_year: Mapping[int, int]

    @property
    def total(self) -> int:
        return sum(self.by_year.values())

    def in_span(self, first: int, last: int) -> int:
        """Occurrences within ``[first, last]``."""
        return sum(
            count for year, count in self.by_year.items() if first <= year <= last
        )


def keyword_trend(
    records: Iterable[PublicationRecord], keyword: str
) -> KeywordTrend:
    """Yearly occurrence counts of ``keyword`` in titles.

    >>> recs = [PublicationRecord.create(1, "The Law of Coal", ["A, B."], "74:283 (1972)"),
    ...         PublicationRecord.create(2, "Coal and Energy", ["C, D."], "76:257 (1974)")]
    >>> keyword_trend(recs, "coal").by_year
    {1972: 1, 1974: 1}
    """
    wanted = keyword.casefold()
    by_year: Counter[int] = Counter()
    for record in records:
        if wanted in significant_words(record.title):
            by_year[record.citation.year] += 1
    return KeywordTrend(keyword=wanted, by_year=dict(sorted(by_year.items())))


def top_keywords(
    records: Sequence[PublicationRecord],
    *,
    first: int | None = None,
    last: int | None = None,
    k: int = 10,
    stopwords: Iterable[str] = (),
) -> list[tuple[str, int]]:
    """The ``k`` most frequent title keywords in ``[first, last]``.

    Ties break alphabetically for determinism.
    """
    suppress = {w.casefold() for w in stopwords}
    counts: Counter[str] = Counter()
    for record in records:
        year = record.citation.year
        if first is not None and year < first:
            continue
        if last is not None and year > last:
            continue
        for word in significant_words(record.title):
            if word not in suppress:
                counts[word] += 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]


def emerging_keywords(
    records: Sequence[PublicationRecord],
    *,
    split_year: int,
    k: int = 10,
    min_late_count: int = 3,
    stopwords: Iterable[str] = (),
) -> list[tuple[str, int, int]]:
    """Keywords that grew the most after ``split_year``.

    Returns ``(keyword, early_count, late_count)`` sorted by growth
    (late − early), keeping only keywords with at least
    ``min_late_count`` late occurrences.
    """
    suppress = {w.casefold() for w in stopwords}
    early: Counter[str] = Counter()
    late: Counter[str] = Counter()
    for record in records:
        bucket = late if record.citation.year > split_year else early
        for word in significant_words(record.title):
            if word not in suppress:
                bucket[word] += 1
    rows = [
        (word, early.get(word, 0), count)
        for word, count in late.items()
        if count >= min_late_count
    ]
    rows.sort(key=lambda row: (-(row[2] - row[1]), row[0]))
    return rows[:k]

"""Retry-with-backoff for transient I/O faults.

A :class:`RetryPolicy` wraps the storage layer's durability syscalls
(WAL write/fsync, snapshot write/rename) and re-issues an operation that
failed *transiently* — ``EINTR``/``EAGAIN`` from the OS, or an injected
:class:`~repro.storage.faultfs.TransientInjectedFault` from the chaos
harness.  Permanent errors (``ENOSPC``, corruption, plain injected
faults) are never retried: they re-raise immediately, unchanged.

Three bounds keep retries from amplifying an outage:

* **attempts** — at most ``max_attempts`` tries per call; exhaustion
  re-raises the *original* error (the caller sees exactly what it would
  have seen with no policy, plus ``resilience.retry.exhausted`` moving);
* **backoff** — sleeps grow exponentially with *decorrelated jitter*
  (each sleep is uniform over ``[base, prev * 3]``, capped), so a herd
  of retriers decorrelates instead of synchronizing;
* **retry budget** — a token bucket shared across calls: each retry
  spends one token, tokens refill at a fixed rate, and an empty bucket
  disables retrying (the original error surfaces) so a persistent fault
  degrades to fail-fast instead of multiplying I/O load.

The fast path is one ``try``: a call that succeeds first time costs no
bookkeeping, takes no lock, and moves no metric.

Metric names (catalogued in ``docs/observability.md``):
``resilience.retry.attempts``, ``resilience.retry.recovered``,
``resilience.retry.exhausted``, ``resilience.retry.denied``,
``resilience.retry.sleep.seconds``.
"""

from __future__ import annotations

import errno
import random
import threading
import time
from typing import Any, Callable, TypeVar

from repro.obs import logging as _logging
from repro.obs import metrics as _metrics

__all__ = ["RetryBudget", "RetryPolicy", "is_transient"]

T = TypeVar("T")

#: OS error numbers that mean "try again" rather than "broken".
_TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.EWOULDBLOCK})

_ATTEMPTS = _metrics.counter("resilience.retry.attempts")
_RECOVERED = _metrics.counter("resilience.retry.recovered")
_EXHAUSTED = _metrics.counter("resilience.retry.exhausted")
_DENIED = _metrics.counter("resilience.retry.denied")
_SLEEP_SECONDS = _metrics.histogram("resilience.retry.sleep.seconds")


def is_transient(exc: BaseException) -> bool:
    """Default transient/permanent classifier.

    Transient: an :class:`OSError` whose errno is ``EINTR``/``EAGAIN``/
    ``EWOULDBLOCK``, or any exception flagged ``transient = True`` (the
    marker :class:`~repro.storage.faultfs.TransientInjectedFault`
    carries).  Everything else is permanent.
    """
    if getattr(exc, "transient", False):
        return True
    return isinstance(exc, OSError) and exc.errno in _TRANSIENT_ERRNOS


class RetryBudget:
    """Token bucket bounding retry *volume* across many calls.

    ``capacity`` tokens, refilled continuously at ``refill_per_s``.  A
    retry spends one token; with the bucket empty, retrying is denied
    and the original error surfaces.  Thread-safe.
    """

    def __init__(self, capacity: float = 10.0, refill_per_s: float = 1.0):
        if capacity <= 0 or refill_per_s <= 0:
            raise ValueError("capacity and refill_per_s must be positive")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._tokens = float(capacity)
        self._last = time.perf_counter()
        self._lock = threading.Lock()

    def try_spend(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; returns whether it succeeded."""
        with self._lock:
            now = time.perf_counter()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._last) * self.refill_per_s
            )
            self._last = now
            if self._tokens < tokens:
                return False
            self._tokens -= tokens
            return True

    @property
    def tokens(self) -> float:
        """Current token count (refreshed; for tests and introspection)."""
        with self._lock:
            now = time.perf_counter()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._last) * self.refill_per_s
            )
            self._last = now
            return self._tokens


class RetryPolicy:
    """Bounded exponential-backoff-with-jitter retry for transient faults.

    Parameters
    ----------
    max_attempts:
        Total tries per call (first attempt included).
    base_delay_s / max_delay_s:
        Backoff bounds.  Each sleep is drawn uniformly from
        ``[base_delay_s, 3 * previous_sleep]`` (decorrelated jitter),
        clamped to ``max_delay_s``.
    budget:
        Optional shared :class:`RetryBudget`; ``None`` means unbudgeted.
    classify:
        Transient/permanent predicate (default :func:`is_transient`).
    rng:
        Injectable :class:`random.Random` for deterministic tests.

    >>> policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
    >>> policy.call(lambda: 42)
    42
    """

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        base_delay_s: float = 0.001,
        max_delay_s: float = 0.1,
        budget: RetryBudget | None = None,
        classify: Callable[[BaseException], bool] = is_transient,
        rng: random.Random | None = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_s < 0 or max_delay_s < base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.budget = budget
        self.classify = classify
        self._rng = rng if rng is not None else random.Random()

    def call(self, fn: Callable[[], T], *, describe: str = "") -> T:
        """Run ``fn``, retrying transient failures within the bounds.

        The first attempt is inline — a successful call pays one ``try``
        and nothing else.  On exhaustion (attempts or budget) the
        original (first) error re-raises unchanged.
        """
        try:
            return fn()
        except Exception as exc:
            return self._retry_slow(fn, exc, describe)

    def _retry_slow(self, fn: Callable[[], T], first_exc: Exception, describe: str) -> T:
        if not self.classify(first_exc):
            raise first_exc
        _ATTEMPTS.inc()  # the failed first attempt
        sleep = self.base_delay_s
        for attempt in range(2, self.max_attempts + 1):
            if self.budget is not None and not self.budget.try_spend():
                _DENIED.inc()
                _logging.warn(
                    "resilience.retry.denied",
                    op=describe,
                    attempt=attempt,
                    error=repr(first_exc),
                )
                raise first_exc
            sleep = min(
                self.max_delay_s,
                self._rng.uniform(self.base_delay_s, max(sleep * 3, self.base_delay_s)),
            )
            if sleep > 0:
                _SLEEP_SECONDS.observe(sleep)
                time.sleep(sleep)
            _ATTEMPTS.inc()
            try:
                result = fn()
            except Exception as exc:  # noqa: BLE001 - classified below
                if not self.classify(exc):
                    raise
                _logging.debug(
                    "resilience.retry.attempt",
                    op=describe,
                    attempt=attempt,
                    error=repr(exc),
                )
                continue
            _RECOVERED.inc()
            _logging.info(
                "resilience.retry.recovered",
                op=describe,
                attempts=attempt,
                error=repr(first_exc),
            )
            return result
        _EXHAUSTED.inc()
        _logging.warn(
            "resilience.retry.exhausted",
            op=describe,
            attempts=self.max_attempts,
            error=repr(first_exc),
        )
        raise first_exc

    def wrap(self, fn: Callable[..., T], *, describe: str = "") -> Callable[..., T]:
        """A function applying this policy to every call of ``fn``."""

        def wrapped(*args: Any, **kwargs: Any) -> T:
            return self.call(lambda: fn(*args, **kwargs), describe=describe)

        return wrapped

"""Admission control: a bounded concurrency gate plus a circuit breaker.

:class:`AdmissionController` fronts the query-serving path with a
semaphore of ``max_concurrent`` execution slots and a bounded waiting
queue.  A request that finds all slots busy waits (up to
``queue_timeout_s``) as long as fewer than ``max_queue`` requests are
already waiting; otherwise it is **shed** immediately with
:class:`~repro.errors.AdmissionRejected` carrying a ``Retry-After``
hint.  Shedding at the door is the point: a saturated server answers
"come back later" in microseconds instead of stacking unbounded work it
will time out on anyway.

:class:`CircuitBreaker` watches outcomes (``ok`` / ``shed`` /
``timeout``) over a sliding window and *opens* when the shed-rate or
timeout-rate crosses its threshold.  An open breaker marks ``/healthz``
``degraded`` — a polite signal to load balancers to prefer other
replicas — and closes again by itself once ``cooldown_s`` passes and
the window drains below the thresholds.

Metric names (catalogued in ``docs/observability.md``):
``resilience.admission.admitted``, ``resilience.admission.shed``,
``resilience.admission.wait.seconds``,
``resilience.admission.in_flight``, ``resilience.admission.waiting``,
``resilience.breaker.open``, ``resilience.breaker.trips``.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import Any, Iterator

from repro.errors import AdmissionRejected
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics

__all__ = ["AdmissionController", "CircuitBreaker"]

_ADMITTED = _metrics.counter("resilience.admission.admitted")
_SHED = _metrics.counter("resilience.admission.shed")
_WAIT_SECONDS = _metrics.histogram("resilience.admission.wait.seconds")
_IN_FLIGHT = _metrics.gauge("resilience.admission.in_flight")
_WAITING = _metrics.gauge("resilience.admission.waiting")
_BREAKER_OPEN = _metrics.gauge("resilience.breaker.open")
_BREAKER_TRIPS = _metrics.counter("resilience.breaker.trips")


class AdmissionController:
    """Semaphore-gated admission with a bounded waiting queue.

    >>> gate = AdmissionController(max_concurrent=2, max_queue=0,
    ...                            queue_timeout_s=0.0)
    >>> with gate.slot():
    ...     pass  # admitted work runs here
    """

    def __init__(
        self,
        *,
        max_concurrent: int = 8,
        max_queue: int = 16,
        queue_timeout_s: float = 0.5,
        retry_after_s: float = 1.0,
        breaker: "CircuitBreaker | None" = None,
    ):
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_queue < 0 or queue_timeout_s < 0:
            raise ValueError("max_queue and queue_timeout_s must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self.breaker = breaker
        self._sem = threading.Semaphore(max_concurrent)
        self._lock = threading.Lock()
        self._waiting = 0
        self._in_flight = 0

    # -- introspection ----------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    # -- admission --------------------------------------------------------

    @contextlib.contextmanager
    def slot(self) -> Iterator[None]:
        """Hold one execution slot for the ``with`` body.

        Raises :class:`~repro.errors.AdmissionRejected` when the queue
        is full or the queue wait times out.
        """
        self.acquire()
        try:
            yield
        finally:
            self.release()

    def acquire(self) -> None:
        """Take a slot (waiting in the bounded queue); shed on overload."""
        # Fast path: a free slot admits immediately, no queue involved.
        if self._sem.acquire(blocking=False):
            self._admitted()
            return
        with self._lock:
            if self._waiting >= self.max_queue:
                self._shed("queue-full")
            self._waiting += 1
            _WAITING.set(self._waiting)
        start = time.perf_counter()
        try:
            admitted = self._sem.acquire(timeout=self.queue_timeout_s)
        finally:
            with self._lock:
                self._waiting -= 1
                _WAITING.set(self._waiting)
        _WAIT_SECONDS.observe(time.perf_counter() - start)
        if not admitted:
            self._shed("queue-timeout")
        self._admitted()

    def _admitted(self) -> None:
        with self._lock:
            self._in_flight += 1
            _IN_FLIGHT.set(self._in_flight)
        _ADMITTED.inc()

    def release(self) -> None:
        with self._lock:
            self._in_flight -= 1
            _IN_FLIGHT.set(self._in_flight)
        self._sem.release()

    def _shed(self, reason: str) -> None:
        _SHED.inc()
        if self.breaker is not None:
            self.breaker.record("shed")
        _logging.warn(
            "resilience.admission.shed",
            reason=reason,
            in_flight=self._in_flight,
            waiting=self._waiting,
            retry_after_s=self.retry_after_s,
        )
        raise AdmissionRejected(
            f"admission rejected ({reason}): "
            f"{self._in_flight} in flight, {self._waiting} waiting",
            retry_after_s=self.retry_after_s,
            reason=reason,
        )


class CircuitBreaker:
    """Sliding-window shed/timeout-rate breaker backing ``/healthz``.

    Outcomes are recorded as ``("ok" | "shed" | "timeout")`` events with
    monotonic timestamps; events older than ``window_s`` age out.  The
    breaker opens when the window holds at least ``min_events`` events
    and either bad-rate crosses its threshold; it stays open for at
    least ``cooldown_s`` and closes once the (current) window's rates
    are back under the thresholds.
    """

    def __init__(
        self,
        *,
        window_s: float = 30.0,
        min_events: int = 10,
        shed_rate_threshold: float = 0.5,
        timeout_rate_threshold: float = 0.5,
        cooldown_s: float = 10.0,
    ):
        if not 0 < shed_rate_threshold <= 1 or not 0 < timeout_rate_threshold <= 1:
            raise ValueError("rate thresholds must be in (0, 1]")
        self.window_s = window_s
        self.min_events = min_events
        self.shed_rate_threshold = shed_rate_threshold
        self.timeout_rate_threshold = timeout_rate_threshold
        self.cooldown_s = cooldown_s
        self._events: deque[tuple[float, str]] = deque()
        self._lock = threading.Lock()
        self._open_until = 0.0
        self._open = False

    def record(self, outcome: str) -> None:
        """Record one request outcome: ``"ok"``, ``"shed"``, ``"timeout"``."""
        if outcome not in ("ok", "shed", "timeout"):
            raise ValueError(f"unknown outcome {outcome!r}")
        now = time.perf_counter()
        with self._lock:
            self._events.append((now, outcome))
            self._prune(now)
            self._evaluate(now)

    @property
    def open(self) -> bool:
        """Whether the breaker is currently open (``degraded``)."""
        now = time.perf_counter()
        with self._lock:
            self._prune(now)
            self._evaluate(now)
            return self._open

    def state(self) -> dict[str, Any]:
        """Breaker status for ``/healthz`` bodies and logs."""
        now = time.perf_counter()
        with self._lock:
            self._prune(now)
            self._evaluate(now)
            total = len(self._events)
            sheds = sum(1 for _, o in self._events if o == "shed")
            timeouts = sum(1 for _, o in self._events if o == "timeout")
            return {
                "open": self._open,
                "window_s": self.window_s,
                "events": total,
                "shed_rate": round(sheds / total, 4) if total else 0.0,
                "timeout_rate": round(timeouts / total, 4) if total else 0.0,
            }

    # -- internals (lock held) --------------------------------------------

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        events = self._events
        while events and events[0][0] < cutoff:
            events.popleft()

    def _evaluate(self, now: float) -> None:
        total = len(self._events)
        sheds = timeouts = 0
        for _, outcome in self._events:
            if outcome == "shed":
                sheds += 1
            elif outcome == "timeout":
                timeouts += 1
        over = total >= self.min_events and (
            sheds / total > self.shed_rate_threshold
            or timeouts / total > self.timeout_rate_threshold
        )
        if over:
            if not self._open:
                self._open = True
                _BREAKER_TRIPS.inc()
                _BREAKER_OPEN.set(1)
                _logging.warn(
                    "resilience.breaker.open",
                    events=total,
                    sheds=sheds,
                    timeouts=timeouts,
                    window_s=self.window_s,
                )
            self._open_until = now + self.cooldown_s
        elif self._open and now >= self._open_until:
            self._open = False
            _BREAKER_OPEN.set(0)
            _logging.info("resilience.breaker.closed", events=total)

"""Deadlines, cancellation tokens, and the per-query execution guard.

Long-running work threads a single :class:`Guard` through its row loops
and charges every row examined via :meth:`Guard.tick`.  A tick is one
integer add and one compare; hot loops additionally batch their ticks
(``tick(n)`` for a block of rows, clipped to the remaining row budget)
so an armed guard costs single-digit nanoseconds per row.  Only every
``stride`` rows (default 256) does the guard pay for the real checks:
wall-clock deadline and cooperative cancellation.  On violation the guard raises the matching typed error
(:class:`~repro.errors.QueryTimeout`,
:class:`~repro.errors.QueryCancelled`,
:class:`~repro.errors.BudgetExceeded`), each carrying partial-progress
stats (``rows_examined``, ``elapsed_s``) so callers — including EXPLAIN
ANALYZE — can report how far the query got before it was stopped.

All timing uses :func:`time.perf_counter` (monotonic); a deadline is an
*instant* on that clock, so one :class:`Deadline` can bound a whole
request across several operations (parse, plan, execute, serialize).

Metric names (catalogued in ``docs/observability.md``):
``resilience.deadline.timeouts``, ``resilience.deadline.cancelled``,
``resilience.budget.exceeded``.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import BudgetExceeded, QueryCancelled, QueryTimeout
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics

__all__ = ["CancelToken", "Deadline", "Guard", "DEFAULT_CHECK_STRIDE"]

#: Rows between full deadline/cancellation checks (amortizes the clock
#: read; at typical scan rates this bounds overshoot to well under 1 ms).
DEFAULT_CHECK_STRIDE = 256

_TIMEOUTS = _metrics.counter("resilience.deadline.timeouts")
_CANCELLED = _metrics.counter("resilience.deadline.cancelled")
_BUDGET_EXCEEDED = _metrics.counter("resilience.budget.exceeded")


class CancelToken:
    """Thread-safe cooperative cancellation flag.

    The requester calls :meth:`cancel` from any thread; the executing
    side polls :attr:`cancelled` (via :meth:`Guard.tick`) and unwinds
    with :class:`~repro.errors.QueryCancelled`.  Cancellation is sticky:
    once set it never clears.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, safe from any thread)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class Deadline:
    """A point on the monotonic clock after which work must stop.

    >>> d = Deadline.after(60.0)
    >>> d.expired()
    False
    >>> d.remaining() <= 60.0
    True
    """

    __slots__ = ("at", "timeout_s")

    def __init__(self, at: float, *, timeout_s: float | None = None):
        self.at = at
        #: The originally requested span, kept for error messages.
        self.timeout_s = timeout_s

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (``perf_counter`` clock)."""
        if seconds < 0:
            raise ValueError(f"deadline span must be >= 0, got {seconds}")
        return cls(time.perf_counter() + seconds, timeout_s=seconds)

    def remaining(self) -> float:
        """Seconds until expiry (negative once past it)."""
        return self.at - time.perf_counter()

    def expired(self) -> bool:
        return time.perf_counter() >= self.at


class Guard:
    """Amortized deadline/cancellation/budget checks for one execution.

    ``tick()`` is the per-row hook: it bumps ``rows_examined``, enforces
    the row budget immediately (an integer compare), and runs the
    expensive wall-clock/cancellation checks only every ``stride`` rows.
    ``check()`` forces the full check — loops call it once up front so a
    pre-expired deadline or pre-cancelled token fails fast instead of
    after the first stride.

    A guard is single-execution state (not thread-safe); share the
    :class:`Deadline`/:class:`CancelToken` across threads, not the guard.
    """

    __slots__ = (
        "deadline",
        "cancel",
        "max_rows",
        "max_bytes",
        "stride",
        "rows_examined",
        "bytes_used",
        "started",
        "_until_check",
    )

    def __init__(
        self,
        *,
        deadline: Deadline | None = None,
        cancel: CancelToken | None = None,
        max_rows: int | None = None,
        max_bytes: int | None = None,
        stride: int = DEFAULT_CHECK_STRIDE,
    ):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if max_rows is not None and max_rows < 0:
            raise ValueError(f"max_rows must be >= 0, got {max_rows}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.deadline = deadline
        self.cancel = cancel
        self.max_rows = max_rows
        self.max_bytes = max_bytes
        self.stride = stride
        self.rows_examined = 0
        self.bytes_used = 0
        self.started = time.perf_counter()
        self._until_check = stride

    # -- hot path ---------------------------------------------------------

    def tick(self, rows: int = 1) -> None:
        """Count ``rows`` examined; check limits (amortized).

        The row budget is enforced exactly (per tick); the deadline and
        cancellation checks run every ``stride`` rows.
        """
        self.rows_examined += rows
        if self.max_rows is not None and self.rows_examined > self.max_rows:
            self._raise_budget("rows", self.max_rows, self.rows_examined)
        self._until_check -= rows
        if self._until_check <= 0:
            self._until_check = self.stride
            self.check()

    # -- full checks ------------------------------------------------------

    def check(self) -> None:
        """Run the deadline and cancellation checks immediately."""
        if self.cancel is not None and self.cancel.cancelled:
            _CANCELLED.inc()
            elapsed = time.perf_counter() - self.started
            _logging.info(
                "resilience.query.cancelled",
                rows_examined=self.rows_examined,
                elapsed_s=round(elapsed, 6),
            )
            raise QueryCancelled(
                f"query cancelled after {self.rows_examined} rows",
                rows_examined=self.rows_examined,
                elapsed_s=elapsed,
            )
        if self.deadline is not None and self.deadline.expired():
            _TIMEOUTS.inc()
            elapsed = time.perf_counter() - self.started
            _logging.warn(
                "resilience.query.timeout",
                timeout_s=self.deadline.timeout_s,
                rows_examined=self.rows_examined,
                elapsed_s=round(elapsed, 6),
            )
            raise QueryTimeout(
                f"query deadline exceeded after {self.rows_examined} rows",
                timeout_s=self.deadline.timeout_s,
                rows_examined=self.rows_examined,
                elapsed_s=elapsed,
            )

    def add_bytes(self, n: int) -> None:
        """Count ``n`` payload bytes against the byte budget (if any)."""
        self.bytes_used += n
        if self.max_bytes is not None and self.bytes_used > self.max_bytes:
            self._raise_budget("bytes", self.max_bytes, self.bytes_used)

    def _raise_budget(self, which: str, limit: int, used: int) -> None:
        _BUDGET_EXCEEDED.inc()
        elapsed = time.perf_counter() - self.started
        _logging.warn(
            "resilience.budget.exceeded",
            budget=which,
            limit=limit,
            used=used,
            rows_examined=self.rows_examined,
        )
        raise BudgetExceeded(
            f"query {which} budget exceeded: {used} > {limit}",
            budget=which,
            limit=limit,
            used=used,
            rows_examined=self.rows_examined,
            elapsed_s=elapsed,
        )

    def stats(self) -> dict[str, Any]:
        """Partial-progress snapshot (for logs and EXPLAIN ANALYZE)."""
        return {
            "rows_examined": self.rows_examined,
            "bytes_used": self.bytes_used,
            "elapsed_s": round(time.perf_counter() - self.started, 6),
        }

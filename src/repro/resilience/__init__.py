"""Resilience substrate: deadlines, admission control, retries.

Keeps the engine responsive when a query is pathological, traffic spikes,
or the disk hiccups:

* :mod:`repro.resilience.deadline` — :class:`Deadline` /
  :class:`CancelToken` / :class:`Guard`: cheap amortized per-row checks
  threaded through the query executor, title search, and storage scans,
  unwinding with typed :class:`~repro.errors.QueryTimeout` /
  :class:`~repro.errors.QueryCancelled` /
  :class:`~repro.errors.BudgetExceeded` errors that carry
  partial-progress stats;
* :mod:`repro.resilience.admission` — :class:`AdmissionController`
  (bounded concurrency + bounded queue, load shedding with retry hints)
  and :class:`CircuitBreaker` (shed/timeout-rate health signal);
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` /
  :class:`RetryBudget`: exponential backoff with decorrelated jitter
  around transient storage faults (``EINTR``/``EAGAIN``/injected),
  wrapped around WAL and snapshot I/O;
* :mod:`repro.resilience.service` — :class:`QueryService`, the composed
  serving facade behind ``repro serve-query``.

Semantics, tuning knobs, and the failure-mode table live in
``docs/resilience.md``.
"""

from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    QueryCancelled,
    QueryInterrupted,
    QueryTimeout,
)
from repro.resilience.admission import AdmissionController, CircuitBreaker
from repro.resilience.deadline import DEFAULT_CHECK_STRIDE, CancelToken, Deadline, Guard
from repro.resilience.retry import RetryBudget, RetryPolicy, is_transient
from repro.resilience.service import QueryService

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "BudgetExceeded",
    "CancelToken",
    "CircuitBreaker",
    "Deadline",
    "DEFAULT_CHECK_STRIDE",
    "Guard",
    "QueryCancelled",
    "QueryInterrupted",
    "QueryService",
    "QueryTimeout",
    "RetryBudget",
    "RetryPolicy",
    "is_transient",
]

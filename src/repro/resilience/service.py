"""The resilient query-serving facade behind ``repro serve-query``.

:class:`QueryService` composes the resilience substrate around a
:class:`~repro.query.executor.QueryEngine`:

1. every request passes the :class:`~repro.resilience.AdmissionController`
   gate (shed with a retry hint when saturated),
2. admitted work runs under a :class:`~repro.resilience.Guard` — the
   request's deadline, row budget, and response-byte budget — threaded
   through the executor and storage scan loops, and
3. the outcome feeds the :class:`~repro.resilience.CircuitBreaker` so
   ``/healthz`` flips to ``degraded`` while the service is overloaded.

The HTTP layer (``repro.obs.server``) stays transport-only: it calls
:meth:`QueryService.execute_request` and maps the typed errors
(:class:`~repro.errors.AdmissionRejected` → 429 + ``Retry-After``,
:class:`~repro.errors.QueryTimeout` → 504,
:class:`~repro.errors.BudgetExceeded` → 422) to status codes.

Metric names (catalogued in ``docs/observability.md``):
``resilience.service.requests``.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Any

from repro.errors import QueryTimeout
from repro.obs import metrics as _metrics
from repro.resilience.admission import AdmissionController, CircuitBreaker
from repro.resilience.deadline import Deadline, Guard

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.executor import QueryEngine

__all__ = ["QueryService"]

_REQUESTS = _metrics.counter("resilience.service.requests")

#: Server-side caps a request cannot exceed, whatever it asks for.
MAX_TIMEOUT_S = 60.0
MAX_ROWS_CAP = 1_000_000


class QueryService:
    """Admission-gated, deadline-bounded query execution over one engine.

    Parameters
    ----------
    engine:
        The query engine requests run against.
    admission:
        The gate; defaults to an 8-slot/16-deep controller wired to a
        fresh :class:`CircuitBreaker`.
    default_timeout_s / default_max_rows / default_max_bytes:
        Budgets applied when a request does not name its own.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        *,
        admission: AdmissionController | None = None,
        default_timeout_s: float = 5.0,
        default_max_rows: int | None = 100_000,
        default_max_bytes: int | None = 8_000_000,
    ):
        if admission is None:
            admission = AdmissionController(breaker=CircuitBreaker())
        if admission.breaker is None:
            admission.breaker = CircuitBreaker()
        self.engine = engine
        self.admission = admission
        self.default_timeout_s = default_timeout_s
        self.default_max_rows = default_max_rows
        self.default_max_bytes = default_max_bytes

    @property
    def breaker(self) -> CircuitBreaker:
        assert self.admission.breaker is not None
        return self.admission.breaker

    def execute_request(
        self,
        query: str,
        *,
        timeout_ms: float | None = None,
        max_rows: int | None = None,
        profile: bool = False,
        partial: bool = False,
    ) -> dict[str, Any]:
        """Run one request end to end; returns the JSON-ready response body.

        Raises the typed resilience errors for the transport layer to
        map: :class:`~repro.errors.AdmissionRejected`,
        :class:`~repro.errors.QueryTimeout`,
        :class:`~repro.errors.QueryCancelled`,
        :class:`~repro.errors.BudgetExceeded` — plus the usual
        :class:`~repro.errors.QueryError` family for bad queries.

        ``partial=True`` (honored only when the engine supports
        partial-result scatter-gather, i.e. a
        :class:`~repro.query.executor.ShardedQueryEngine`) tolerates
        failing or quarantined shards; a degraded response carries
        ``partial: true`` and the ``shards_failed`` list.
        """
        _REQUESTS.inc()
        timeout_s = (
            min(timeout_ms / 1000.0, MAX_TIMEOUT_S)
            if timeout_ms is not None
            else self.default_timeout_s
        )
        rows_budget = (
            min(max_rows, MAX_ROWS_CAP) if max_rows is not None else self.default_max_rows
        )
        # The deadline covers the queue wait too: time spent waiting for
        # a slot is time the client is already burning.
        deadline = Deadline.after(timeout_s) if timeout_s else None
        start = time.perf_counter()
        with self.admission.slot():
            guard = Guard(
                deadline=deadline, max_rows=rows_budget, max_bytes=self.default_max_bytes
            )
            try:
                if deadline is not None and deadline.expired():
                    # Spent the whole budget in the queue: timeout, not work.
                    guard.check()
                    raise QueryTimeout(  # pragma: no cover - check() raises first
                        "deadline exhausted in admission queue", timeout_s=timeout_s
                    )
                if partial and hasattr(self.engine, "execute_partial"):
                    result = self.engine.execute(
                        query, profile=profile, guard=guard, partial=True
                    )
                else:
                    result = self.engine.execute(query, profile=profile, guard=guard)
            except QueryTimeout:
                self.breaker.record("timeout")
                raise
            except Exception:
                # Sheds are recorded by the gate itself; other failures
                # (syntax errors, budget) don't signal overload.
                raise
            rows = result.rows if profile else result
            body: dict[str, Any] = {
                "rows": rows,
                "row_count": len(rows),
                "seconds": round(time.perf_counter() - start, 6),
                "rows_examined": guard.rows_examined,
            }
            if profile:
                body["profile"] = result.to_dict()
            # PartialResult (rows) and QueryProfile both carry the
            # degradation marker when a shard was skipped.
            if getattr(result, "partial", False):
                body["partial"] = True
                body["shards_failed"] = sorted(
                    getattr(result, "shards_failed", ())
                )
            # Enforce the response-byte budget on the serialized payload
            # the transport is about to write.
            guard.add_bytes(len(json.dumps(body, default=str)))
            self.breaker.record("ok")
            return body

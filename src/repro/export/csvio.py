"""CSV interchange for publication records.

Column layout (header row required)::

    id,title,authors,volume,page,year,student

``authors`` holds the inverted names joined by ``; `` — the same spelling
the author index prints — and ``student`` is ``true``/``false``.  Lossless
round-trip with :func:`write_csv` → :func:`read_csv` is covered by tests.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, TextIO

from repro.citation.model import Citation
from repro.core.entry import PublicationRecord
from repro.errors import ParseError
from repro.names.parser import parse_name

FIELDNAMES = ("id", "title", "authors", "volume", "page", "year", "student")

_AUTHOR_SEPARATOR = "; "


def write_csv(records: Iterable[PublicationRecord], target: TextIO | str | Path) -> int:
    """Write ``records`` to ``target`` (path or open text file).

    Returns the number of rows written.
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8", newline="") as fh:
            return write_csv(records, fh)
    writer = csv.DictWriter(target, fieldnames=FIELDNAMES)
    writer.writeheader()
    count = 0
    for record in records:
        writer.writerow(
            {
                "id": record.record_id,
                "title": record.title,
                "authors": _AUTHOR_SEPARATOR.join(
                    a.inverted() for a in record.authors
                ),
                "volume": record.citation.volume,
                "page": record.citation.page,
                "year": record.citation.year,
                "student": "true" if record.is_student_work else "false",
            }
        )
        count += 1
    return count


def dumps_csv(records: Iterable[PublicationRecord]) -> str:
    """The CSV document as a string."""
    buffer = io.StringIO()
    write_csv(records, buffer)
    return buffer.getvalue()


def read_csv(source: TextIO | str | Path) -> list[PublicationRecord]:
    """Read records from ``source`` (path or open text file).

    Raises :class:`~repro.errors.ParseError` on missing columns or
    malformed rows, naming the offending row number.
    """
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8", newline="") as fh:
            return read_csv(fh)
    reader = csv.DictReader(source)
    missing = set(FIELDNAMES) - set(reader.fieldnames or ())
    if missing:
        raise ParseError(f"CSV missing columns: {sorted(missing)}")
    records: list[PublicationRecord] = []
    for row_number, row in enumerate(reader, start=2):  # 1 is the header
        try:
            authors = tuple(
                parse_name(chunk.strip())
                for chunk in row["authors"].split(_AUTHOR_SEPARATOR.strip())
                if chunk.strip()
            )
            records.append(
                PublicationRecord(
                    record_id=int(row["id"]),
                    title=row["title"],
                    authors=authors,
                    citation=Citation(
                        volume=int(row["volume"]),
                        page=int(row["page"]),
                        year=int(row["year"]),
                    ),
                    is_student_work=row["student"].strip().casefold() == "true",
                )
            )
        except (KeyError, ValueError) as exc:
            raise ParseError(f"bad CSV row {row_number}: {exc}") from exc
    return records

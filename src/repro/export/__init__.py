"""Interchange formats: BibTeX and CSV for publication records.

Downstream users adopt an index engine only if records can flow in and
out of their existing tooling; these modules give lossless round-trips
between :class:`~repro.core.entry.PublicationRecord` and the two formats
bibliographies actually live in.
"""

from repro.export.bibtex import (
    format_bibtex,
    parse_bibtex,
    record_to_bibtex,
)
from repro.export.csvio import dumps_csv, read_csv, write_csv

__all__ = [
    "format_bibtex",
    "parse_bibtex",
    "record_to_bibtex",
    "dumps_csv",
    "read_csv",
    "write_csv",
]

"""BibTeX interchange.

Writes publication records as ``@article`` entries and parses them back.
The parser is deliberately scoped to the dialect this module emits plus
common hand-written variants: ``@article{key, field = {value}, ...}`` with
brace- or quote-delimited values, case-insensitive field names, and
``and``-separated author lists in either name order.

It is not a general TeX parser — nested braces are handled, TeX macros in
values are passed through verbatim.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.citation.model import Citation
from repro.core.entry import PublicationRecord
from repro.errors import ParseError
from repro.names.model import NameForm
from repro.names.parser import parse_name


def _cite_key(record: PublicationRecord) -> str:
    surname = re.sub(r"[^a-z]", "", record.authors[0].surname.casefold())
    return f"{surname or 'anon'}{record.citation.year}v{record.citation.volume}p{record.citation.page}"


def record_to_bibtex(record: PublicationRecord, *, journal: str = "") -> str:
    """One record as an ``@article`` entry.

    >>> rec = PublicationRecord.create(
    ...     1, "Thin Copyrights", ["Olson, Dale P."], "95:147 (1992)")
    >>> print(record_to_bibtex(rec, journal="W. Va. L. Rev."))
    @article{olson1992v95p147,
      author  = {Olson, Dale P.},
      title   = {Thin Copyrights},
      journal = {W. Va. L. Rev.},
      volume  = {95},
      pages   = {147},
      year    = {1992},
      note    = {}
    }
    """
    authors = " and ".join(a.inverted() for a in record.authors)
    note = "student work" if record.is_student_work else ""
    lines = [
        f"@article{{{_cite_key(record)},",
        f"  author  = {{{authors}}},",
        f"  title   = {{{record.title}}},",
        f"  journal = {{{journal}}},",
        f"  volume  = {{{record.citation.volume}}},",
        f"  pages   = {{{record.citation.page}}},",
        f"  year    = {{{record.citation.year}}},",
        f"  note    = {{{note}}}",
        "}",
    ]
    return "\n".join(lines)


def format_bibtex(
    records: Iterable[PublicationRecord], *, journal: str = ""
) -> str:
    """A whole corpus as a BibTeX file."""
    return "\n\n".join(record_to_bibtex(r, journal=journal) for r in records) + "\n"


_ENTRY_RE = re.compile(r"@(\w+)\s*\{", re.IGNORECASE)


def parse_bibtex(text: str, *, first_record_id: int = 1) -> list[PublicationRecord]:
    """Parse ``@article`` entries out of ``text``.

    Non-article entry types are skipped.  Raises
    :class:`~repro.errors.ParseError` on structurally broken entries
    (unbalanced braces, missing required fields).

    >>> recs = parse_bibtex(record_to_bibtex(PublicationRecord.create(
    ...     1, "Thin Copyrights", ["Olson, Dale P."], "95:147 (1992)")))
    >>> recs[0].title
    'Thin Copyrights'
    >>> recs[0].authors[0].surname
    'Olson'
    """
    records: list[PublicationRecord] = []
    next_id = first_record_id
    for match in _ENTRY_RE.finditer(text):
        entry_type = match.group(1).casefold()
        body, _end = _read_braced(text, match.end() - 1)
        if entry_type != "article":
            continue
        fields = _parse_fields(body)
        records.append(_record_from_fields(fields, next_id, body))
        next_id += 1
    return records


def _read_braced(text: str, open_at: int) -> tuple[str, int]:
    """Content of the brace group opening at ``open_at``; returns (body, end)."""
    assert text[open_at] == "{"
    depth = 0
    for i in range(open_at, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_at + 1 : i], i
    raise ParseError("unbalanced braces in BibTeX entry", text=text[open_at : open_at + 40])


_FIELD_RE = re.compile(r"(\w+)\s*=\s*", re.IGNORECASE)


def _parse_fields(body: str) -> dict[str, str]:
    # drop the cite key (up to the first comma at depth 0)
    depth = 0
    start = 0
    for i, ch in enumerate(body):
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif ch == "," and depth == 0:
            start = i + 1
            break
    fields: dict[str, str] = {}
    i = start
    while True:
        match = _FIELD_RE.search(body, i)
        if match is None:
            break
        name = match.group(1).casefold()
        at = match.end()
        if at >= len(body):
            break
        if body[at] == "{":
            value, end = _read_braced(body, at)
            i = end + 1
        elif body[at] == '"':
            closing = body.find('"', at + 1)
            if closing == -1:
                raise ParseError("unterminated quoted value", text=body[at : at + 40])
            value = body[at + 1 : closing]
            i = closing + 1
        else:
            # bare value (numbers): up to comma or end
            comma = body.find(",", at)
            value = body[at:comma] if comma != -1 else body[at:]
            i = (comma + 1) if comma != -1 else len(body)
        fields[name] = value.strip()
    return fields


def _record_from_fields(
    fields: dict[str, str], record_id: int, context: str
) -> PublicationRecord:
    for required in ("author", "title", "volume", "pages", "year"):
        if required not in fields or not fields[required]:
            raise ParseError(f"BibTeX entry missing {required!r}", text=context[:60])
    authors = []
    for chunk in re.split(r"\s+and\s+", fields["author"]):
        chunk = chunk.strip()
        if not chunk:
            continue
        form = NameForm.INVERTED if "," in chunk else NameForm.DIRECT
        authors.append(parse_name(chunk, form=form))
    try:
        page = int(re.split(r"[-–]", fields["pages"])[0])
        citation = Citation(
            volume=int(fields["volume"]), page=page, year=int(fields["year"])
        )
    except ValueError as exc:
        raise ParseError(f"non-numeric citation field: {exc}", text=context[:60]) from exc
    return PublicationRecord(
        record_id=record_id,
        title=fields["title"],
        authors=tuple(authors),
        citation=citation,
        is_student_work="student" in fields.get("note", "").casefold(),
    )

"""Hash secondary index: point lookups only, O(1) expected.

A thin, explicit wrapper over ``dict[key, list[value]]`` sharing the
multimap interface of :class:`~repro.storage.btree.BTree` so the store and
the query planner can treat both uniformly.  Range scans are intentionally
unsupported — the planner must fall back to a B-tree index or a full scan,
which is exactly the E4 crossover experiment.

Observability: probes bump ``storage.hash.probes``; writes bump
``storage.hash.insert.count`` (entries inserted, bulk paths included) and
``storage.hash.remove.count`` (entries actually removed); bulk builds bump
``storage.hash.bulk_loads``.  Catalogue in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.obs import metrics as _metrics

_PROBES = _metrics.counter("storage.hash.probes")
_INSERTS = _metrics.counter("storage.hash.insert.count")
_REMOVES = _metrics.counter("storage.hash.remove.count")
_BULK_LOADS = _metrics.counter("storage.hash.bulk_loads")


class HashIndex:
    """Unordered multimap with the secondary-index interface.

    >>> idx = HashIndex()
    >>> idx.insert("smith", 1)
    >>> idx.insert("smith", 2)
    >>> sorted(idx.search("smith"))
    [1, 2]
    >>> idx.remove("smith", 1)
    True
    >>> idx.search("smith")
    [2]
    """

    supports_range = False

    def __init__(self) -> None:
        self._buckets: dict[Any, list[Any]] = {}
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def distinct_keys(self) -> int:
        return len(self._buckets)

    @classmethod
    def bulk_load(cls, pairs: Iterable[tuple[Any, Any]]) -> "HashIndex":
        """Build an index from ``(key, value)`` pairs in one pass.

        Pairs may arrive in any order; values keep their arrival order
        within a key.  One metrics update covers the whole build.

        >>> idx = HashIndex.bulk_load([("a", 1), ("b", 2), ("a", 3)])
        >>> idx.search("a")
        [1, 3]
        """
        index = cls()
        index.insert_many(pairs)
        _BULK_LOADS.inc()
        return index

    def insert_many(self, pairs: Iterable[tuple[Any, Any]]) -> int:
        """Insert many ``(key, value)`` pairs; returns how many.

        Equivalent to repeated :meth:`insert` but with a single metrics
        update for the whole batch.
        """
        buckets = self._buckets
        inserted = 0
        for key, value in pairs:
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [value]
            else:
                bucket.append(value)
            inserted += 1
        self._len += inserted
        _INSERTS.inc(inserted)
        return inserted

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key``."""
        self._buckets.setdefault(key, []).append(value)
        self._len += 1
        _INSERTS.inc()

    def search(self, key: Any) -> list[Any]:
        """All values under ``key`` (empty list when absent)."""
        _PROBES.inc()
        return list(self._buckets.get(key, ()))

    def __contains__(self, key: Any) -> bool:
        return key in self._buckets

    def remove(self, key: Any, value: Any | None = None) -> bool:
        """Remove one ``value`` (or the whole key); True if removed."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return False
        if value is None:
            self._len -= len(bucket)
            _REMOVES.inc(len(bucket))
            del self._buckets[key]
            return True
        try:
            bucket.remove(value)
        except ValueError:
            return False
        self._len -= 1
        _REMOVES.inc()
        if not bucket:
            del self._buckets[key]
        return True

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in arbitrary key order."""
        for key, bucket in self._buckets.items():
            for value in bucket:
                yield (key, value)

    def keys(self) -> Iterator[Any]:
        """Distinct keys in arbitrary order."""
        return iter(self._buckets)

"""Fault-injecting filesystem shim for crash-safety testing.

The storage layer never calls :func:`open`, :func:`os.fsync`, or
:func:`os.replace` directly; it routes every durability-relevant file
operation through a tiny filesystem facade (:class:`FileSystem`).  The
default :data:`REAL_FS` passes straight through to the OS.  Tests swap in
a :class:`FaultFS`, arm one of seven **named failpoints**, and drive the
store into precisely-placed crashes:

``fail_before_fsync``
    The next matching fsync discards everything written since the last
    successful fsync (the file is truncated back to its synced size) and
    raises :class:`InjectedFault`.  Models the worst-case page-cache loss
    of a power failure before the commit point.
``partial_write``
    The next matching write persists only its first ``keep_bytes`` bytes,
    then raises.  Models a torn write cut short at the head.
``torn_tail``
    The next matching write persists everything but its last
    ``drop_bytes`` bytes, then raises.  Models a torn write cut short at
    the tail.
``fail_after_rename``
    The next matching :meth:`FileSystem.replace` performs the rename and
    *then* raises.  Models a crash between an atomic publish and its
    follow-up cleanup (e.g. after a snapshot rename, before sealed WAL
    segments are deleted).
``bit_flip``
    The next matching write silently flips one bit of its payload and
    succeeds.  Models silent media corruption — nothing fails until a
    CRC check (recovery or ``repro fsck``) catches it.
``torn_page_write``
    The next matching write persists only its first ``keep_bytes`` bytes
    (default: half), then raises.  Mechanically ``partial_write``, but a
    separate name so the paged-storage crash matrix can tear a 4 KiB
    page write without also arming faults on WAL/snapshot paths — the
    per-page CRC must catch the torn half on next read.
``fail_after_page_flush``
    The next matching fsync *succeeds* and then raises.  Models a crash
    after page data reached stable storage but before the step that
    makes it reachable (e.g. between flushing a new pages file and
    publishing the snapshot manifest that references it).

Failpoints are armed per :class:`FaultFS` instance (nothing global), fire
a bounded number of times (default once), optionally skip their first
``skip`` matching events, and optionally filter on a path substring so a
fault can target the WAL but not the snapshot::

    fs = FaultFS()
    fs.arm("partial_write", path=".wal", keep_bytes=10)
    store = RecordStore(schema, directory, sync=True, fs=fs)
    with pytest.raises(InjectedFault):
        store.insert(record)          # the frame is torn mid-write
    assert fs.fired("partial_write") == 1

Every failpoint also has a **transient** mode (``arm(..., transient=True)``)
for exercising the retry path rather than the crash path: instead of its
destructive behaviour, the failpoint raises a clean
:class:`TransientInjectedFault` (``errno == EAGAIN``, ``transient = True``)
*before* any side effect — no bytes reach the file, nothing is truncated,
nothing is renamed — then fires again until its ``times`` are spent, after
which the operation succeeds.  Because the failure is side-effect free,
simply re-issuing the same call is always safe, which is exactly the
contract :class:`~repro.resilience.retry.RetryPolicy` relies on.  Models
an ``EINTR``/``EAGAIN``-style hiccup (briefly unreachable NFS server,
interrupted syscall) rather than a crash.

The shim is pure overhead-free plumbing in production: ``RecordStore``
and ``WriteAheadLog`` default to :data:`REAL_FS`, whose methods are thin
wrappers over the stdlib.
"""

from __future__ import annotations

import errno as _errno
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO

from repro.obs import metrics as _metrics

#: Every failpoint name :meth:`FaultFS.arm` accepts.
FAILPOINTS = (
    "fail_before_fsync",
    "partial_write",
    "torn_tail",
    "fail_after_rename",
    "bit_flip",
    "torn_page_write",
    "fail_after_page_flush",
)

#: Failpoints that intercept :meth:`FaultFile.write`.
_WRITE_FAILPOINTS = ("partial_write", "torn_tail", "bit_flip", "torn_page_write")


class InjectedFault(OSError):
    """Raised when an armed failpoint fires.

    Subclasses :class:`OSError` so callers that survive real I/O errors
    survive injected ones the same way; carries the failpoint ``name``
    and the ``path`` it fired on for test assertions.
    """

    def __init__(self, name: str, path: Path | str):
        super().__init__(f"injected fault {name!r} at {path}")
        self.name = name
        self.path = Path(path)


class TransientInjectedFault(InjectedFault):
    """An injected fault that is safe — and expected — to retry.

    Raised by failpoints armed with ``transient=True``: the operation
    failed *before* any side effect, so re-issuing it is harmless.
    Carries ``errno == EAGAIN`` and ``transient = True`` so both halves
    of :func:`~repro.resilience.retry.is_transient` classify it as
    retryable.
    """

    transient = True

    def __init__(self, name: str, path: Path | str):
        super().__init__(name, path)
        self.errno = _errno.EAGAIN


class FileSystem:
    """Pass-through filesystem facade; the storage layer's only I/O door.

    Methods mirror the exact operations the WAL / snapshot paths need;
    anything not listed here (reads, stat, glob) is not durability
    relevant and uses the stdlib directly.
    """

    def open(self, path: Path | str, mode: str = "ab") -> BinaryIO:
        """Open ``path`` for binary writing (``"ab"`` or ``"wb"``)."""
        if "b" not in mode:
            raise ValueError(f"FileSystem.open is binary-only, got mode {mode!r}")
        return open(path, mode)

    def fsync(self, fh: Any) -> None:
        """Flush ``fh`` and fsync it to stable storage."""
        fh.flush()
        os.fsync(fh.fileno())

    def replace(self, src: Path | str, dst: Path | str) -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)

    def fsync_dir(self, path: Path | str) -> None:
        """fsync a directory so renames/unlinks in it survive a crash."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def remove(self, path: Path | str) -> None:
        """Delete a file."""
        os.remove(path)


#: Shared pass-through instance; the default ``fs`` everywhere.
REAL_FS = FileSystem()


@dataclass
class _ArmedFailpoint:
    name: str
    path_filter: str | None
    skip: int  # matching events to let pass before firing
    times: int  # remaining fires
    transient: bool = False  # clean, side-effect-free, retryable failure
    params: dict[str, Any] = field(default_factory=dict)

    def matches(self, *paths: Path | str) -> bool:
        if self.times <= 0:
            return False
        if self.path_filter is None:
            return True
        return any(self.path_filter in str(p) for p in paths)


class FaultFile:
    """A binary file handle whose writes route through the fault injector.

    Supports exactly the surface the storage layer uses: ``write``,
    ``read``, ``flush``, ``seek``, ``tell``, ``truncate``, ``close``,
    ``fileno``.  Reads pass straight through — they are not durability
    relevant, but the pager needs them on the same handle it writes.
    Tracks ``synced_size`` — the file size at the last successful fsync —
    so ``fail_before_fsync`` can roll the file back to it.
    """

    def __init__(self, fs: "FaultFS", path: Path, real: BinaryIO):
        self._fs = fs
        self.path = path
        self._real = real
        self.synced_size = os.fstat(real.fileno()).st_size

    def write(self, data: bytes) -> int:
        return self._fs._write(self, data)

    def read(self, size: int = -1) -> bytes:
        return self._real.read(size)

    def flush(self) -> None:
        self._real.flush()

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._real.seek(offset, whence)

    def tell(self) -> int:
        return self._real.tell()

    def truncate(self, size: int | None = None) -> int:
        return self._real.truncate(size)

    def close(self) -> None:
        self._real.close()

    def fileno(self) -> int:
        return self._real.fileno()

    @property
    def closed(self) -> bool:
        return self._real.closed

    # Raw-handle escape hatch used by the injector itself.
    @property
    def real(self) -> BinaryIO:
        return self._real


def flip_bit(data: bytes, byte_index: int, bit: int = 0) -> bytes:
    """``data`` with one bit flipped at ``byte_index`` (clamped in range)."""
    if not data:
        return data
    i = max(0, min(byte_index, len(data) - 1))
    mutated = bytearray(data)
    mutated[i] ^= 1 << (bit & 7)
    return bytes(mutated)


def flip_bit_on_disk(path: Path | str, byte_index: int, bit: int = 0) -> None:
    """Flip one bit of the file at ``path`` in place (fsck test helper)."""
    path = Path(path)
    raw = path.read_bytes()
    path.write_bytes(flip_bit(raw, byte_index, bit))


class FaultFS(FileSystem):
    """A :class:`FileSystem` with armable, single-shot named failpoints.

    With nothing armed it behaves byte-for-byte like :data:`REAL_FS`
    (writes take one extra Python call).  Arm failpoints with
    :meth:`arm`; each fires ``times`` times (default once) after letting
    ``skip`` matching events pass, then disarms itself.  :meth:`fired`
    reports how often a failpoint has fired since construction or the
    last :meth:`reset`.
    """

    def __init__(self) -> None:
        self._armed: list[_ArmedFailpoint] = []
        self._fired: dict[str, int] = {}

    # -- arming -----------------------------------------------------------

    def arm(
        self,
        name: str,
        *,
        path: str | None = None,
        skip: int = 0,
        times: int = 1,
        transient: bool = False,
        **params: Any,
    ) -> None:
        """Arm failpoint ``name``.

        ``path`` filters by substring of the affected path(s); ``skip``
        lets that many matching events through unharmed first (e.g. to
        hit the third frame of a batch); ``times`` bounds how often it
        fires.  With ``transient=True`` the failpoint degenerates to a
        clean :class:`TransientInjectedFault` raised *before* any side
        effect — retry-safe, healed once ``times`` fires are spent.
        Extra keyword parameters configure the specific fault:
        ``keep_bytes`` (partial_write, torn_page_write), ``drop_bytes``
        (torn_tail), ``byte`` / ``bit`` (bit_flip).
        """
        if name not in FAILPOINTS:
            raise ValueError(
                f"unknown failpoint {name!r}; expected one of {FAILPOINTS}"
            )
        if skip < 0 or times < 1:
            raise ValueError("skip must be >= 0 and times >= 1")
        self._armed.append(
            _ArmedFailpoint(
                name=name,
                path_filter=path,
                skip=skip,
                times=times,
                transient=transient,
                params=params,
            )
        )

    def disarm(self, name: str) -> None:
        """Remove every armed instance of ``name`` (missing is a no-op)."""
        self._armed = [a for a in self._armed if a.name != name]

    def disarm_all(self) -> None:
        self._armed.clear()

    def fired(self, name: str) -> int:
        """How many times ``name`` has fired."""
        return self._fired.get(name, 0)

    def armed(self, name: str) -> bool:
        """Whether ``name`` still has fires remaining."""
        return any(a.name == name and a.times > 0 for a in self._armed)

    def reset(self) -> None:
        """Disarm everything and zero the fired counters."""
        self._armed.clear()
        self._fired.clear()

    def _take(self, names: tuple[str, ...] | str, *paths: Path | str):
        """First armed failpoint among ``names`` matching ``paths``, consuming
        one skip or one fire; returns the failpoint when it fires."""
        if isinstance(names, str):
            names = (names,)
        for armed in self._armed:
            if armed.name in names and armed.matches(*paths):
                if armed.skip > 0:
                    armed.skip -= 1
                    return None
                armed.times -= 1
                self._fired[armed.name] = self._fired.get(armed.name, 0) + 1
                _metrics.counter(
                    "storage.faultfs.failpoint.fired", failpoint=armed.name
                ).inc()
                return armed
        return None

    # -- faulted operations ------------------------------------------------

    def open(self, path: Path | str, mode: str = "ab") -> FaultFile:  # type: ignore[override]
        return FaultFile(self, Path(path), super().open(path, mode))

    def _write(self, fh: FaultFile, data: bytes) -> int:
        armed = self._take(_WRITE_FAILPOINTS, fh.path)
        if armed is None:
            return fh.real.write(data)
        if armed.transient:
            # Clean transient failure: no byte reached the file, so the
            # retry path can simply re-issue the identical write.
            raise TransientInjectedFault(armed.name, fh.path)
        if armed.name == "bit_flip":
            # Silent corruption: the write "succeeds", CRCs catch it later.
            mutated = flip_bit(
                data, armed.params.get("byte", len(data) // 2), armed.params.get("bit", 0)
            )
            fh.real.write(mutated)
            return len(data)
        if armed.name in ("partial_write", "torn_page_write"):
            keep = armed.params.get("keep_bytes", len(data) // 2)
            kept = data[: max(0, keep)]
        else:  # torn_tail
            drop = armed.params.get("drop_bytes", 1)
            kept = data[: max(0, len(data) - drop)]
        fh.real.write(kept)
        # Flush so the torn bytes are really on disk when the "crash"
        # (the exception below) abandons the handle.
        fh.real.flush()
        raise InjectedFault(armed.name, fh.path)

    def fsync(self, fh: Any) -> None:
        path = getattr(fh, "path", "<unknown>")
        armed = self._take("fail_before_fsync", path)
        if armed is not None:
            if armed.transient:
                # The data stays in the page cache untouched; a retried
                # fsync pushes it out as if the hiccup never happened.
                raise TransientInjectedFault("fail_before_fsync", path)
            # Worst-case crash-before-commit: everything since the last
            # successful fsync is lost from the page cache.
            fh.flush()
            synced = getattr(fh, "synced_size", None)
            if synced is not None:
                os.ftruncate(fh.fileno(), synced)
                fh.seek(synced)
            raise InjectedFault("fail_before_fsync", path)
        after = self._take("fail_after_page_flush", path)
        if after is not None and after.transient:
            # Side-effect free: fail before the fsync so a retry is safe.
            raise TransientInjectedFault("fail_after_page_flush", path)
        super().fsync(fh)
        if isinstance(fh, FaultFile):
            fh.synced_size = os.fstat(fh.fileno()).st_size
        if after is not None:
            # The data is durable; the "crash" lands after the flush.
            raise InjectedFault("fail_after_page_flush", path)

    def replace(self, src: Path | str, dst: Path | str) -> None:
        armed = self._take("fail_after_rename", src, dst)
        if armed is not None and armed.transient:
            # Transient mode fails *before* the rename (side-effect free);
            # the non-transient mode keeps its after-the-rename semantics.
            raise TransientInjectedFault("fail_after_rename", dst)
        super().replace(src, dst)
        if armed is not None:
            raise InjectedFault("fail_after_rename", dst)

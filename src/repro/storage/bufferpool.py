"""LRU buffer pool over a :class:`~repro.storage.pages.PageFile`.

The pool is what makes the paged B+ tree *working-set* bound instead of
*dataset* bound: at most ``capacity`` pages are resident at once, so a
million-record page file can be served with a few hundred KiB of RAM as
long as the hot keys fit.  Frames are evicted least-recently-used; a
frame with a non-zero **pin count** is never evicted (a reader is
holding a reference into it), and a **dirty** frame is written back to
the page file before its slot is reused.

Usage is a pin/unpin protocol — hold the pin only while decoding::

    pool = BufferPool(pager, capacity=256)
    with pool.pin(page_id) as raw:
        node = LeafNode.unpack(raw)

Thread safety: all frame bookkeeping runs under one lock, so concurrent
readers may pin freely.  Writers (``put_page`` / ``new_page`` /
``free_page``) assume the single-writer discipline the store layer
already enforces — the pool serializes its own metadata, not tree
mutations.

Every pool publishes its behaviour through ``storage.bufferpool.*``
metrics: ``hits`` / ``misses`` (counter pair — the hit rate), ``evictions``,
``dirty_flushes`` (evictions that had to write back first), and the
``pinned`` gauge (currently pinned frames across the process).  A pool
opened under a :class:`~repro.storage.sharded.ShardedStore` carries a
``shard`` label on its counters, so per-shard hit rates are separable.

Per-query attribution: :func:`page_stats_scope` binds a
:class:`PageStats` accumulator to the current thread; every pool
hit/miss on that thread while the scope is open is also added to the
accumulator.  The profiled query path (EXPLAIN ANALYZE) binds one per
operator/shard worker, turning process-global pool counters into
per-query page-touch counts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.errors import StorageError
from repro.obs import metrics as _metrics
from repro.storage.pages import PageFile

_HITS = _metrics.counter("storage.bufferpool.hits")
_MISSES = _metrics.counter("storage.bufferpool.misses")
_EVICTIONS = _metrics.counter("storage.bufferpool.evictions")
_DIRTY_FLUSHES = _metrics.counter("storage.bufferpool.dirty_flushes")
_PINNED = _metrics.gauge("storage.bufferpool.pinned")

#: Default pool capacity in pages (256 × 4 KiB = 1 MiB resident).
DEFAULT_POOL_PAGES = 256


class PageStats:
    """Per-scope page-touch accumulator (see :func:`page_stats_scope`).

    One scope is bound per thread, so plain integer adds suffice — two
    threads never share one instance concurrently; a fan-out query sums
    its workers' instances after they join.
    """

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def add(self, other: "PageStats") -> None:
        self.hits += other.hits
        self.misses += other.misses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PageStats(hits={self.hits}, misses={self.misses})"


_scope = threading.local()


@contextmanager
def page_stats_scope(stats: PageStats | None = None) -> Iterator[PageStats]:
    """Attribute this thread's pool hits/misses to ``stats`` while open.

    Scopes nest: the innermost wins (restored on exit).  Metrics still
    count globally — the scope is *additional* attribution, not a tap.
    """
    if stats is None:
        stats = PageStats()
    prev = getattr(_scope, "stats", None)
    _scope.stats = stats
    try:
        yield stats
    finally:
        _scope.stats = prev


def current_page_stats() -> PageStats | None:
    """The accumulator bound to this thread, or ``None``."""
    return getattr(_scope, "stats", None)


class _Frame:
    __slots__ = ("data", "pin_count", "dirty")

    def __init__(self, data: bytes):
        self.data = data
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """Bounded page cache with pin counts and dirty write-back."""

    def __init__(
        self,
        pager: PageFile,
        capacity: int = DEFAULT_POOL_PAGES,
        *,
        shard: int | None = None,
    ):
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self._pager = pager
        self.capacity = capacity
        # OrderedDict as the LRU queue: most-recently-used at the end.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._lock = threading.RLock()
        # Under a sharded store each shard's pool reports under its own
        # label so per-shard hit rates are separable; unlabeled otherwise.
        if shard is None:
            self._hits, self._misses = _HITS, _MISSES
            self._evictions, self._dirty_flushes = _EVICTIONS, _DIRTY_FLUSHES
        else:
            self._hits = _metrics.counter("storage.bufferpool.hits", shard=shard)
            self._misses = _metrics.counter("storage.bufferpool.misses", shard=shard)
            self._evictions = _metrics.counter(
                "storage.bufferpool.evictions", shard=shard
            )
            self._dirty_flushes = _metrics.counter(
                "storage.bufferpool.dirty_flushes", shard=shard
            )

    # -- introspection (tests, stats) ----------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def resident(self) -> list[int]:
        """Resident page ids, LRU first."""
        with self._lock:
            return list(self._frames)

    def pin_count(self, page_id: int) -> int:
        with self._lock:
            frame = self._frames.get(page_id)
            return frame.pin_count if frame is not None else 0

    def is_dirty(self, page_id: int) -> bool:
        with self._lock:
            frame = self._frames.get(page_id)
            return frame.dirty if frame is not None else False

    # -- the pin protocol ----------------------------------------------------

    @contextmanager
    def pin(self, page_id: int) -> Iterator[bytes]:
        """Pin ``page_id`` resident and yield its bytes.

        The frame cannot be evicted while pinned; unpinning happens on
        context exit.  A miss reads through the pager (CRC-verified) and
        may evict the LRU unpinned frame to stay within capacity.
        """
        frame = self._acquire(page_id)
        try:
            yield frame.data
        finally:
            self._release(page_id)

    def _acquire(self, page_id: int) -> _Frame:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._hits.inc()
                stats = getattr(_scope, "stats", None)
                if stats is not None:
                    stats.hits += 1
                self._frames.move_to_end(page_id)
                frame.pin_count += 1
            else:
                self._misses.inc()
                stats = getattr(_scope, "stats", None)
                if stats is not None:
                    stats.misses += 1
                frame = _Frame(self._pager.read_page(page_id))
                # Pin before shrinking: when every other frame is pinned,
                # eviction must not pick the frame this call hands out.
                frame.pin_count = 1
                self._frames[page_id] = frame
                self._shrink_locked()
            _PINNED.inc()
            return frame

    def _release(self, page_id: int) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise StorageError(f"unbalanced unpin of page {page_id}")
            frame.pin_count -= 1
            _PINNED.dec()

    # -- writes --------------------------------------------------------------

    def put_page(self, page_id: int, data: bytes) -> None:
        """Install new (finalized) bytes for ``page_id`` and mark it dirty.

        The write-back to disk happens on eviction or :meth:`flush`, so
        repeated updates to a hot page cost one disk write, not many.
        """
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                frame.data = data
                self._frames.move_to_end(page_id)
            else:
                frame = _Frame(data)
                self._frames[page_id] = frame
                self._shrink_locked()
            frame.dirty = True

    def new_page(self) -> int:
        """Allocate a page id from the pager (free list first)."""
        with self._lock:
            return self._pager.allocate()

    def free_page(self, page_id: int) -> None:
        """Drop ``page_id`` from the pool and return it to the free list."""
        with self._lock:
            frame = self._frames.pop(page_id, None)
            if frame is not None and frame.pin_count > 0:
                self._frames[page_id] = frame
                raise StorageError(f"cannot free pinned page {page_id}")
            self._pager.free(page_id)

    # -- eviction and write-back ---------------------------------------------

    def _shrink_locked(self) -> None:
        """Evict LRU unpinned frames until within capacity."""
        while len(self._frames) > self.capacity:
            victim_id = None
            for candidate_id, candidate in self._frames.items():
                if candidate.pin_count == 0:
                    victim_id = candidate_id
                    break
            if victim_id is None:
                # Every frame is pinned; over-capacity is the lesser evil —
                # evicting a pinned frame would invalidate a live reader.
                return
            victim = self._frames.pop(victim_id)
            if victim.dirty:
                self._pager.write_page(victim_id, victim.data)
                self._dirty_flushes.inc()
            self._evictions.inc()

    def flush(self) -> None:
        """Write back every dirty frame (frames stay resident and clean)."""
        with self._lock:
            for page_id, frame in self._frames.items():
                if frame.dirty:
                    self._pager.write_page(page_id, frame.data)
                    frame.dirty = False
                    self._dirty_flushes.inc()

    def clear(self) -> None:
        """Flush then drop every frame (e.g. before closing the pager)."""
        with self._lock:
            self.flush()
            for frame in self._frames.values():
                if frame.pin_count > 0:
                    raise StorageError("cannot clear pool with pinned frames")
            self._frames.clear()


__all__ = [
    "BufferPool",
    "DEFAULT_POOL_PAGES",
    "PageStats",
    "page_stats_scope",
    "current_page_stats",
]

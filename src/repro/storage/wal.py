"""Append-only, CRC-framed write-ahead log.

On-disk format (version 1), one entry per line::

    W1 <crc32-hex-8> <length> <payload-json>\\n

``crc32`` covers the UTF-8 payload bytes; ``length`` is the payload byte
count.  Both are checked on replay.  A damaged or truncated *final* entry is
treated as a torn write and dropped (normal crash behaviour); damage before
the final entry raises :class:`~repro.errors.CorruptLogError` because it
means silent data loss.

The log stores opaque JSON payloads — the store layer defines the operation
vocabulary (``put``/``delete``/``batch``).  ``fsync`` policy is the caller's
choice per append; benchmarks (E7) measure the difference.

Observability: appends report ``storage.wal.append.count`` /
``storage.wal.append.bytes`` (batched locally and flushed to the registry
every ``_METRIC_BATCH`` appends and on sync/truncate/close, so a live log
lags by at most that many buffered appends); synced appends additionally bump
``storage.wal.fsync.count`` and land their flush+fsync latency in the
``storage.wal.flush.seconds`` histogram (buffered flushes are not timed —
they cost nanoseconds and timing them would dominate the hot path);
group commits via :meth:`WriteAheadLog.append_many` additionally report
``storage.wal.batch.count`` / ``storage.wal.batch.entries``; replay reports
``storage.wal.replay.entries``.  Full catalogue in ``docs/observability.md``.
"""

from __future__ import annotations

import io
import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import CorruptLogError
from repro.obs import metrics as _metrics

_MAGIC = "W1"

_APPEND_COUNT = _metrics.counter("storage.wal.append.count")
_APPEND_BYTES = _metrics.counter("storage.wal.append.bytes")
_FLUSH_SECONDS = _metrics.histogram("storage.wal.flush.seconds")
_FSYNC_COUNT = _metrics.counter("storage.wal.fsync.count")
_BATCH_COUNT = _metrics.counter("storage.wal.batch.count")
_BATCH_ENTRIES = _metrics.counter("storage.wal.batch.entries")
_REPLAY_ENTRIES = _metrics.counter("storage.wal.replay.entries")


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One replayed log entry with its byte offset (for diagnostics)."""

    offset: int
    payload: dict[str, Any]


def _frame(payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    header = f"{_MAGIC} {crc:08x} {len(body)} ".encode("ascii")
    return header + body + b"\n"


class WriteAheadLog:
    """Append-only log at ``path``.

    The file handle stays open for the life of the object; call
    :meth:`close` (or use as a context manager) to release it.

    >>> import tempfile, pathlib
    >>> with tempfile.TemporaryDirectory() as d:
    ...     wal = WriteAheadLog(pathlib.Path(d) / "t.wal")
    ...     _ = wal.append({"op": "put", "key": 1})
    ...     _ = wal.append({"op": "del", "key": 1})
    ...     wal.close()
    ...     [e.payload["op"] for e in WriteAheadLog.replay_path(pathlib.Path(d) / "t.wal")]
    ['put', 'del']
    """

    #: Flush locally-batched append count/bytes to the registry at this
    #: many appends; also flushed on sync, truncate, and close, so the
    #: registry lags a live log by at most this many buffered appends.
    _METRIC_BATCH = 64

    def __init__(self, path: Path | str, *, sync: bool = False):
        self.path = Path(path)
        self.sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: io.BufferedWriter | None = open(self.path, "ab")
        self.entries_written = 0
        self._unreported_count = 0
        self._unreported_bytes = 0

    # -- writing ----------------------------------------------------------

    def append(self, payload: dict[str, Any], *, sync: bool | None = None) -> int:
        """Append one entry; returns the byte offset it was written at.

        ``sync`` overrides the instance-wide fsync policy for this append.
        """
        fh = self._require_open()
        offset = fh.tell()
        frame = _frame(payload)
        fh.write(frame)
        self.entries_written += 1
        self._unreported_count += 1
        self._unreported_bytes += len(frame)
        if self.sync if sync is None else sync:
            start = time.perf_counter()
            fh.flush()
            os.fsync(fh.fileno())
            _FLUSH_SECONDS.observe(time.perf_counter() - start)
            _FSYNC_COUNT.inc()
            self._report_appends()
        else:
            fh.flush()
            if self._unreported_count >= self._METRIC_BATCH:
                self._report_appends()
        return offset

    def append_many(
        self,
        payloads: Iterable[dict[str, Any]],
        *,
        sync: bool | None = None,
        sync_every: int | None = None,
    ) -> int:
        """Group-commit several entries; returns how many were written.

        All frames share one buffered write path and — when syncing — one
        fsync for the whole batch, instead of one flush(+fsync) per entry.
        ``sync_every`` bounds the commit interval for very large batches:
        a syncing ``append_many`` then fsyncs after every ``sync_every``
        entries (plus once for the tail), trading a little throughput for
        a bounded window of buffered-but-unsynced data.
        """
        if sync_every is not None and sync_every < 1:
            raise ValueError(f"sync_every must be positive, got {sync_every}")
        fh = self._require_open()
        do_sync = self.sync if sync is None else sync
        start = time.perf_counter() if do_sync else 0.0
        total_bytes = 0
        written = 0
        fsyncs = 0
        for payload in payloads:
            frame = _frame(payload)
            total_bytes += len(frame)
            fh.write(frame)
            written += 1
            if do_sync and sync_every is not None and written % sync_every == 0:
                fh.flush()
                os.fsync(fh.fileno())
                fsyncs += 1
        if written == 0:
            return 0
        if do_sync:
            if sync_every is None or written % sync_every:
                fh.flush()
                os.fsync(fh.fileno())
                fsyncs += 1
            _FLUSH_SECONDS.observe(time.perf_counter() - start)
            _FSYNC_COUNT.inc(fsyncs)
        else:
            fh.flush()
        _BATCH_COUNT.inc()
        _BATCH_ENTRIES.inc(written)
        self.entries_written += written
        self._unreported_count += written
        self._unreported_bytes += total_bytes
        self._report_appends()
        return written

    def _report_appends(self) -> None:
        if self._unreported_count:
            _APPEND_COUNT.inc(self._unreported_count)
            _APPEND_BYTES.inc(self._unreported_bytes)
            self._unreported_count = 0
            self._unreported_bytes = 0

    def truncate(self) -> None:
        """Erase the log (used after a snapshot makes it redundant)."""
        fh = self._require_open()
        fh.seek(0)
        fh.truncate()
        fh.flush()
        os.fsync(fh.fileno())
        self._report_appends()

    def close(self) -> None:
        if self._fh is not None:
            self._report_appends()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> io.BufferedWriter:
        if self._fh is None:
            raise CorruptLogError("log is closed")
        return self._fh

    @property
    def size_bytes(self) -> int:
        """Current size of the log file in bytes."""
        return self.path.stat().st_size if self.path.exists() else 0

    # -- replay -----------------------------------------------------------

    @classmethod
    def replay_path(cls, path: Path | str) -> list[LogEntry]:
        """Replay the log at ``path`` into a list of entries.

        A torn final entry is dropped silently; earlier damage raises
        :class:`CorruptLogError` with the offending byte offset.
        """
        path = Path(path)
        if not path.exists():
            return []
        with open(path, "rb") as fh:
            raw = fh.read()
        entries: list[LogEntry] = []
        for offset, line, is_torn_candidate in _lines_with_offsets(raw):
            try:
                entries.append(LogEntry(offset=offset, payload=_parse_line(line, offset)))
            except CorruptLogError:
                if is_torn_candidate:
                    break  # torn tail: drop and stop
                raise
        _REPLAY_ENTRIES.inc(len(entries))
        return entries

    def replay(self) -> list[LogEntry]:
        """Replay this log's file (flushing buffered writes first)."""
        if self._fh is not None:
            self._fh.flush()
        return self.replay_path(self.path)


def _lines_with_offsets(raw: bytes) -> Iterator[tuple[int, bytes, bool]]:
    """Yield ``(offset, line, is_torn_candidate)`` for each log line.

    Only a final line with no trailing newline can be a torn write; every
    newline-terminated line was fully written and must validate.
    """
    offset = 0
    chunks = raw.split(b"\n")
    ends_with_newline = raw.endswith(b"\n")
    for i, chunk in enumerate(chunks):
        if chunk:
            is_torn_candidate = (i == len(chunks) - 1) and not ends_with_newline
            yield offset, chunk, is_torn_candidate
        offset += len(chunk) + 1


def _parse_line(line: bytes, offset: int) -> dict[str, Any]:
    parts = line.split(b" ", 3)
    if len(parts) != 4 or parts[0] != _MAGIC.encode("ascii"):
        raise CorruptLogError("bad frame header", offset=offset)
    crc_hex, length_txt, body = parts[1], parts[2], parts[3]
    try:
        expected_crc = int(crc_hex, 16)
        expected_len = int(length_txt)
    except ValueError:
        raise CorruptLogError("unparseable frame header", offset=offset) from None
    if len(body) != expected_len:
        raise CorruptLogError(
            f"length mismatch: header says {expected_len}, body is {len(body)}",
            offset=offset,
        )
    if zlib.crc32(body) & 0xFFFFFFFF != expected_crc:
        raise CorruptLogError("CRC mismatch", offset=offset)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptLogError(f"bad JSON payload: {exc}", offset=offset) from exc
    if not isinstance(payload, dict):
        raise CorruptLogError("payload is not an object", offset=offset)
    return payload

"""Append-only, CRC-framed, segmented write-ahead log.

On-disk format (version 1), one entry per line::

    W1 <crc32-hex-8> <length> <payload-json>\\n

``crc32`` covers the UTF-8 payload bytes; ``length`` is the payload byte
count.  Both are checked on replay.  A damaged or truncated *final* entry in
the *last* segment is treated as a torn write and dropped (normal crash
behaviour); damage anywhere else raises
:class:`~repro.errors.CorruptLogError` because it means silent data loss.

Segmentation: the log is a **chain** of files sharing a base path.  Writes
always go to the *active* file (the base path itself, e.g. ``store.wal``);
:meth:`WriteAheadLog.rotate` seals the active file under the next segment
number (``store.wal.000001``, ``store.wal.000002``, …) and starts a fresh
active file.  Sealed segments are immutable and fully fsynced; replay walks
sealed segments in number order, then the active file.  Segment numbers are
never reused — :class:`~repro.storage.store.RecordStore.checkpoint` records
the highest sealed number its snapshot covers (``wal_seal``) and deletes the
covered segments, bounding WAL disk usage; recovery skips any *stale*
segment at or below that number (a crash artifact of checkpointing, cleaned
by ``repro fsck``).  A log that is never rotated is a single plain file —
the pre-segmentation layout — so old directories replay unchanged.

The log stores opaque JSON payloads — the store layer defines the operation
vocabulary (``put``/``delete``/``batch``).  ``fsync`` policy is the caller's
choice per append; benchmarks (E7) measure the difference.  All
durability-relevant I/O (open/fsync/rename/unlink) routes through a
:class:`~repro.storage.faultfs.FileSystem` facade so crash tests can inject
faults at named points (see :mod:`repro.storage.faultfs`).

Observability: appends report ``storage.wal.append.count`` /
``storage.wal.append.bytes`` (batched locally and flushed to the registry
every ``_METRIC_BATCH`` appends and on sync/rotate/truncate/close, so a
live log lags by at most that many buffered appends); synced appends
additionally bump ``storage.wal.fsync.count`` and land their flush+fsync
latency in the ``storage.wal.flush.seconds`` histogram (buffered flushes
are not timed — they cost nanoseconds and timing them would dominate the
hot path); group commits via :meth:`WriteAheadLog.append_many` additionally
report ``storage.wal.batch.count`` / ``storage.wal.batch.entries``;
rotations bump ``storage.wal.rotate.count``; replay reports
``storage.wal.replay.entries``.  Full catalogue in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Iterable, Iterator

from repro.errors import CorruptLogError
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.resilience.retry import RetryPolicy
from repro.storage import faultfs as _faultfs

_MAGIC = "W1"

#: Sealed segments append ``.NNNNNN`` (6 digits, 1-based) to the base name.
_SEAL_SUFFIX_RE = re.compile(r"\A\.(\d{6})\Z")

_APPEND_COUNT = _metrics.counter("storage.wal.append.count")
_APPEND_BYTES = _metrics.counter("storage.wal.append.bytes")
_FLUSH_SECONDS = _metrics.histogram("storage.wal.flush.seconds")
_FSYNC_COUNT = _metrics.counter("storage.wal.fsync.count")
_BATCH_COUNT = _metrics.counter("storage.wal.batch.count")
_BATCH_ENTRIES = _metrics.counter("storage.wal.batch.entries")
_ROTATE_COUNT = _metrics.counter("storage.wal.rotate.count")
_REPLAY_ENTRIES = _metrics.counter("storage.wal.replay.entries")


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One replayed log entry with its byte offset (for diagnostics)."""

    offset: int
    payload: dict[str, Any]


@dataclass(slots=True)
class SegmentScan:
    """Integrity scan of one log file (used by replay and ``fsck``).

    ``entries`` is the longest valid prefix; ``valid_bytes`` is the file
    offset just past it (a repair truncates here).  ``torn_bytes`` counts
    trailing bytes of a torn final line (no newline — the normal crash
    artifact); ``error`` is set instead when damage is *not* a torn tail
    (a corrupt newline-terminated entry: acknowledged data was lost).
    """

    path: Path
    seal: int | None  #: segment number, or ``None`` for the active file
    entries: list[LogEntry] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0
    error: CorruptLogError | None = None

    @property
    def clean(self) -> bool:
        return self.torn_bytes == 0 and self.error is None


@dataclass(slots=True)
class ChainScan:
    """Scan of a whole segment chain in replay order.

    ``segments`` are the replayable files (sealed above ``min_seal``, in
    number order, then the active file); ``stale`` are sealed segments at
    or below ``min_seal`` — already covered by a snapshot, skipped.
    """

    segments: list[SegmentScan]
    stale: list[Path]

    def entries(self) -> list[LogEntry]:
        return [entry for scan in self.segments for entry in scan.entries]


def sealed_segment_paths(base: Path | str) -> list[tuple[int, Path]]:
    """``(number, path)`` of every sealed segment of ``base``, ascending."""
    base = Path(base)
    out = []
    if base.parent.is_dir():
        for path in base.parent.iterdir():
            name = path.name
            if not name.startswith(base.name):
                continue
            match = _SEAL_SUFFIX_RE.match(name[len(base.name):])
            if match:
                out.append((int(match.group(1)), path))
    out.sort()
    return out


#: Group-commit write coalescing: buffered frames are flushed to one
#: ``write`` call at this size, bounding both syscall count and the
#: transient buffer a huge batch would otherwise accumulate.
_WRITE_CHUNK_BYTES = 1 << 20


def _frame(payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    header = f"{_MAGIC} {crc:08x} {len(body)} ".encode("ascii")
    return header + body + b"\n"


class WriteAheadLog:
    """Append-only segmented log based at ``path``.

    ``path`` is the **active** file; sealed segments live beside it (see
    the module docstring).  The active file handle stays open for the
    life of the object; call :meth:`close` (or use as a context manager)
    to release it.  ``seal_floor`` is the lowest segment number already
    covered by a snapshot — rotation numbering continues above it even
    when the covered segments have been deleted, so numbers never repeat.

    >>> import tempfile, pathlib
    >>> with tempfile.TemporaryDirectory() as d:
    ...     wal = WriteAheadLog(pathlib.Path(d) / "t.wal")
    ...     _ = wal.append({"op": "put", "key": 1})
    ...     _ = wal.rotate()                      # seals t.wal.000001
    ...     _ = wal.append({"op": "del", "key": 1})
    ...     wal.close()
    ...     [e.payload["op"] for e in WriteAheadLog.replay_path(pathlib.Path(d) / "t.wal")]
    ['put', 'del']
    """

    #: Flush locally-batched append count/bytes to the registry at this
    #: many appends; also flushed on sync, rotate, truncate, and close, so
    #: the registry lags a live log by at most this many buffered appends.
    _METRIC_BATCH = 64

    def __init__(
        self,
        path: Path | str,
        *,
        sync: bool = False,
        fs: _faultfs.FileSystem | None = None,
        seal_floor: int = 0,
        retry: "RetryPolicy | None" = None,
    ):
        self.path = Path(path)
        self.sync = sync
        self._fs = fs if fs is not None else _faultfs.REAL_FS
        # Durability syscalls (write/fsync/rename) ride through a retry
        # policy that re-issues transient failures (EINTR/EAGAIN or an
        # injected TransientInjectedFault) and passes everything else —
        # including the crash-test InjectedFault — straight through.
        self._retry = retry if retry is not None else RetryPolicy()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = sealed_segment_paths(self.path)
        self._next_seal = max([seal_floor] + [n for n, _ in existing]) + 1
        # Physically drop a torn final line before appending: a new frame
        # written after torn bytes would share their line and turn a benign
        # crash artifact into mid-log corruption on the next replay.
        _drop_torn_tail(self.path)
        self._fh: BinaryIO | None = self._fs.open(self.path, "ab")
        self.entries_written = 0
        self._unreported_count = 0
        self._unreported_bytes = 0

    # -- writing ----------------------------------------------------------

    def append(self, payload: dict[str, Any], *, sync: bool | None = None) -> int:
        """Append one entry; returns the byte offset it was written at.

        ``sync`` overrides the instance-wide fsync policy for this append.
        """
        fh = self._require_open()
        offset = fh.tell()
        frame = _frame(payload)
        self._retry.call(lambda: fh.write(frame), describe="wal.append.write")
        self.entries_written += 1
        self._unreported_count += 1
        self._unreported_bytes += len(frame)
        if self.sync if sync is None else sync:
            start = time.perf_counter()
            self._retry.call(lambda: self._fs.fsync(fh), describe="wal.append.fsync")
            _FLUSH_SECONDS.observe(time.perf_counter() - start)
            _FSYNC_COUNT.inc()
            self._report_appends()
        else:
            fh.flush()
            if self._unreported_count >= self._METRIC_BATCH:
                self._report_appends()
        return offset

    def append_many(
        self,
        payloads: Iterable[dict[str, Any]],
        *,
        sync: bool | None = None,
        sync_every: int | None = None,
    ) -> int:
        """Group-commit several entries; returns how many were written.

        All frames share one buffered write path and — when syncing — one
        fsync for the whole batch, instead of one flush(+fsync) per entry.
        ``sync_every`` bounds the commit interval for very large batches:
        a syncing ``append_many`` then fsyncs after every ``sync_every``
        entries (plus once for the tail), trading a little throughput for
        a bounded window of buffered-but-unsynced data.
        """
        if sync_every is not None and sync_every < 1:
            raise ValueError(f"sync_every must be positive, got {sync_every}")
        fh = self._require_open()
        do_sync = self.sync if sync is None else sync
        start = time.perf_counter() if do_sync else 0.0
        total_bytes = 0
        written = 0
        fsyncs = 0
        # Frames are coalesced into chunked writes: one write syscall (and
        # one retry-policy trip) per ~1 MiB instead of per entry.  Frame
        # boundaries are preserved — a torn tail still tears on a frame or
        # mid-frame line exactly as before, which recovery already handles.
        buffered: list[bytes] = []
        buffered_bytes = 0

        def flush_buffered() -> None:
            nonlocal buffered_bytes
            if not buffered:
                return
            chunk = b"".join(buffered)
            buffered.clear()
            buffered_bytes = 0
            self._retry.call(lambda: fh.write(chunk), describe="wal.batch.write")

        for payload in payloads:
            frame = _frame(payload)
            total_bytes += len(frame)
            buffered.append(frame)
            buffered_bytes += len(frame)
            written += 1
            if do_sync and sync_every is not None and written % sync_every == 0:
                flush_buffered()
                self._retry.call(lambda: self._fs.fsync(fh), describe="wal.batch.fsync")
                fsyncs += 1
            elif buffered_bytes >= _WRITE_CHUNK_BYTES:
                flush_buffered()
        flush_buffered()
        if written == 0:
            return 0
        if do_sync:
            if sync_every is None or written % sync_every:
                self._retry.call(lambda: self._fs.fsync(fh), describe="wal.batch.fsync")
                fsyncs += 1
            _FLUSH_SECONDS.observe(time.perf_counter() - start)
            _FSYNC_COUNT.inc(fsyncs)
        else:
            fh.flush()
        _BATCH_COUNT.inc()
        _BATCH_ENTRIES.inc(written)
        self.entries_written += written
        self._unreported_count += written
        self._unreported_bytes += total_bytes
        self._report_appends()
        return written

    def _report_appends(self) -> None:
        if self._unreported_count:
            _APPEND_COUNT.inc(self._unreported_count)
            _APPEND_BYTES.inc(self._unreported_bytes)
            self._unreported_count = 0
            self._unreported_bytes = 0

    # -- segments ----------------------------------------------------------

    def rotate(self) -> int | None:
        """Seal the active file as the next numbered segment; start fresh.

        The active file is fsynced, renamed to ``<base>.<NNNNNN>``, the
        directory entry is fsynced, and a new empty active file opens.
        Returns the sealed segment's number, or ``None`` when the active
        file was empty (an empty rotation creates no segment).
        """
        fh = self._require_open()
        self._report_appends()
        fh.flush()
        sealed_bytes = os.fstat(fh.fileno()).st_size
        if sealed_bytes == 0:
            return None
        self._retry.call(lambda: self._fs.fsync(fh), describe="wal.rotate.fsync")
        fh.close()
        self._fh = None
        seal = self._next_seal
        sealed_path = self.sealed_path(seal)
        self._retry.call(
            lambda: self._fs.replace(self.path, sealed_path),
            describe="wal.rotate.replace",
        )
        self._fs.fsync_dir(self.path.parent)
        self._next_seal += 1
        self._fh = self._fs.open(self.path, "ab")
        _ROTATE_COUNT.inc()
        _logging.debug(
            "storage.wal.rotate",
            seal=seal,
            segment=sealed_path.name,
            bytes=sealed_bytes,
        )
        return seal

    def sealed_path(self, seal: int) -> Path:
        """Path a segment sealed with number ``seal`` lives (or would live) at."""
        return self.path.with_name(f"{self.path.name}.{seal:06d}")

    def sealed_segments(self) -> list[tuple[int, Path]]:
        """``(number, path)`` of the sealed segments present on disk."""
        return sealed_segment_paths(self.path)

    @property
    def highest_seal(self) -> int:
        """The highest segment number sealed (or reserved) so far."""
        return self._next_seal - 1

    def truncate(self) -> None:
        """Erase the whole log: every sealed segment and the active file."""
        fh = self._require_open()
        fh.seek(0)
        fh.truncate()
        self._retry.call(lambda: self._fs.fsync(fh), describe="wal.truncate.fsync")
        removed = False
        for _, sealed in self.sealed_segments():
            self._fs.remove(sealed)
            removed = True
        if removed:
            self._fs.fsync_dir(self.path.parent)
        self._report_appends()

    def close(self) -> None:
        if self._fh is not None:
            self._report_appends()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> BinaryIO:
        if self._fh is None:
            raise CorruptLogError("log is closed")
        return self._fh

    @property
    def size_bytes(self) -> int:
        """Current size of the active file in bytes."""
        return self.path.stat().st_size if self.path.exists() else 0

    @property
    def total_size_bytes(self) -> int:
        """Size of the whole chain: sealed segments plus the active file."""
        return self.size_bytes + sum(
            p.stat().st_size for _, p in self.sealed_segments()
        )

    # -- replay -----------------------------------------------------------

    @classmethod
    def scan_file(cls, path: Path | str, *, strict: bool = True) -> SegmentScan:
        """Integrity-scan one log file.

        With ``strict`` (the default), damage that is not a torn tail
        raises :class:`CorruptLogError`; lenient mode records it on the
        returned :class:`SegmentScan` instead (``fsck`` uses this to keep
        walking and report everything it finds).
        """
        path = Path(path)
        scan = SegmentScan(path=path, seal=_seal_of(path))
        if not path.exists():
            return scan
        with open(path, "rb") as fh:
            raw = fh.read()
        for offset, line, is_torn_candidate in _lines_with_offsets(raw):
            if is_torn_candidate:
                # An entry is only valid once newline-terminated: the
                # frame (including its newline) is one write, so a missing
                # terminator means the write — hence the acknowledgement —
                # never completed.  Always torn, even if it parses.
                scan.torn_bytes = len(raw) - offset
                break
            try:
                scan.entries.append(
                    LogEntry(offset=offset, payload=_parse_line(line, offset))
                )
            except CorruptLogError as exc:
                if strict:
                    raise
                scan.error = exc
                break
            scan.valid_bytes = offset + len(line) + 1
        return scan

    @classmethod
    def scan_chain(
        cls, path: Path | str, *, min_seal: int = 0, strict: bool = True
    ) -> ChainScan:
        """Scan the whole chain based at ``path`` in replay order.

        Sealed segments numbered at or below ``min_seal`` are *stale*
        (covered by a snapshot) and skipped.  With ``strict``, a gap in
        segment numbering or tail damage anywhere but the final file of
        the chain raises :class:`CorruptLogError` — sealed segments are
        fsynced before sealing, so mid-chain damage means acknowledged
        data was lost.
        """
        path = Path(path)
        stale: list[Path] = []
        live: list[tuple[int, Path]] = []
        for seal, sealed in sealed_segment_paths(path):
            (stale.append(sealed) if seal <= min_seal else live.append((seal, sealed)))
        if strict:
            expected = None
            for seal, sealed in live:
                if expected is not None and seal != expected:
                    raise CorruptLogError(
                        f"missing WAL segment {expected:06d} before {sealed.name}"
                    )
                expected = seal + 1
        scans = [cls.scan_file(p, strict=False) for _, p in live]
        if path.exists():
            scans.append(cls.scan_file(path, strict=False))
        if strict and scans:
            for scan in scans[:-1]:
                if not scan.clean:
                    raise CorruptLogError(
                        f"damage in sealed WAL segment {scan.path.name}: "
                        "torn or corrupt data before the final segment",
                        offset=scan.valid_bytes,
                    )
            # In the final file only a torn tail is a legal crash artifact;
            # a corrupt newline-terminated entry means acknowledged loss.
            if scans[-1].error is not None:
                raise scans[-1].error
        return ChainScan(segments=scans, stale=stale)

    @classmethod
    def replay_path(cls, path: Path | str) -> list[LogEntry]:
        """Replay the whole chain based at ``path`` into a list of entries.

        A torn final entry in the last file is dropped silently; earlier
        damage raises :class:`CorruptLogError` with the offending byte
        offset.  A never-rotated log is a chain of one file.
        """
        entries = cls.scan_chain(path).entries()
        _REPLAY_ENTRIES.inc(len(entries))
        return entries

    def replay(self) -> list[LogEntry]:
        """Replay this log's chain (flushing buffered writes first)."""
        if self._fh is not None:
            self._fh.flush()
        return self.replay_path(self.path)


def _drop_torn_tail(path: Path) -> int:
    """Truncate an unterminated final line off ``path``; returns bytes cut.

    A no-op for missing, empty, or newline-terminated files.  Scans
    backwards in chunks so large logs do not have to be read whole.
    """
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        return 0
    if size == 0:
        return 0
    with open(path, "rb+") as fh:
        fh.seek(-1, os.SEEK_END)
        if fh.read(1) == b"\n":
            return 0
        pos = size
        last_newline = -1
        while pos > 0 and last_newline < 0:
            step = min(4096, pos)
            pos -= step
            fh.seek(pos)
            last_newline_here = fh.read(step).rfind(b"\n")
            if last_newline_here >= 0:
                last_newline = pos + last_newline_here
        keep = last_newline + 1
        fh.truncate(keep)
        fh.flush()
        os.fsync(fh.fileno())
    return size - keep


def _seal_of(path: Path) -> int | None:
    match = _SEAL_SUFFIX_RE.match(path.suffix)
    return int(match.group(1)) if match else None


def _lines_with_offsets(raw: bytes) -> Iterator[tuple[int, bytes, bool]]:
    """Yield ``(offset, line, is_torn_candidate)`` for each log line.

    Only a final line with no trailing newline can be a torn write; every
    newline-terminated line was fully written and must validate.
    """
    offset = 0
    chunks = raw.split(b"\n")
    ends_with_newline = raw.endswith(b"\n")
    for i, chunk in enumerate(chunks):
        if chunk:
            is_torn_candidate = (i == len(chunks) - 1) and not ends_with_newline
            yield offset, chunk, is_torn_candidate
        offset += len(chunk) + 1


def _parse_line(line: bytes, offset: int) -> dict[str, Any]:
    parts = line.split(b" ", 3)
    if len(parts) != 4 or parts[0] != _MAGIC.encode("ascii"):
        raise CorruptLogError("bad frame header", offset=offset)
    crc_hex, length_txt, body = parts[1], parts[2], parts[3]
    try:
        expected_crc = int(crc_hex, 16)
        expected_len = int(length_txt)
    except ValueError:
        raise CorruptLogError("unparseable frame header", offset=offset) from None
    if len(body) != expected_len:
        raise CorruptLogError(
            f"length mismatch: header says {expected_len}, body is {len(body)}",
            offset=offset,
        )
    if zlib.crc32(body) & 0xFFFFFFFF != expected_crc:
        raise CorruptLogError("CRC mismatch", offset=offset)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptLogError(f"bad JSON payload: {exc}", offset=offset) from exc
    if not isinstance(payload, dict):
        raise CorruptLogError("payload is not an object", offset=offset)
    return payload

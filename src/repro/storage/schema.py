"""Light record schema: typed, named fields with a designated primary key.

The store does not force an object model on callers — records are plain
dictionaries — but every table carries a :class:`Schema` that validates
records on write.  Validation is strict on the fields it knows about and
rejects unknown fields, which catches ingest bugs early.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import ValidationError


class FieldType(enum.Enum):
    """Value types storable in a record field."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STRING_LIST = "string_list"

    def check(self, value: Any) -> bool:
        """True when ``value`` conforms to this type."""
        if self is FieldType.STRING:
            return isinstance(value, str)
        if self is FieldType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is FieldType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is FieldType.BOOL:
            return isinstance(value, bool)
        if self is FieldType.STRING_LIST:
            return isinstance(value, list) and all(isinstance(v, str) for v in value)
        raise AssertionError(f"unhandled field type {self}")  # pragma: no cover


@dataclass(frozen=True, slots=True)
class Field:
    """One schema field."""

    name: str
    type: FieldType
    required: bool = True

    def validate(self, record: Mapping[str, Any]) -> None:
        """Raise :class:`ValidationError` when ``record`` violates this field."""
        if self.name not in record or record[self.name] is None:
            if self.required:
                raise ValidationError(f"missing required field {self.name!r}", field=self.name)
            return
        if not self.type.check(record[self.name]):
            raise ValidationError(
                f"field {self.name!r} expects {self.type.value}, "
                f"got {type(record[self.name]).__name__}",
                field=self.name,
            )


def _type_checker(field_type: FieldType) -> Any:
    """A plain predicate equivalent to ``field_type.check`` (bulk path)."""
    if field_type is FieldType.STRING:
        return lambda v: isinstance(v, str)
    if field_type is FieldType.INT:
        return lambda v: isinstance(v, int) and not isinstance(v, bool)
    if field_type is FieldType.FLOAT:
        return lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    if field_type is FieldType.BOOL:
        return lambda v: isinstance(v, bool)
    if field_type is FieldType.STRING_LIST:
        return lambda v: isinstance(v, list) and all(isinstance(e, str) for e in v)
    raise AssertionError(f"unhandled field type {field_type}")  # pragma: no cover


class Schema:
    """A table schema: ordered fields plus the primary-key field name.

    >>> schema = Schema(
    ...     [Field("id", FieldType.INT), Field("title", FieldType.STRING)],
    ...     primary_key="id",
    ... )
    >>> schema.validate({"id": 1, "title": "x"})
    >>> schema.primary_key_of({"id": 1, "title": "x"})
    1
    """

    def __init__(self, fields: Iterable[Field], *, primary_key: str):
        self.fields: tuple[Field, ...] = tuple(fields)
        self._by_name: dict[str, Field] = {f.name: f for f in self.fields}
        if len(self._by_name) != len(self.fields):
            raise ValidationError("duplicate field names in schema")
        if primary_key not in self._by_name:
            raise ValidationError(f"primary key {primary_key!r} is not a schema field")
        if not self._by_name[primary_key].required:
            raise ValidationError(f"primary key {primary_key!r} must be required")
        self.primary_key = primary_key
        # Pre-bound per-field type predicates for the bulk path: a plain
        # isinstance call per value instead of an enum-method dispatch.
        self._checkers: tuple[tuple[str, bool, Any], ...] = tuple(
            (f.name, f.required, _type_checker(f.type)) for f in self.fields
        )

    def field(self, name: str) -> Field:
        """Look up a field by name; raises :class:`ValidationError` if unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ValidationError(f"unknown field {name!r}", field=name) from None

    def has_field(self, name: str) -> bool:
        return name in self._by_name

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def validate(self, record: Mapping[str, Any]) -> None:
        """Validate a whole record (all fields, no unknown keys)."""
        for f in self.fields:
            f.validate(record)
        unknown = set(record) - set(self._by_name)
        if unknown:
            raise ValidationError(
                f"unknown fields: {sorted(unknown)}", field=next(iter(sorted(unknown)))
            )

    def validate_many(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Validate a batch of records — same checks and errors as
        :meth:`validate`, one record at a time, but with the per-field
        dispatch hoisted out of the loop.

        Bulk ingest validates every record before anything is logged, so
        validation is a fixed per-record cost on the ``put_many`` hot
        path; this loop runs the pre-bound type predicates and a dict
        membership probe per key instead of building two sets and an enum
        dispatch per record.
        """
        checkers = self._checkers
        known = self._by_name
        for record in records:
            for name, required, ok in checkers:
                value = record.get(name)
                if value is None:
                    if required:
                        raise ValidationError(
                            f"missing required field {name!r}", field=name
                        )
                elif not ok(value):
                    raise ValidationError(
                        f"field {name!r} expects {known[name].type.value}, "
                        f"got {type(value).__name__}",
                        field=name,
                    )
            for key in record:
                if key not in known:
                    unknown = sorted(set(record) - known.keys())
                    raise ValidationError(
                        f"unknown fields: {unknown}", field=unknown[0]
                    )

    def primary_key_of(self, record: Mapping[str, Any]) -> Any:
        """Extract the primary-key value from a record."""
        try:
            return record[self.primary_key]
        except KeyError:
            raise ValidationError(
                f"record lacks primary key {self.primary_key!r}", field=self.primary_key
            ) from None

"""Buffered single-writer transactions.

A :class:`Transaction` records puts and deletes against a shadow view of
the store; nothing touches the store (or its WAL) until :meth:`commit`,
which hands the buffered operations to
:meth:`repro.storage.store.RecordStore.apply_batch` — one atomic WAL entry.
Leaving the ``with`` block commits on success and rolls back (discards) on
exception.

Crash semantics follow directly from the single-entry commit: a crash
*before* the commit's WAL append returns loses the whole transaction (the
buffered operations only ever lived in memory); a crash *after* it keeps
the whole transaction (recovery replays the one ``batch`` entry
atomically).  There is no window in which a prefix of a transaction is
durable — the crash suite in ``tests/crash/`` exercises both sides of
the boundary.

Isolation is the store's single-writer model: a transaction sees its own
buffered writes (read-your-writes via the shadow view) over the live
store state; there are no concurrent writers to isolate against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import (
    DuplicateKeyError,
    RecordNotFoundError,
    TransactionError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.store import RecordStore

_DELETED = object()  # shadow marker


class Transaction:
    """One buffered transaction over a :class:`RecordStore`.

    >>> from repro.storage.schema import Field, FieldType, Schema
    >>> from repro.storage.store import RecordStore
    >>> schema = Schema([Field("id", FieldType.INT), Field("t", FieldType.STRING)],
    ...                 primary_key="id")
    >>> store = RecordStore(schema)
    >>> with store.transaction() as txn:
    ...     txn.insert({"id": 1, "t": "a"})
    ...     txn.insert({"id": 2, "t": "b"})
    >>> len(store)
    2
    >>> try:
    ...     with store.transaction() as txn:
    ...         txn.delete(1)
    ...         raise RuntimeError("boom")
    ... except RuntimeError:
    ...     pass
    >>> 1 in store  # rollback left the record in place
    True
    """

    def __init__(self, store: "RecordStore"):
        self._store = store
        self._shadow: dict[Any, Any] = {}  # key -> record dict or _DELETED
        self._operations: list[dict[str, Any]] = []
        self._state = "open"

    # -- shadow view ---------------------------------------------------------

    def _shadow_get(self, key: Any) -> dict[str, Any] | None:
        """Record as this transaction sees it, or None when absent."""
        if key in self._shadow:
            value = self._shadow[key]
            return None if value is _DELETED else value
        try:
            return self._store.get(key)
        except RecordNotFoundError:
            return None

    def get(self, key: Any) -> dict[str, Any]:
        """Read through the transaction (sees its own writes)."""
        self._require_open()
        record = self._shadow_get(key)
        if record is None:
            raise RecordNotFoundError(key)
        return dict(record)

    def __contains__(self, key: Any) -> bool:
        return self._shadow_get(key) is not None

    # -- buffered mutations -----------------------------------------------------

    def insert(self, record: Mapping[str, Any]) -> None:
        """Buffer an insert; duplicate keys fail immediately."""
        self._require_open()
        record = dict(record)
        self._store.schema.validate(record)
        key = self._store.schema.primary_key_of(record)
        if self._shadow_get(key) is not None:
            raise DuplicateKeyError(key)
        self._shadow[key] = record
        self._operations.append({"op": "put", "record": record})

    def upsert(self, record: Mapping[str, Any]) -> None:
        """Buffer an insert-or-replace."""
        self._require_open()
        record = dict(record)
        self._store.schema.validate(record)
        key = self._store.schema.primary_key_of(record)
        self._shadow[key] = record
        self._operations.append({"op": "put", "record": record})

    def update(self, key: Any, changes: Mapping[str, Any]) -> dict[str, Any]:
        """Buffer a field update against the transaction's view."""
        record = self.get(key)
        record.update(changes)
        self._store.schema.validate(record)
        if self._store.schema.primary_key_of(record) != key:
            raise TransactionError("update must not change the primary key")
        self._shadow[key] = record
        self._operations.append({"op": "put", "record": record})
        return dict(record)

    def delete(self, key: Any) -> None:
        """Buffer a delete; the key must exist in the transaction's view."""
        self._require_open()
        if self._shadow_get(key) is None:
            raise RecordNotFoundError(key)
        self._shadow[key] = _DELETED
        self._operations.append({"op": "del", "key": key})

    # -- lifecycle -----------------------------------------------------------------

    def commit(self) -> None:
        """Apply all buffered operations atomically."""
        self._require_open()
        if self._operations:
            self._store.apply_batch(self._operations)
        self._state = "committed"

    def rollback(self) -> None:
        """Discard all buffered operations."""
        self._require_open()
        self._operations.clear()
        self._shadow.clear()
        self._state = "rolled-back"

    @property
    def pending_operations(self) -> int:
        return len(self._operations)

    def _require_open(self) -> None:
        if self._state != "open":
            raise TransactionError(f"transaction already {self._state}")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if self._state != "open":
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

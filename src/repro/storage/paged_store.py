"""Read-through record map over a paged B+ tree.

:class:`PagedRecordMap` is the object :class:`~repro.storage.store.RecordStore`
swaps in for its plain ``dict`` when a store runs in ``"paged"`` data
format: the checkpointed records live on disk in a
:class:`~repro.storage.paged_btree.PagedBTree` (the *base*), and
everything written since that checkpoint lives in a small in-memory
*overlay* (a dict of records plus a tombstone set for deletes).  Reads
check the overlay first and fall through to the tree; iteration is a
two-pointer merge of the pk-sorted base with the sorted overlay.  The
result behaves like the dict the store already uses — ``in`` /
``[key]`` / ``pop`` / ``update`` / ``values`` / ``items`` — with two
deliberate differences:

* iteration order is **primary-key order**, not insertion order (the
  base is a sorted tree; a merged iteration has no insertion order to
  preserve);
* records read from the base are decoded fresh on every access (the
  tree stores canonical JSON bytes), so callers must not rely on
  object identity across reads — the store copies at its API boundary
  anyway.

The map is also the checkpoint *source*: :meth:`sorted_encoded_items`
streams ``(pk, canonical-JSON-bytes)`` pairs in pk order, reusing the
base's stored bytes for unmodified records so a checkpoint of a
million-record store with a ten-record overlay decodes ten records,
not a million.

The canonical per-record encoding (sorted keys, compact separators, no
ASCII escaping) is chosen so that concatenating the encoded records as
a JSON array reproduces byte-for-byte what
:func:`~repro.storage.store.records_checksum` hashes — one record
grammar, one checksum, shared by the snapshot writer, recovery, and
``repro fsck``.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Iterator, Mapping

from repro.storage.paged_btree import PagedBTree


def encode_record(record: Mapping[str, Any]) -> bytes:
    """Canonical JSON bytes of one record (the tree's value format)."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def decode_record(raw: bytes) -> dict[str, Any]:
    return json.loads(raw.decode("utf-8"))


class StreamingChecksum:
    """CRC-32 over a JSON array assembled record-by-record.

    Feeding each record's canonical bytes yields exactly the CRC that
    :func:`~repro.storage.store.records_checksum` computes over the
    materialized list — ``json.dumps(list, separators=(",", ":"))`` is
    literally ``"[" + ",".join(items) + "]"``.
    """

    def __init__(self) -> None:
        self._crc = zlib.crc32(b"[")
        self._count = 0

    def add(self, record_bytes: bytes) -> None:
        if self._count:
            self._crc = zlib.crc32(b",", self._crc)
        self._crc = zlib.crc32(record_bytes, self._crc)
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def hexdigest(self) -> str:
        return f"{zlib.crc32(b']', self._crc) & 0xFFFFFFFF:08x}"

    def value(self) -> int:
        return zlib.crc32(b"]", self._crc) & 0xFFFFFFFF


class PagedRecordMap:
    """Dict-shaped view over base tree + overlay; see the module docstring."""

    def __init__(self, tree: PagedBTree):
        self._tree = tree
        self._overlay: dict[Any, dict[str, Any]] = {}
        self._deleted: set[Any] = set()
        self._len = tree.entry_count

    @property
    def tree(self) -> PagedBTree:
        return self._tree

    @property
    def overlay_size(self) -> int:
        """Records held in memory pending the next checkpoint."""
        return len(self._overlay) + len(self._deleted)

    # -- dict surface --------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __contains__(self, key: Any) -> bool:
        if key in self._overlay:
            return True
        if key in self._deleted:
            return False
        return key in self._tree

    def __getitem__(self, key: Any) -> dict[str, Any]:
        record = self._overlay.get(key)
        if record is not None:
            return record
        if key in self._deleted:
            raise KeyError(key)
        raw = self._tree.get(key)
        if raw is None:
            raise KeyError(key)
        return decode_record(raw)

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __setitem__(self, key: Any, record: dict[str, Any]) -> None:
        if key not in self:
            self._len += 1
        self._overlay[key] = record
        self._deleted.discard(key)

    def pop(self, key: Any) -> dict[str, Any]:
        record = self[key]  # raises KeyError when absent
        self._len -= 1
        self._overlay.pop(key, None)
        if key in self._tree:
            self._deleted.add(key)
        return record

    def update(self, other: Mapping[Any, dict[str, Any]]) -> None:
        for key, record in other.items():
            self[key] = record

    def __iter__(self) -> Iterator[Any]:
        for key, _record in self.items():
            yield key

    def keys(self) -> Iterator[Any]:
        return iter(self)

    def values(self) -> Iterator[dict[str, Any]]:
        for _key, record in self.items():
            yield record

    def items(self) -> Iterator[tuple[Any, dict[str, Any]]]:
        """Merged ``(pk, record)`` pairs in primary-key order.

        Do not mutate the map while iterating (the store collects first
        and applies after, so its own call sites never do).
        """
        for key, raw in self._merged_encoded():
            if raw is None:
                yield key, self._overlay[key]
            else:
                yield key, decode_record(raw)

    # -- checkpoint streaming ------------------------------------------------

    def sorted_encoded_items(self) -> Iterator[tuple[Any, bytes]]:
        """``(pk, canonical bytes)`` in pk order — the checkpoint stream.

        Unmodified base records pass through as their stored bytes; only
        overlay records are (re-)encoded.
        """
        for key, raw in self._merged_encoded():
            if raw is None:
                yield key, encode_record(self._overlay[key])
            else:
                yield key, raw

    def _merged_encoded(self) -> Iterator[tuple[Any, bytes | None]]:
        """Two-pointer merge; overlay entries carry ``None`` for bytes."""
        overlay_keys = sorted(self._overlay)
        base = self._tree.items()
        base_entry = next(base, None)
        i = 0
        while base_entry is not None and i < len(overlay_keys):
            base_key = base_entry[0]
            over_key = overlay_keys[i]
            if base_key < over_key:
                if base_key not in self._deleted:
                    yield base_key, base_entry[1]
                base_entry = next(base, None)
            elif over_key < base_key:
                yield over_key, None
                i += 1
            else:  # same key: overlay wins
                yield over_key, None
                i += 1
                base_entry = next(base, None)
        while base_entry is not None:
            if base_entry[0] not in self._deleted:
                yield base_entry[0], base_entry[1]
            base_entry = next(base, None)
        while i < len(overlay_keys):
            yield overlay_keys[i], None
            i += 1

    def close(self) -> None:
        self._tree.close()


__all__ = [
    "PagedRecordMap",
    "StreamingChecksum",
    "encode_record",
    "decode_record",
]

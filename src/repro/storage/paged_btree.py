"""A B+ tree stored in fixed-size pages, cached by an LRU buffer pool.

This is the on-disk counterpart of :class:`repro.storage.btree.BTree`:
same sorted-map contract (point get, ordered iteration, range scans),
but the data lives in a :class:`~repro.storage.pages.PageFile` and only
the working set is resident — at most ``pool_pages`` pages at a time,
via the :class:`~repro.storage.bufferpool.BufferPool`.  Opening a
million-record tree touches two pages (meta + root); everything else is
read through on demand.

Values are opaque byte strings (the store layer keeps canonical
per-record JSON there).  Values larger than
:data:`~repro.storage.pages.OVERFLOW_THRESHOLD` spill to overflow-page
chains so leaves always hold many cells.  Keys follow the
:func:`~repro.storage.pages.pack_key` codec (int/str/float/bool and
tuples thereof) and must pack to at most :data:`MAX_KEY_BYTES`.

Concurrency contract: any number of readers OR one writer — the store
layer's lock already enforces this; the tree adds no locking of its own
beyond the buffer pool's internal consistency.

Typical lifecycle::

    # Checkpoint: stream sorted records into a fresh page file.
    tree = PagedBTree.bulk_build(path, sorted_pairs, fs=fs)
    tree.set_data_crc(crc)
    tree.flush()

    # Recovery: open read-through in O(1).
    tree = PagedBTree(path, fs=fs, pool_pages=256)
    value = tree.get("wvlr-001")
"""

from __future__ import annotations

import bisect
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.errors import StorageError
from repro.obs import metrics as _metrics
from repro.storage import faultfs as _faultfs
from repro.storage.bufferpool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.pages import (
    HEADER,
    HEADER_SIZE,
    OVERFLOW_CAPACITY,
    OVERFLOW_THRESHOLD,
    PAGE_SIZE,
    PT_FREE,
    PT_INTERNAL,
    PT_LEAF,
    PT_META,
    PT_OVERFLOW,
    InternalNode,
    LeafNode,
    OverflowRef,
    PageCorruptionError,
    PageFile,
    finalize_page,
    pack_key,
    page_type,
)

#: Largest packed key accepted.  Bounding the key guarantees a split
#: half always fits in one page, so splits can never cascade into an
#: unsplittable node.
MAX_KEY_BYTES = 1024

_SEARCHES = _metrics.counter("storage.paged_btree.searches")
_SPLITS = _metrics.counter("storage.paged_btree.node_splits")
_BULK_LOADS = _metrics.counter("storage.paged_btree.bulk_loads")
_DEPTH = _metrics.gauge("storage.paged_btree.depth")


class PagedBTree:
    """Sorted key → bytes map over a page file; see the module docstring."""

    def __init__(
        self,
        path: Path | str,
        *,
        fs: _faultfs.FileSystem | None = None,
        pool_pages: int = DEFAULT_POOL_PAGES,
        create: bool = False,
        shard: int | None = None,
    ):
        self.path = Path(path)
        self._pager = PageFile(self.path, fs=fs, create=create)
        self._pool = BufferPool(self._pager, capacity=pool_pages, shard=shard)
        # Shard-labeled metric handles under a ShardedStore (matching the
        # shard-labeled storage.sharded.* series); module handles otherwise.
        if shard is None:
            self._searches, self._splits = _SEARCHES, _SPLITS
            self._bulk_loads, self._depth = _BULK_LOADS, _DEPTH
        else:
            self._searches = _metrics.counter(
                "storage.paged_btree.searches", shard=shard
            )
            self._splits = _metrics.counter(
                "storage.paged_btree.node_splits", shard=shard
            )
            self._bulk_loads = _metrics.counter(
                "storage.paged_btree.bulk_loads", shard=shard
            )
            self._depth = _metrics.gauge("storage.paged_btree.depth", shard=shard)
        #: Whether anything was written since open/flush; a pure-read
        #: lifetime leaves the file untouched on close.
        self._dirty = create
        if create:
            # A fresh tree is one empty leaf; the root is never page 0
            # (that is the meta page), so "root == 0" never occurs.
            root = self._pager.allocate()
            self._write_node(root, LeafNode(keys=[], values=[]))
            self._pager.meta.root = root
            self._pager.write_meta()

    # -- properties ----------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return self._pager.meta.entry_count

    def __len__(self) -> int:
        return self._pager.meta.entry_count

    @property
    def data_crc(self) -> int:
        """The CRC-32 the store layer stamped at checkpoint time."""
        return self._pager.meta.data_crc

    def set_data_crc(self, crc: int) -> None:
        self._pager.meta.data_crc = crc & 0xFFFFFFFF
        self._dirty = True

    @property
    def pool(self) -> BufferPool:
        return self._pool

    # -- node I/O ------------------------------------------------------------

    def _read_node(self, page_id: int) -> LeafNode | InternalNode:
        with self._pool.pin(page_id) as raw:
            ptype = page_type(raw)
            if ptype == PT_LEAF:
                return LeafNode.unpack(raw)
            if ptype == PT_INTERNAL:
                return InternalNode.unpack(raw)
        raise PageCorruptionError(page_id, f"expected a node page, got type {ptype}")

    def _write_node(self, page_id: int, node: LeafNode | InternalNode) -> None:
        self._pool.put_page(page_id, node.pack())

    # -- values / overflow chains -------------------------------------------

    def _store_value(self, value: bytes) -> bytes | OverflowRef:
        if len(value) <= OVERFLOW_THRESHOLD:
            return value
        chunks = [
            value[i : i + OVERFLOW_CAPACITY]
            for i in range(0, len(value), OVERFLOW_CAPACITY)
        ]
        pids = [self._pool.new_page() for _ in chunks]
        for i, chunk in enumerate(chunks):
            nxt = pids[i + 1] if i + 1 < len(pids) else 0
            page = bytearray(PAGE_SIZE)
            HEADER.pack_into(page, 0, PT_OVERFLOW, 0, len(chunk), 0, nxt)
            page[HEADER_SIZE : HEADER_SIZE + len(chunk)] = chunk
            self._pool.put_page(pids[i], finalize_page(page))
        return OverflowRef(head=pids[0], length=len(value))

    def _load_value(self, stored: bytes | OverflowRef) -> bytes:
        if not isinstance(stored, OverflowRef):
            return stored
        parts: list[bytes] = []
        page_id = stored.head
        remaining = stored.length
        while page_id and remaining > 0:
            with self._pool.pin(page_id) as raw:
                if page_type(raw) != PT_OVERFLOW:
                    raise PageCorruptionError(
                        page_id, f"overflow chain hit page type {raw[0]}"
                    )
                _t, _f, count, _crc, nxt = HEADER.unpack_from(raw, 0)
                parts.append(bytes(raw[HEADER_SIZE : HEADER_SIZE + count]))
            remaining -= count
            page_id = nxt
        value = b"".join(parts)
        if len(value) != stored.length:
            raise PageCorruptionError(
                stored.head,
                f"overflow chain yielded {len(value)} bytes, expected {stored.length}",
            )
        return value

    def _free_chain(self, ref: OverflowRef) -> None:
        pids: list[int] = []
        page_id = ref.head
        while page_id:
            with self._pool.pin(page_id) as raw:
                nxt = HEADER.unpack_from(raw, 0)[4]
            pids.append(page_id)
            page_id = nxt
        for pid in pids:
            self._pool.free_page(pid)

    # -- search --------------------------------------------------------------

    def _descend(
        self, key: Any
    ) -> tuple[list[tuple[int, InternalNode, int]], int, LeafNode]:
        """Walk root → leaf for ``key``; returns (path, leaf_pid, leaf)."""
        path: list[tuple[int, InternalNode, int]] = []
        page_id = self._pager.meta.root
        node = self._read_node(page_id)
        while isinstance(node, InternalNode):
            idx = bisect.bisect_right(node.keys, key)
            path.append((page_id, node, idx))
            page_id = node.children[idx]
            node = self._read_node(page_id)
        return path, page_id, node

    def get(self, key: Any, default: Any = None) -> bytes | Any:
        self._searches.inc()
        _path, _pid, leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return self._load_value(leaf.values[idx])
        return default

    def __contains__(self, key: Any) -> bool:
        _path, _pid, leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    # -- iteration -----------------------------------------------------------

    def _leftmost_leaf(self) -> tuple[int, LeafNode]:
        page_id = self._pager.meta.root
        node = self._read_node(page_id)
        while isinstance(node, InternalNode):
            page_id = node.children[0]
            node = self._read_node(page_id)
        return page_id, node

    def items(self) -> Iterator[tuple[Any, bytes]]:
        """All ``(key, value)`` pairs in key order, via the leaf chain.

        Snapshot semantics are NOT provided: do not mutate the tree
        while iterating (the store layer never does).
        """
        _pid, leaf = self._leftmost_leaf()
        while True:
            for key, stored in zip(leaf.keys, leaf.values):
                yield key, self._load_value(stored)
            if not leaf.next_leaf:
                return
            node = self._read_node(leaf.next_leaf)
            if not isinstance(node, LeafNode):
                raise PageCorruptionError(leaf.next_leaf, "leaf chain left the leaves")
            leaf = node

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def range_items(
        self, lo: Any = None, hi: Any = None, *, inclusive: bool = True
    ) -> Iterator[tuple[Any, bytes]]:
        """Pairs with ``lo <= key <= hi`` (``< hi`` when not inclusive)."""
        self._searches.inc()
        if lo is None:
            _pid, leaf = self._leftmost_leaf()
            idx = 0
        else:
            _path, _pid, leaf = self._descend(lo)
            idx = bisect.bisect_left(leaf.keys, lo)
        while True:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if hi is not None and (key > hi if inclusive else key >= hi):
                    return
                yield key, self._load_value(leaf.values[idx])
                idx += 1
            if not leaf.next_leaf:
                return
            node = self._read_node(leaf.next_leaf)
            if not isinstance(node, LeafNode):
                raise PageCorruptionError(leaf.next_leaf, "leaf chain left the leaves")
            leaf = node
            idx = 0

    # -- mutation ------------------------------------------------------------

    def insert(self, key: Any, value: bytes) -> None:
        """Set ``key`` to ``value`` (replacing any existing value)."""
        if len(pack_key(key)) > MAX_KEY_BYTES:
            raise StorageError(
                f"key packs to more than {MAX_KEY_BYTES} bytes: {key!r:.64}"
            )
        self._dirty = True
        path, page_id, leaf = self._descend(key)
        stored = self._store_value(value)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            old = leaf.values[idx]
            if isinstance(old, OverflowRef):
                self._free_chain(old)
            leaf.values[idx] = stored
        else:
            leaf.keys.insert(idx, key)
            leaf.values.insert(idx, stored)
            self._pager.meta.entry_count += 1
        if leaf.packed_size() <= PAGE_SIZE:
            self._write_node(page_id, leaf)
            return
        self._split_leaf(path, page_id, leaf)

    def _split_leaf(self, path: list, page_id: int, leaf: LeafNode) -> None:
        self._splits.inc()
        split = self._leaf_split_point(leaf)
        right_pid = self._pool.new_page()
        right = LeafNode(
            keys=leaf.keys[split:],
            values=leaf.values[split:],
            prev_leaf=page_id,
            next_leaf=leaf.next_leaf,
        )
        left = LeafNode(
            keys=leaf.keys[:split],
            values=leaf.values[:split],
            prev_leaf=leaf.prev_leaf,
            next_leaf=right_pid,
        )
        if right.next_leaf:
            successor = self._read_node(right.next_leaf)
            if isinstance(successor, LeafNode):
                successor.prev_leaf = right_pid
                self._write_node(right.next_leaf, successor)
        self._write_node(right_pid, right)
        self._write_node(page_id, left)
        self._insert_into_parent(path, page_id, right.keys[0], right_pid)

    @staticmethod
    def _leaf_split_point(leaf: LeafNode) -> int:
        """First index of the right half: split at ~half the payload bytes."""
        total = leaf.packed_size() - HEADER_SIZE - 4
        half = total // 2
        acc = 0
        for i, (key, value) in enumerate(zip(leaf.keys, leaf.values)):
            acc += leaf.cell_size(key, value)
            if acc >= half and i + 1 < len(leaf.keys):
                return i + 1
        return max(1, len(leaf.keys) - 1)

    def _insert_into_parent(
        self, path: list, left_pid: int, separator: Any, right_pid: int
    ) -> None:
        while path:
            page_id, node, idx = path.pop()
            node.keys.insert(idx, separator)
            node.children.insert(idx + 1, right_pid)
            if node.packed_size() <= PAGE_SIZE:
                self._write_node(page_id, node)
                return
            # Split the internal node: the median key moves up (B+
            # internals do not duplicate it).
            self._splits.inc()
            mid = len(node.keys) // 2
            separator = node.keys[mid]
            right = InternalNode(
                keys=node.keys[mid + 1 :], children=node.children[mid + 1 :]
            )
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
            new_pid = self._pool.new_page()
            self._write_node(new_pid, right)
            self._write_node(page_id, node)
            left_pid, right_pid = page_id, new_pid
        new_root = self._pool.new_page()
        self._write_node(new_root, InternalNode([separator], [left_pid, right_pid]))
        self._pager.meta.root = new_root

    def delete(self, key: Any) -> None:
        """Remove ``key``; :class:`KeyError` if absent.

        Deletion is free-list based rather than rebalancing: a leaf that
        empties is unlinked from the chain, freed, and its separator
        dropped from the parent.  Pages are reused by later allocations;
        the tree never merges siblings (checkpoints rebuild it compactly
        anyway).
        """
        path, page_id, leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyError(key)
        self._dirty = True
        old = leaf.values[idx]
        if isinstance(old, OverflowRef):
            self._free_chain(old)
        del leaf.keys[idx]
        del leaf.values[idx]
        self._pager.meta.entry_count -= 1
        if leaf.keys or not path:
            self._write_node(page_id, leaf)
            return
        # Empty non-root leaf: unlink from the chain, free, drop from parent.
        if leaf.prev_leaf:
            prev = self._read_node(leaf.prev_leaf)
            if isinstance(prev, LeafNode):
                prev.next_leaf = leaf.next_leaf
                self._write_node(leaf.prev_leaf, prev)
        if leaf.next_leaf:
            nxt = self._read_node(leaf.next_leaf)
            if isinstance(nxt, LeafNode):
                nxt.prev_leaf = leaf.prev_leaf
                self._write_node(leaf.next_leaf, nxt)
        self._pool.free_page(page_id)
        self._remove_from_parent(path, page_id)

    def _remove_from_parent(self, path: list, child_pid: int) -> None:
        page_id, node, idx = path.pop()
        if node.children[idx] != child_pid:
            raise PageCorruptionError(
                page_id, f"descent path stale: child {child_pid} not at slot {idx}"
            )
        del node.children[idx]
        if node.keys:
            del node.keys[max(0, idx - 1)]
        if node.children:
            if not path and not node.keys and len(node.children) == 1:
                # Root with a single child: collapse one level.
                self._pager.meta.root = node.children[0]
                self._pool.free_page(page_id)
            else:
                self._write_node(page_id, node)
            return
        # The internal node emptied entirely; free it and recurse.
        self._pool.free_page(page_id)
        if path:
            self._remove_from_parent(path, page_id)
        else:
            # The whole tree emptied: fresh empty leaf as root.
            root = self._pool.new_page()
            self._write_node(root, LeafNode(keys=[], values=[]))
            self._pager.meta.root = root

    # -- bulk build ----------------------------------------------------------

    @classmethod
    def bulk_build(
        cls,
        path: Path | str,
        items: Iterable[tuple[Any, bytes]],
        *,
        fs: _faultfs.FileSystem | None = None,
        pool_pages: int = DEFAULT_POOL_PAGES,
        shard: int | None = None,
    ) -> "PagedBTree":
        """Build a fresh tree from **key-sorted** ``(key, value)`` pairs.

        Streams: leaves are packed full and written as they fill, so
        resident memory is bounded by the pool plus one (first_key,
        page_id) pair per leaf for the internal levels.  This is the
        checkpoint path — :meth:`flush` (fsync) is the caller's job.
        """
        tree = cls(path, fs=fs, pool_pages=pool_pages, create=True, shard=shard)
        tree._bulk_loads.inc()
        tree._bulk_load(items)
        return tree

    def _bulk_load(self, items: Iterable[tuple[Any, bytes]]) -> None:
        pager, pool = self._pager, self._pool
        cur_pid = pager.meta.root  # fresh tree: the pre-created empty leaf
        cur = LeafNode(keys=[], values=[])
        prev_pid = 0
        leaf_index: list[tuple[Any, int]] = []  # (first key, page id) per leaf
        last_key: Any = None
        count = 0

        for key, value in items:
            if last_key is not None and not key > last_key:
                raise StorageError(
                    f"bulk_build input not strictly key-sorted at {key!r}"
                )
            if len(pack_key(key)) > MAX_KEY_BYTES:
                raise StorageError(
                    f"key packs to more than {MAX_KEY_BYTES} bytes: {key!r:.64}"
                )
            last_key = key
            stored = self._store_value(value)
            if (
                cur.keys
                and cur.packed_size() + cur.cell_size(key, stored) > PAGE_SIZE
            ):
                nxt_pid = pool.new_page()
                cur.prev_leaf, cur.next_leaf = prev_pid, nxt_pid
                self._write_node(cur_pid, cur)
                leaf_index.append((cur.keys[0], cur_pid))
                prev_pid, cur_pid = cur_pid, nxt_pid
                cur = LeafNode(keys=[], values=[])
            cur.keys.append(key)
            cur.values.append(stored)
            count += 1

        cur.prev_leaf, cur.next_leaf = prev_pid, 0
        self._write_node(cur_pid, cur)
        leaf_index.append((cur.keys[0] if cur.keys else None, cur_pid))
        pager.meta.entry_count = count

        # Internal levels, bottom up, until one node remains.
        level = leaf_index
        while len(level) > 1:
            next_level: list[tuple[Any, int]] = []
            node = InternalNode(keys=[], children=[level[0][1]])
            node_first = level[0][0]
            for first_key, child_pid in level[1:]:
                trial = InternalNode(
                    keys=node.keys + [first_key], children=node.children + [child_pid]
                )
                if trial.packed_size() > PAGE_SIZE:
                    pid = pool.new_page()
                    self._write_node(pid, node)
                    next_level.append((node_first, pid))
                    node = InternalNode(keys=[], children=[child_pid])
                    node_first = first_key
                else:
                    node.keys.append(first_key)
                    node.children.append(child_pid)
            pid = pool.new_page()
            self._write_node(pid, node)
            next_level.append((node_first, pid))
            level = next_level
        pager.meta.root = level[0][1]

    # -- verification --------------------------------------------------------

    def verify(self, *, on_page: Callable[[int], None] | None = None) -> dict[str, Any]:
        """Deep-check every reachable page; raise on any inconsistency.

        Dirty frames are written back first, then every read goes
        straight through the pager (not the pool) so disk-level damage
        is caught even when a clean copy is cached.  On the read-only
        paths that matter — fsck, checkpoint read-back verification —
        nothing is dirty and the file is not touched.  Checks page
        CRCs, in-node key order, uniform leaf depth, the doubly-linked
        leaf chain (global key order across leaves), overflow chain
        lengths, the free list (no cycles, only free pages), and the
        meta entry count.  Returns a stats dict.

        ``on_page`` (when given) is called with ``1`` for every node
        page walked — the progress-tracker hook for long fsck runs.
        """
        self._pool.flush()
        meta = self._pager.meta
        stats = {
            "pages": meta.page_count,
            "leaves": 0,
            "internals": 0,
            "overflow_pages": 0,
            "free_pages": 0,
            "entries": 0,
            "depth": 0,
            "data_crc": meta.data_crc,
        }
        leaf_chain: list[tuple[int, LeafNode]] = []
        leaf_depths: set[int] = set()

        def walk(page_id: int, depth: int, lo: Any, hi: Any) -> None:
            raw = self._pager.read_page(page_id)  # CRC-verified
            if on_page is not None:
                on_page(1)
            ptype = page_type(raw)
            if ptype == PT_LEAF:
                node = LeafNode.unpack(raw)
                self._verify_keys(page_id, node.keys, lo, hi)
                for stored in node.values:
                    if isinstance(stored, OverflowRef):
                        stats["overflow_pages"] += self._verify_chain(stored)
                stats["leaves"] += 1
                stats["entries"] += len(node.keys)
                leaf_depths.add(depth)
                leaf_chain.append((page_id, node))
            elif ptype == PT_INTERNAL:
                node = InternalNode.unpack(raw)
                self._verify_keys(page_id, node.keys, lo, hi)
                if len(node.children) != len(node.keys) + 1:
                    raise PageCorruptionError(page_id, "child/key count mismatch")
                stats["internals"] += 1
                bounds = [lo, *node.keys, hi]
                for i, child in enumerate(node.children):
                    walk(child, depth + 1, bounds[i], bounds[i + 1])
            else:
                raise PageCorruptionError(page_id, f"unexpected page type {ptype}")

        walk(meta.root, 1, None, None)
        stats["depth"] = max(leaf_depths)
        if len(leaf_depths) != 1:
            raise PageCorruptionError(meta.root, f"uneven leaf depths {leaf_depths}")
        if stats["entries"] != meta.entry_count:
            raise PageCorruptionError(
                0, f"meta says {meta.entry_count} entries, tree has {stats['entries']}"
            )
        # Leaf chain: walk() visits leaves left-to-right, so prev/next
        # must thread them in exactly that order.
        for i, (page_id, node) in enumerate(leaf_chain):
            expect_prev = leaf_chain[i - 1][0] if i > 0 else 0
            expect_next = leaf_chain[i + 1][0] if i + 1 < len(leaf_chain) else 0
            if node.prev_leaf != expect_prev or node.next_leaf != expect_next:
                raise PageCorruptionError(
                    page_id,
                    f"leaf chain broken: prev={node.prev_leaf} next={node.next_leaf},"
                    f" expected prev={expect_prev} next={expect_next}",
                )
        for free_pid in self._pager.free_list():
            stats["free_pages"] += 1
            if stats["free_pages"] > meta.page_count:
                raise PageCorruptionError(free_pid, "free list longer than the file")
        self._depth.set(stats["depth"])
        return stats

    @staticmethod
    def _verify_keys(page_id: int, keys: list, lo: Any, hi: Any) -> None:
        for a, b in zip(keys, keys[1:]):
            if not a < b:
                raise PageCorruptionError(page_id, f"keys out of order: {a!r} !< {b!r}")
        if keys:
            if lo is not None and keys[0] < lo:
                raise PageCorruptionError(page_id, f"key {keys[0]!r} below bound {lo!r}")
            if hi is not None and not keys[-1] < hi:
                raise PageCorruptionError(page_id, f"key {keys[-1]!r} at/above bound {hi!r}")

    def _verify_chain(self, ref: OverflowRef) -> int:
        pages = 0
        got = 0
        page_id = ref.head
        while page_id:
            raw = self._pager.read_page(page_id)
            if page_type(raw) != PT_OVERFLOW:
                raise PageCorruptionError(page_id, "overflow chain left overflow pages")
            _t, _f, count, _crc, nxt = HEADER.unpack_from(raw, 0)
            got += count
            pages += 1
            page_id = nxt
            if pages > self._pager.meta.page_count:
                raise PageCorruptionError(ref.head, "overflow chain cycle")
        if got != ref.length:
            raise PageCorruptionError(
                ref.head, f"overflow chain holds {got} bytes, ref says {ref.length}"
            )
        return pages

    # -- durability ----------------------------------------------------------

    def flush(self) -> None:
        """Write back dirty frames + meta and fsync the page file."""
        self._pool.flush()
        self._pager.write_meta()
        self._pager.fsync()
        self._dirty = False

    def close(self) -> None:
        """Flush (only if something was written) and release the file.

        A tree that was only read closes without touching the file, so
        a published checkpoint stays byte-identical under read traffic.
        """
        if self._dirty and not getattr(self._pager._fh, "closed", True):
            self.flush()
        self._pool.clear()
        self._pager.close()

    def abandon(self) -> None:
        """Release the file WITHOUT flushing (crash-path cleanup of a
        doomed build; the caller deletes the file next)."""
        self._pager.close()

    def __enter__(self) -> "PagedBTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["PagedBTree", "MAX_KEY_BYTES"]

"""Fixed-size page format for the on-disk B+ tree.

Everything the paged storage engine puts on disk is a **4 KiB page**
(:data:`PAGE_SIZE`).  This module owns the byte-level grammar — the page
header, the ``struct``-packed leaf/internal node layouts, the key codec,
the overflow-chain encoding, and the free-list — plus :class:`PageFile`,
the pager that reads, writes, allocates, and frees pages through the
:mod:`repro.storage.faultfs` filesystem facade (so the crash matrix can
tear page writes exactly like WAL writes).

The full grammar, with a worked hexdump, is documented in
``docs/storage_format.md``; this docstring keeps only the summary.

Page header (12 bytes, little-endian, ``<BBHII``)::

    offset 0  u8   type        1=meta 2=internal 3=leaf 4=overflow 5=free
    offset 1  u8   flags       reserved, 0
    offset 2  u16  count       keys (leaf/internal) or payload bytes (overflow)
    offset 4  u32  crc32       CRC-32 of the page with this field zeroed
    offset 8  u32  next        leaf: next leaf · overflow: next chunk ·
                               free: next free page · else 0

The CRC covers the *whole* page (header included, CRC field zeroed), so a
torn or bit-flipped page is detected on first read — ``repro fsck`` walks
every reachable page and reports the damaged page id.

Keys are type-tagged so a page file round-trips ``int`` / ``str`` /
``float`` / ``bool`` / tuple keys byte-identically; see :func:`pack_key`.
Values are opaque byte strings.  A value larger than
:data:`OVERFLOW_THRESHOLD` moves to a chain of overflow pages and the
leaf cell keeps only ``(head page, total length)``.

>>> node = LeafNode(keys=[1, 2], values=[b"a", b"bb"], prev_leaf=0, next_leaf=7)
>>> page = node.pack(page_size=256)
>>> len(page)
256
>>> back = LeafNode.unpack(page)
>>> back.keys, back.values, back.next_leaf
([1, 2], [b'a', b'bb'], 7)
>>> back.pack(page_size=256) == page
True
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro.errors import StorageError
from repro.storage import faultfs as _faultfs

#: One page; every read and write is exactly this many bytes.
PAGE_SIZE = 4096

#: Page header: type, flags, count, crc32, next.
HEADER = struct.Struct("<BBHII")
HEADER_SIZE = HEADER.size  # 12

#: Page types (header byte 0).
PT_META = 1
PT_INTERNAL = 2
PT_LEAF = 3
PT_OVERFLOW = 4
PT_FREE = 5

#: Meta-page payload: magic, version, page_size, root, free_head,
#: page_count, entry_count, data_crc.
META = struct.Struct("<4sHIIIIQI")
META_MAGIC = b"RPG1"
META_VERSION = 1

#: Values longer than this leave the leaf for an overflow chain.  Kept
#: well under the page payload so a leaf always holds several cells.
OVERFLOW_THRESHOLD = 1024

#: Usable payload bytes per overflow page.
OVERFLOW_CAPACITY = PAGE_SIZE - HEADER_SIZE

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class PageCorruptionError(StorageError):
    """A page failed its CRC or structural checks.

    Carries ``page_id`` so fsck can report exactly which page is damaged.
    """

    def __init__(self, page_id: int, reason: str):
        super().__init__(f"page {page_id}: {reason}")
        self.page_id = page_id
        self.reason = reason


class PageOverflowError(StorageError):
    """A node no longer fits in one page; the caller must split it."""


# -- key codec ---------------------------------------------------------------

_TAG_INT = 0x01
_TAG_STR = 0x02
_TAG_FLOAT = 0x03
_TAG_BOOL = 0x04
_TAG_BIGINT = 0x05  # decimal string, for ints outside i64
_TAG_TUPLE = 0x06

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def pack_key(key: Any) -> bytes:
    """Canonical tagged bytes of an index key.

    Round-trips ``int`` / ``str`` / ``float`` / ``bool`` and tuples of
    those (composite keys) exactly: ``unpack_key(pack_key(k))[0] == k``
    with the original type (``bool`` is tagged apart from ``int``).
    """
    # bool first: it subclasses int and must keep its type through a
    # round-trip or reopened routing/range semantics would change.
    if isinstance(key, bool):
        return bytes((_TAG_BOOL, 1 if key else 0))
    if isinstance(key, int):
        if _I64_MIN <= key <= _I64_MAX:
            return bytes((_TAG_INT,)) + _I64.pack(key)
        digits = str(key).encode("ascii")
        return bytes((_TAG_BIGINT,)) + _U16.pack(len(digits)) + digits
    if isinstance(key, str):
        raw = key.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise StorageError(f"key too long to page ({len(raw)} bytes)")
        return bytes((_TAG_STR,)) + _U16.pack(len(raw)) + raw
    if isinstance(key, float):
        return bytes((_TAG_FLOAT,)) + _F64.pack(key)
    if isinstance(key, tuple):
        parts = [bytes((_TAG_TUPLE,)), _U16.pack(len(key))]
        parts.extend(pack_key(part) for part in key)
        return b"".join(parts)
    raise StorageError(f"unpageable key type {type(key).__name__!r}")


def unpack_key(buf: bytes | memoryview, offset: int = 0) -> tuple[Any, int]:
    """Decode one key at ``offset``; returns ``(key, next_offset)``."""
    tag = buf[offset]
    offset += 1
    if tag == _TAG_INT:
        return _I64.unpack_from(buf, offset)[0], offset + 8
    if tag == _TAG_STR:
        (length,) = _U16.unpack_from(buf, offset)
        offset += 2
        return bytes(buf[offset : offset + length]).decode("utf-8"), offset + length
    if tag == _TAG_FLOAT:
        return _F64.unpack_from(buf, offset)[0], offset + 8
    if tag == _TAG_BOOL:
        return buf[offset] == 1, offset + 1
    if tag == _TAG_BIGINT:
        (length,) = _U16.unpack_from(buf, offset)
        offset += 2
        return int(bytes(buf[offset : offset + length])), offset + length
    if tag == _TAG_TUPLE:
        (count,) = _U16.unpack_from(buf, offset)
        offset += 2
        parts = []
        for _ in range(count):
            part, offset = unpack_key(buf, offset)
            parts.append(part)
        return tuple(parts), offset
    raise StorageError(f"unknown key tag 0x{tag:02x}")


# -- page checksum -----------------------------------------------------------


def finalize_page(page: bytearray) -> bytes:
    """Stamp the header CRC and return the immutable page bytes.

    The CRC covers the full page with the CRC field itself zeroed, so
    header damage (a flipped type byte, a torn ``next`` pointer) is
    caught exactly like payload damage.  Works for any page size (tests
    pack toy-sized pages to force splits cheaply).
    """
    page[4:8] = b"\x00\x00\x00\x00"
    crc = zlib.crc32(page) & 0xFFFFFFFF
    page[4:8] = _U32.pack(crc)
    return bytes(page)


def verify_page(page: bytes, page_id: int) -> None:
    """Raise :class:`PageCorruptionError` unless the page CRC matches."""
    if len(page) != PAGE_SIZE:
        raise PageCorruptionError(
            page_id, f"short page: {len(page)} of {PAGE_SIZE} bytes"
        )
    stored = _U32.unpack_from(page, 4)[0]
    scratch = bytearray(page)
    scratch[4:8] = b"\x00\x00\x00\x00"
    actual = zlib.crc32(scratch) & 0xFFFFFFFF
    if stored != actual:
        raise PageCorruptionError(
            page_id, f"checksum mismatch: stored {stored:08x}, computed {actual:08x}"
        )


def _blank_page(page_type: int, count: int = 0, next_page: int = 0) -> bytearray:
    page = bytearray(PAGE_SIZE)
    HEADER.pack_into(page, 0, page_type, 0, count, 0, next_page)
    return page


def page_type(page: bytes) -> int:
    """The type byte of a raw page."""
    return page[0]


# -- node layouts ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class OverflowRef:
    """A leaf value spilled to an overflow chain: head page + total length."""

    head: int
    length: int


@dataclass(slots=True)
class LeafNode:
    """A leaf page: sorted keys with values (inline bytes or overflow refs).

    Payload layout after the header::

        u32 prev_leaf
        count × cell:
            u16 key_len · key bytes ·
            u8 vtag (0 inline, 1 overflow) ·
            inline:   u32 value_len · value bytes
            overflow: u32 head_page · u32 total_len
    """

    keys: list[Any]
    values: list[bytes | OverflowRef]
    prev_leaf: int = 0
    next_leaf: int = 0

    def cell_size(self, key: Any, value: bytes | OverflowRef) -> int:
        key_bytes = pack_key(key)
        if isinstance(value, OverflowRef):
            return 2 + len(key_bytes) + 1 + 8
        return 2 + len(key_bytes) + 1 + 4 + len(value)

    def packed_size(self) -> int:
        size = HEADER_SIZE + 4
        for key, value in zip(self.keys, self.values):
            size += self.cell_size(key, value)
        return size

    def pack(self, *, page_size: int = PAGE_SIZE) -> bytes:
        out = bytearray()
        out += _U32.pack(self.prev_leaf)
        for key, value in zip(self.keys, self.values):
            key_bytes = pack_key(key)
            out += _U16.pack(len(key_bytes))
            out += key_bytes
            if isinstance(value, OverflowRef):
                out += b"\x01" + _U32.pack(value.head) + _U32.pack(value.length)
            else:
                out += b"\x00" + _U32.pack(len(value)) + value
        if HEADER_SIZE + len(out) > page_size:
            raise PageOverflowError(
                f"leaf needs {HEADER_SIZE + len(out)} bytes, page is {page_size}"
            )
        page = bytearray(page_size)
        HEADER.pack_into(page, 0, PT_LEAF, 0, len(self.keys), 0, self.next_leaf)
        page[HEADER_SIZE : HEADER_SIZE + len(out)] = out
        return finalize_page(page)

    @classmethod
    def unpack(cls, page: bytes) -> "LeafNode":
        ptype, _flags, count, _crc, next_leaf = HEADER.unpack_from(page, 0)
        if ptype != PT_LEAF:
            raise StorageError(f"not a leaf page (type {ptype})")
        view = memoryview(page)
        offset = HEADER_SIZE
        (prev_leaf,) = _U32.unpack_from(view, offset)
        offset += 4
        keys: list[Any] = []
        values: list[bytes | OverflowRef] = []
        for _ in range(count):
            (key_len,) = _U16.unpack_from(view, offset)
            offset += 2
            key, _ = unpack_key(view, offset)
            offset += key_len
            vtag = view[offset]
            offset += 1
            if vtag == 1:
                head, length = struct.unpack_from("<II", view, offset)
                offset += 8
                values.append(OverflowRef(head, length))
            else:
                (vlen,) = _U32.unpack_from(view, offset)
                offset += 4
                values.append(bytes(view[offset : offset + vlen]))
                offset += vlen
            keys.append(key)
        return cls(keys=keys, values=values, prev_leaf=prev_leaf, next_leaf=next_leaf)


@dataclass(slots=True)
class InternalNode:
    """An internal page: ``count`` separator keys and ``count+1`` children.

    ``children[i]`` covers keys in ``[keys[i-1], keys[i])`` (open ends at
    the edges).  Payload layout after the header::

        (count+1) × u32 child_page
        count × (u16 key_len · key bytes)
    """

    keys: list[Any]
    children: list[int]

    def packed_size(self) -> int:
        size = HEADER_SIZE + 4 * len(self.children)
        for key in self.keys:
            size += 2 + len(pack_key(key))
        return size

    def pack(self, *, page_size: int = PAGE_SIZE) -> bytes:
        if len(self.children) != len(self.keys) + 1:
            raise StorageError(
                f"internal node with {len(self.keys)} keys needs "
                f"{len(self.keys) + 1} children, has {len(self.children)}"
            )
        out = bytearray()
        for child in self.children:
            out += _U32.pack(child)
        for key in self.keys:
            key_bytes = pack_key(key)
            out += _U16.pack(len(key_bytes))
            out += key_bytes
        if HEADER_SIZE + len(out) > page_size:
            raise PageOverflowError(
                f"internal node needs {HEADER_SIZE + len(out)} bytes, "
                f"page is {page_size}"
            )
        page = bytearray(page_size)
        HEADER.pack_into(page, 0, PT_INTERNAL, 0, len(self.keys), 0, 0)
        page[HEADER_SIZE : HEADER_SIZE + len(out)] = out
        return finalize_page(page)

    @classmethod
    def unpack(cls, page: bytes) -> "InternalNode":
        ptype, _flags, count, _crc, _next = HEADER.unpack_from(page, 0)
        if ptype != PT_INTERNAL:
            raise StorageError(f"not an internal page (type {ptype})")
        view = memoryview(page)
        offset = HEADER_SIZE
        children = list(struct.unpack_from(f"<{count + 1}I", view, offset))
        offset += 4 * (count + 1)
        keys: list[Any] = []
        for _ in range(count):
            (key_len,) = _U16.unpack_from(view, offset)
            offset += 2
            key, _ = unpack_key(view, offset)
            offset += key_len
            keys.append(key)
        return cls(keys=keys, children=children)


# -- the pager ---------------------------------------------------------------


@dataclass(slots=True)
class _Meta:
    root: int = 0
    free_head: int = 0
    page_count: int = 1  # page 0 is the meta page itself
    entry_count: int = 0
    data_crc: int = 0


class PageFile:
    """Raw page I/O over one file: read, write, allocate, free.

    The pager is deliberately dumb — no caching, no tree knowledge; the
    :class:`~repro.storage.bufferpool.BufferPool` provides caching and
    the :class:`~repro.storage.paged_btree.PagedBTree` provides
    structure.  All writes go through the :mod:`~repro.storage.faultfs`
    facade so crash tests can tear them.

    Page 0 is the **meta page**: magic, format version, page size, root
    page id, free-list head, page count, entry count, and the data CRC
    the store layer stamps (CRC-32 of the canonical records JSON).
    Freed pages form a singly-linked **free list** threaded through
    their headers' ``next`` fields; :meth:`allocate` pops the head and
    only extends the file when the list is empty.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        fs: _faultfs.FileSystem | None = None,
        create: bool = False,
    ):
        self.path = Path(path)
        self._fs = fs if fs is not None else _faultfs.REAL_FS
        mode = "w+b" if create else "r+b"
        if not create and not self.path.exists():
            raise StorageError(f"page file {self.path} does not exist")
        self._fh: BinaryIO = self._fs.open(self.path, mode)
        self.meta = _Meta()
        if create:
            self.write_meta()
        else:
            self._load_meta()

    # -- meta ----------------------------------------------------------------

    def _load_meta(self) -> None:
        raw = self.read_page(0)
        if page_type(raw) != PT_META:
            raise PageCorruptionError(0, f"meta page has type {raw[0]}")
        magic, version, page_size, root, free_head, page_count, entries, crc = (
            META.unpack_from(raw, HEADER_SIZE)
        )
        if magic != META_MAGIC:
            raise PageCorruptionError(0, f"bad magic {magic!r}")
        if version != META_VERSION:
            raise StorageError(f"unsupported page-file version {version}")
        if page_size != PAGE_SIZE:
            raise StorageError(
                f"page file uses {page_size}-byte pages, expected {PAGE_SIZE}"
            )
        self.meta = _Meta(
            root=root,
            free_head=free_head,
            page_count=page_count,
            entry_count=entries,
            data_crc=crc,
        )

    def write_meta(self) -> None:
        """Persist the meta page (root, free list, counts, data CRC)."""
        page = _blank_page(PT_META)
        META.pack_into(
            page,
            HEADER_SIZE,
            META_MAGIC,
            META_VERSION,
            PAGE_SIZE,
            self.meta.root,
            self.meta.free_head,
            self.meta.page_count,
            self.meta.entry_count,
            self.meta.data_crc,
        )
        self.write_page(0, finalize_page(page))

    # -- raw page I/O --------------------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        """Read and CRC-verify one page."""
        self._fh.seek(page_id * PAGE_SIZE)
        raw = self._fh.read(PAGE_SIZE)
        verify_page(raw, page_id)
        return raw

    def write_page(self, page_id: int, page: bytes) -> None:
        """Write one finalized (CRC-stamped) page."""
        if len(page) != PAGE_SIZE:
            raise StorageError(f"page must be {PAGE_SIZE} bytes, got {len(page)}")
        self._fh.seek(page_id * PAGE_SIZE)
        self._fh.write(page)

    # -- allocation ----------------------------------------------------------

    def allocate(self) -> int:
        """A fresh page id: free-list head if any, else file extension."""
        if self.meta.free_head:
            page_id = self.meta.free_head
            raw = self.read_page(page_id)
            if page_type(raw) != PT_FREE:
                raise PageCorruptionError(
                    page_id, f"free-list page has type {raw[0]}"
                )
            self.meta.free_head = HEADER.unpack_from(raw, 0)[4]
            return page_id
        page_id = self.meta.page_count
        self.meta.page_count += 1
        return page_id

    def free(self, page_id: int) -> None:
        """Return ``page_id`` to the free list (head insertion)."""
        if page_id <= 0:
            raise StorageError(f"cannot free page {page_id}")
        page = _blank_page(PT_FREE, next_page=self.meta.free_head)
        self.write_page(page_id, finalize_page(page))
        self.meta.free_head = page_id

    def free_list(self) -> Iterator[int]:
        """Page ids on the free list, head first (fsck / tests)."""
        seen: set[int] = set()
        page_id = self.meta.free_head
        while page_id:
            if page_id in seen:
                raise PageCorruptionError(page_id, "free-list cycle")
            seen.add(page_id)
            yield page_id
            raw = self.read_page(page_id)
            if page_type(raw) != PT_FREE:
                raise PageCorruptionError(page_id, f"free-list page has type {raw[0]}")
            page_id = HEADER.unpack_from(raw, 0)[4]

    # -- durability ----------------------------------------------------------

    def fsync(self) -> None:
        self._fs.fsync(self._fh)

    def close(self) -> None:
        if not getattr(self._fh, "closed", True):
            self._fh.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "PAGE_SIZE",
    "HEADER_SIZE",
    "PT_META",
    "PT_INTERNAL",
    "PT_LEAF",
    "PT_OVERFLOW",
    "PT_FREE",
    "OVERFLOW_THRESHOLD",
    "OVERFLOW_CAPACITY",
    "OverflowRef",
    "LeafNode",
    "InternalNode",
    "PageFile",
    "PageCorruptionError",
    "PageOverflowError",
    "pack_key",
    "unpack_key",
    "finalize_page",
    "verify_page",
    "page_type",
]

"""Offline integrity checking and repair for a store directory.

``fsck`` is the explicit, human-invoked counterpart to the strict
recovery that runs when a :class:`~repro.storage.store.RecordStore`
opens: recovery *refuses* to open damaged data; ``fsck`` walks the whole
directory — snapshot manifest, every WAL segment, every frame — and
reports exactly what it finds, optionally repairing what is safely
repairable.  CLI surface: ``repro fsck DIR [--repair] [--json]``.

What it checks
--------------

* **Snapshot** (``snapshot.json``): parses, has a supported version, and
  (version ≥ 2) its manifest agrees with its content — ``record_count``
  matches the records array and ``checksum`` matches the CRC-32 of the
  canonical records JSON.  A version-3 *paged* manifest has no inline
  records; instead the referenced ``store.pages.NNNNNN`` file is opened
  and deep-verified page by page (every CRC, key order, leaf chain,
  free list), and its meta entry count / data CRC are compared against
  the manifest.  Page-level corruption is fatal and reported with the
  damaged page's id.
* **Segment chain**: sealed segment numbering has no gaps above the
  snapshot's ``wal_seal``; every frame in every live segment passes the
  ``W1`` grammar, length, and CRC checks; tail damage appears only where
  a crash can legally put it — the final file of the chain.
* **Crash artifacts**: stale sealed segments (at or below ``wal_seal``,
  left by a crash mid-checkpoint), stray snapshot temp files, and stray
  pages files — ``store.pages.*`` not referenced by the manifest,
  including ``.tmp`` builds a crash abandoned mid-checkpoint.

Repair policy
-------------

Repair never invents data and never touches anything mid-chain:

* a **torn tail** (unterminated final line of the last file) is truncated
  — that write was never acknowledged, so nothing is lost;
* a **corrupt tail** (CRC/grammar failure inside the last file) is
  truncated to the longest valid prefix — this *does* drop acknowledged
  entries and is reported as data loss, but it is the only way to make
  the store openable again;
* **stale segments**, **stray temp files**, and **stray pages files**
  are deleted;
* a **damaged snapshot with a complete WAL** (sealed segments running
  contiguously from seal 1, everything clean — i.e. no checkpoint ever
  reclaimed anything, so the WAL still holds the full committed history)
  is **rolled back**: the snapshot and its pages files are deleted and
  the next open recovers by full WAL replay, with zero committed-record
  loss (secondary-index declarations, which live only in the snapshot,
  must be re-declared by the caller);
* mid-chain damage (a bad sealed segment with later segments after it)
  is **fatal**: repairing it would silently drop an unbounded amount of
  acknowledged data, so fsck reports and refuses.

Exit codes (see :meth:`FsckReport.exit_code`): 0 — clean (or everything
found was repaired); 1 — repairable issues found but ``repair`` was off;
2 — fatal damage.

Observability: each run bumps ``storage.fsck.runs`` and reports
``storage.fsck.issues`` / ``storage.fsck.repairs``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CorruptLogError, StorageError
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.obs import progress as _progress
from repro.storage.paged_btree import PagedBTree
from repro.storage.pages import PageCorruptionError
from repro.storage.store import _SUPPORTED_SNAPSHOT_VERSIONS, records_checksum
from repro.storage.wal import SegmentScan, WriteAheadLog, sealed_segment_paths

_FSCK_RUNS = _metrics.counter("storage.fsck.runs")
_FSCK_ISSUES = _metrics.counter("storage.fsck.issues")
_FSCK_REPAIRS = _metrics.counter("storage.fsck.repairs")

#: Issue severities, in escalating order.
INFO = "info"  #: observation only; never affects the exit code
REPAIRABLE = "repairable"  #: fsck can fix it; exit 1 until repaired
REPAIRED = "repaired"  #: was repairable, and ``repair=True`` fixed it
FATAL = "fatal"  #: unrepairable damage; exit 2


@dataclass(slots=True)
class FsckIssue:
    """One finding: a severity, a message, and the file it concerns."""

    severity: str
    message: str
    path: str | None = None

    def render(self) -> str:
        where = f" [{self.path}]" if self.path else ""
        return f"{self.severity.upper():10s} {self.message}{where}"


@dataclass(slots=True)
class FsckReport:
    """Everything one ``fsck`` run found, plus summary counts."""

    directory: str
    repair: bool
    issues: list[FsckIssue] = field(default_factory=list)
    segments_checked: int = 0
    entries_checked: int = 0
    snapshot_records: int | None = None  #: ``None`` when no snapshot exists

    def add(self, severity: str, message: str, path: Path | str | None = None) -> None:
        self.issues.append(
            FsckIssue(severity=severity, message=message,
                      path=str(path) if path is not None else None)
        )

    @property
    def clean(self) -> bool:
        """No findings beyond informational ones (repaired counts as a finding)."""
        return all(issue.severity == INFO for issue in self.issues)

    @property
    def ok(self) -> bool:
        """Nothing left that would impair recovery (repaired issues are ok)."""
        return all(issue.severity in (INFO, REPAIRED) for issue in self.issues)

    def exit_code(self) -> int:
        if any(issue.severity == FATAL for issue in self.issues):
            return 2
        if any(issue.severity == REPAIRABLE for issue in self.issues):
            return 1
        return 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "directory": self.directory,
            "repair": self.repair,
            "ok": self.ok,
            "exit_code": self.exit_code(),
            "segments_checked": self.segments_checked,
            "entries_checked": self.entries_checked,
            "snapshot_records": self.snapshot_records,
            "issues": [
                {"severity": i.severity, "message": i.message, "path": i.path}
                for i in self.issues
            ],
        }

    def render(self) -> str:
        lines = [f"fsck {self.directory}"]
        lines += [f"  {issue.render()}" for issue in self.issues]
        snapshot = (
            "no snapshot"
            if self.snapshot_records is None
            else f"{self.snapshot_records} snapshot records"
        )
        lines.append(
            f"  checked {self.segments_checked} segment(s), "
            f"{self.entries_checked} WAL entries, {snapshot}"
        )
        lines.append(f"  status: {'clean' if self.ok else 'DAMAGED'}")
        return "\n".join(lines)


def fsck(
    directory: Path | str,
    *,
    repair: bool = False,
    wal_name: str = "store.wal",
    snapshot_name: str = "snapshot.json",
) -> FsckReport:
    """Check (and with ``repair=True``, repair) the store at ``directory``.

    Schema-agnostic: works frame-by-frame against the on-disk format, so
    it runs on any store directory regardless of what the records mean.
    See the module docstring for the check list and the repair policy.
    """
    directory = Path(directory)
    report = FsckReport(directory=str(directory), repair=repair)
    _FSCK_RUNS.inc()
    try:
        if not directory.is_dir():
            report.add(FATAL, "store directory does not exist", directory)
            return report
        snapshot_path = directory / snapshot_name
        wal_base = directory / wal_name
        # Indeterminate total: the walk covers pages (deep verify) plus
        # WAL entries, and neither count is known until the files are
        # read.  The tracker still surfaces done/rate on /progressz.
        with _progress.start("storage.fsck", directory=str(directory)) as tracker:
            _check_stray_tmp(report, snapshot_path, repair)
            before = len(report.issues)
            wal_seal, pages_name = _check_snapshot(report, snapshot_path, tracker)
            snapshot_fatal = any(
                issue.severity == FATAL for issue in report.issues[before:]
            )
            target = (
                _rollback_target(directory, wal_base, wal_seal)
                if snapshot_fatal
                else None
            )
            if target is not None:
                # The snapshot is damaged, but an older state plus the
                # surviving WAL still holds the complete committed
                # history: either a previous checkpoint's pages file
                # deep-verifies clean and every later segment is present
                # and clean (target > 0), or the chain runs unbroken
                # from genesis (target == 0).  Rolling the snapshot back
                # to that point makes the next open recover by WAL
                # replay with zero committed-record loss.
                for issue in report.issues[before:]:
                    if issue.severity == FATAL:
                        issue.severity = REPAIRED if repair else REPAIRABLE
                if repair:
                    wal_seal, pages_name = _rollback_snapshot(
                        report, directory, snapshot_path, target
                    )
                else:
                    point = (
                        f"checkpoint {target} (its pages file verifies clean)"
                        if target
                        else "genesis (the WAL chain is complete from seal 1)"
                    )
                    report.add(
                        REPAIRABLE,
                        f"snapshot is damaged but the history survives — "
                        f"repair will roll back to {point} and recover the "
                        "rest by WAL replay (zero committed-record loss)",
                        snapshot_path,
                    )
                    # The rollback point's files are the only good copy
                    # of the data: reference them below so nothing
                    # offers to delete them as stale/stray.
                    wal_seal = target
                    if target:
                        pages_name = f"store.pages.{target:06d}"
            _check_stray_pages(report, directory, pages_name, repair)
            _check_chain(report, wal_base, wal_seal, repair, tracker)
        return report
    finally:
        _FSCK_ISSUES.inc(sum(1 for i in report.issues if i.severity != INFO))
        _FSCK_REPAIRS.inc(sum(1 for i in report.issues if i.severity == REPAIRED))
        code = report.exit_code()
        _logging.log(
            "storage.fsck",
            level="info" if code == 0 else ("warn" if code == 1 else "error"),
            directory=report.directory,
            exit_code=code,
            repair=repair,
            segments_checked=report.segments_checked,
            entries_checked=report.entries_checked,
            issues=len(report.issues),
        )


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _pages_files(directory: Path) -> list[tuple[int, Path]]:
    """``(seal, path)`` of canonical ``store.pages.NNNNNN`` files, ascending."""
    out = []
    for path in directory.glob("store.pages.*"):
        seal_text = path.name.rsplit(".", 1)[-1]
        if seal_text.isdigit():
            out.append((int(seal_text), path))
    out.sort()
    return out


def _rollback_target(directory: Path, wal_base: Path, wal_seal: int) -> int | None:
    """Newest checkpoint a damaged snapshot can safely roll back to.

    A rollback point ``K`` is safe when the surviving files still hold
    every committed write: for ``K > 0`` the pages file
    ``store.pages.K`` must deep-verify clean (the complete state as of
    checkpoint ``K``), and in both cases every WAL segment *after*
    ``K`` — up to the newest checkpoint any evidence proves happened
    (the highest seal among surviving segments, surviving pages files,
    and the snapshot's own claim) — must be present and scan clean, as
    must the active log.  A hole in that range means a later
    checkpoint's reclaim already deleted history the rollback would
    need, so the candidate is rejected rather than risk silent loss.

    Candidates are tried newest-first (pages files by descending seal,
    then genesis ``K = 0``); returns the first safe one, or ``None``.
    """
    sealed = sealed_segment_paths(wal_base)
    seals = {seal for seal, _path in sealed}
    pages = _pages_files(directory)
    proven = max(
        [*seals, *(seal for seal, _path in pages), wal_seal], default=0
    )
    segment_clean: dict[int, bool] = {}

    def chain_ok(k: int) -> bool:
        by_seal = dict(sealed)
        for seal in range(k + 1, proven + 1):
            if seal not in by_seal:
                return False
            if seal not in segment_clean:
                segment_clean[seal] = WriteAheadLog.scan_file(
                    by_seal[seal], strict=False
                ).clean
            if not segment_clean[seal]:
                return False
        if wal_base.exists():
            if not WriteAheadLog.scan_file(wal_base, strict=False).clean:
                return False
        return True

    for seal, path in sorted(pages, reverse=True):
        if not chain_ok(seal):
            continue
        try:
            tree = PagedBTree(path)
            try:
                tree.verify()
            finally:
                tree.close()
        except Exception:
            continue
        return seal
    if sealed and min(seals) == 1 and chain_ok(0):
        return 0
    return None


def _rollback_snapshot(
    report: FsckReport, directory: Path, snapshot_path: Path, target: int
) -> tuple[int, str | None]:
    """Roll the store back to checkpoint ``target`` (repair action).

    Only called once :func:`_rollback_target` has proven the rollback
    point plus the surviving WAL hold the full history.  Deletes the
    damaged snapshot and every pages file newer than the target; for
    ``target > 0`` a fresh manifest referencing the verified pages file
    is written (its record count and CRC come from the tree's own meta
    page, so the manifest/pages cross-check holds on the next open), and
    recovery replays the WAL from there.  Secondary-index declarations
    live only in the snapshot and are lost — callers re-declare them
    (``ShardedStore.reopen_shard`` mirrors a sibling shard).

    Returns the ``(wal_seal, pages_name)`` now in effect.
    """
    keep_name = f"store.pages.{target:06d}" if target else None
    for _seal, path in _pages_files(directory):
        if path.name == keep_name:
            continue
        path.unlink()
        report.add(REPAIRED, "removed pages file of rolled-back snapshot", path)
    if keep_name is None:
        snapshot_path.unlink()
        report.add(
            REPAIRED,
            "rolled back damaged snapshot; next open recovers by full WAL replay",
            snapshot_path,
        )
        return 0, None
    tree = PagedBTree(directory / keep_name)
    try:
        record_count, data_crc = tree.entry_count, tree.data_crc
    finally:
        tree.close()
    state = {
        "version": 3,
        "format": "paged",
        "pages": keep_name,
        "wal_seal": target,
        "record_count": record_count,
        "checksum": f"{data_crc:08x}",
        "indexes": [],
    }
    tmp = snapshot_path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(state, ensure_ascii=False), encoding="utf-8")
    os.replace(tmp, snapshot_path)
    _fsync_dir(directory)
    report.add(
        REPAIRED,
        f"rolled snapshot back to checkpoint {target}; next open recovers "
        "the rest by WAL replay",
        snapshot_path,
    )
    return target, keep_name


def _check_stray_tmp(report: FsckReport, snapshot_path: Path, repair: bool) -> None:
    tmp = snapshot_path.with_suffix(".json.tmp")
    if not tmp.exists():
        return
    if repair:
        tmp.unlink()
        report.add(REPAIRED, "removed stray snapshot temp file (crash artifact)", tmp)
    else:
        report.add(REPAIRABLE, "stray snapshot temp file (crash artifact)", tmp)


def _check_snapshot(
    report: FsckReport, snapshot_path: Path, tracker: _progress.ProgressTracker
) -> tuple[int, str | None]:
    """Validate the snapshot manifest.

    Returns ``(wal_seal, pages_name)`` — the seal the snapshot covers
    (0 when there is none) and, for a paged (v3) manifest, the name of
    the pages file it references (``None`` otherwise), so the caller can
    treat every *other* ``store.pages.*`` file as a stray.
    """
    if not snapshot_path.exists():
        report.add(INFO, "no snapshot (recovery is WAL-only)")
        return 0, None
    try:
        state = json.loads(snapshot_path.read_bytes().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        report.add(FATAL, f"snapshot is not valid JSON: {exc}", snapshot_path)
        return 0, None
    version = state.get("version")
    if version not in _SUPPORTED_SNAPSHOT_VERSIONS:
        report.add(FATAL, f"unsupported snapshot version {version!r}", snapshot_path)
        return 0, None
    if version == 3:
        pages_name = _check_paged_snapshot(report, snapshot_path, state, tracker)
        return int(state.get("wal_seal", 0)), pages_name
    records = state.get("records")
    if not isinstance(records, list):
        report.add(FATAL, "snapshot has no records array", snapshot_path)
        return 0, None
    report.snapshot_records = len(records)
    if version >= 2:
        if state.get("record_count") != len(records):
            report.add(
                FATAL,
                f"snapshot manifest says {state.get('record_count')} records, "
                f"found {len(records)}",
                snapshot_path,
            )
        expected = state.get("checksum")
        actual = records_checksum(records)
        if expected != actual:
            report.add(
                FATAL,
                f"snapshot checksum mismatch: manifest {expected}, content {actual}",
                snapshot_path,
            )
    else:
        report.add(INFO, "version-1 snapshot (no manifest; count/checksum unchecked)")
    return int(state.get("wal_seal", 0)), None


def _check_paged_snapshot(
    report: FsckReport,
    snapshot_path: Path,
    state: dict[str, Any],
    tracker: _progress.ProgressTracker,
) -> str | None:
    """Deep-verify the pages file a v3 manifest references.

    Walks every reachable page through the pager (CRC-checked reads, key
    order, uniform depth, leaf chain, overflow chains, free list) and
    compares the meta page's entry count / data CRC against the
    manifest.  Returns the referenced pages-file name when the manifest
    at least names one, so stray detection knows what to keep.
    """
    pages_name = state.get("pages")
    if not isinstance(pages_name, str) or not pages_name or "/" in pages_name:
        report.add(
            FATAL,
            f"paged snapshot has a bad pages reference: {pages_name!r}",
            snapshot_path,
        )
        return None
    record_count = state.get("record_count")
    if isinstance(record_count, int):
        report.snapshot_records = record_count
    pages_path = snapshot_path.parent / pages_name
    if not pages_path.exists():
        report.add(
            FATAL,
            f"paged snapshot references missing pages file {pages_name}",
            pages_path,
        )
        return pages_name
    tree: PagedBTree | None = None
    try:
        tree = PagedBTree(pages_path, pool_pages=64)
        stats = tree.verify(on_page=tracker.tick)
    except PageCorruptionError as exc:
        report.add(FATAL, f"page-level corruption in pages file: {exc}", pages_path)
        return pages_name
    except (StorageError, OSError) as exc:
        report.add(FATAL, f"unreadable pages file: {exc}", pages_path)
        return pages_name
    finally:
        if tree is not None:
            tree.abandon()
    damaged = False
    if stats["entries"] != record_count:
        damaged = True
        report.add(
            FATAL,
            f"paged snapshot manifest says {record_count} records, "
            f"pages file holds {stats['entries']}",
            pages_path,
        )
    try:
        expected_crc = int(str(state.get("checksum", "")), 16)
    except ValueError:
        expected_crc = -1
    if stats["data_crc"] != expected_crc:
        damaged = True
        report.add(
            FATAL,
            f"pages checksum mismatch: manifest {state.get('checksum')!r}, "
            f"pages file {stats['data_crc']:08x}",
            pages_path,
        )
    if not damaged:
        report.add(
            INFO,
            f"pages file verified: {stats['pages']} pages, "
            f"{stats['entries']} entries, depth {stats['depth']}",
            pages_path,
        )
    return pages_name


def _check_stray_pages(
    report: FsckReport, directory: Path, pages_name: str | None, repair: bool
) -> None:
    """Flag ``store.pages.*`` files the manifest does not reference.

    A crash between publishing a pages file and publishing the manifest
    (or during the tmp build, or before the post-checkpoint sweep of
    superseded files) leaves extras behind.  They are never read by
    recovery, so deleting them is always safe.
    """
    for path in sorted(directory.glob("store.pages.*")):
        if pages_name is not None and path.name == pages_name:
            continue
        kind = (
            "temp pages file"
            if path.name.endswith(".tmp")
            else "unreferenced pages file"
        )
        if repair:
            path.unlink()
            report.add(REPAIRED, f"removed stray {kind} (crash artifact)", path)
        else:
            report.add(REPAIRABLE, f"stray {kind} (crash artifact)", path)


def _check_chain(
    report: FsckReport,
    wal_base: Path,
    wal_seal: int,
    repair: bool,
    tracker: _progress.ProgressTracker,
) -> None:
    stale: list[tuple[int, Path]] = []
    live: list[tuple[int, Path]] = []
    for seal, path in sealed_segment_paths(wal_base):
        (stale if seal <= wal_seal else live).append((seal, path))
    for seal, path in stale:
        if repair:
            path.unlink()
            report.add(
                REPAIRED,
                f"removed stale segment {seal:06d} (covered by snapshot, "
                "left by a crash mid-checkpoint)",
                path,
            )
        else:
            report.add(
                REPAIRABLE, f"stale segment {seal:06d} (covered by snapshot)", path
            )
    expected = None
    for seal, path in live:
        if expected is not None and seal != expected:
            report.add(
                FATAL,
                f"segment chain gap: expected segment {expected:06d}, "
                f"found {seal:06d} — acknowledged data is missing",
                path,
            )
        expected = seal + 1
    chain_files = [path for _, path in live]
    if wal_base.exists():
        chain_files.append(wal_base)
    report.segments_checked = len(chain_files)
    for position, path in enumerate(chain_files):
        scan = WriteAheadLog.scan_file(path, strict=False)
        report.entries_checked += len(scan.entries)
        tracker.tick(len(scan.entries))
        is_last = position == len(chain_files) - 1
        if scan.clean:
            continue
        if not is_last:
            # Sealed segments are fsynced before sealing; damage here with
            # later segments after it means acknowledged data vanished
            # mid-chain — truncating would drop everything downstream too.
            report.add(
                FATAL,
                "damage in a sealed mid-chain segment "
                f"(valid prefix: {len(scan.entries)} entries, "
                f"{scan.valid_bytes} bytes) — not safely repairable",
                path,
            )
            continue
        _handle_tail_damage(report, path, scan, repair)


def _handle_tail_damage(
    report: FsckReport, path: Path, scan: SegmentScan, repair: bool
) -> None:
    size = path.stat().st_size
    if scan.error is not None:
        lost = size - scan.valid_bytes
        message = (
            f"corrupt tail ({scan.error}): {lost} bytes beyond the last valid "
            f"entry are unreadable — truncating LOSES acknowledged data"
        )
        cut_to = scan.valid_bytes
    else:
        message = (
            f"torn tail: {scan.torn_bytes} trailing bytes of an unacknowledged "
            "write (normal crash artifact)"
        )
        cut_to = size - scan.torn_bytes
    if repair:
        with open(path, "rb+") as fh:
            fh.truncate(cut_to)
            fh.flush()
            os.fsync(fh.fileno())
        report.add(REPAIRED, f"{message}; truncated to {cut_to} bytes", path)
    else:
        report.add(REPAIRABLE, message, path)


# -- sharded store roots ------------------------------------------------------


def is_sharded_root(directory: Path | str) -> bool:
    """True when ``directory`` is a sharded store root (has a manifest)."""
    from repro.storage.sharded import SHARD_MANIFEST

    return (Path(directory) / SHARD_MANIFEST).is_file()


@dataclass(slots=True)
class ShardedFsckReport:
    """``fsck`` results for every shard of a sharded store root.

    Shards are independent durability domains, so each gets a full
    :class:`FsckReport` of its own; the root-level verdict is the
    *worst-of* fold — the overall exit code is the maximum per-shard exit
    code, with manifest problems (missing shard directories, unreadable
    manifest) counting as fatal.
    """

    root: str
    repair: bool
    shard_reports: list[FsckReport] = field(default_factory=list)
    manifest_issues: list[FsckIssue] = field(default_factory=list)

    def add_manifest_issue(
        self, severity: str, message: str, path: Path | str | None = None
    ) -> None:
        self.manifest_issues.append(
            FsckIssue(severity=severity, message=message,
                      path=str(path) if path is not None else None)
        )

    @property
    def ok(self) -> bool:
        return self.exit_code() == 0

    def exit_code(self) -> int:
        code = 0
        if any(i.severity == FATAL for i in self.manifest_issues):
            code = 2
        elif any(i.severity == REPAIRABLE for i in self.manifest_issues):
            code = 1
        for report in self.shard_reports:
            code = max(code, report.exit_code())
        return code

    def to_dict(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "repair": self.repair,
            "sharded": True,
            "shard_count": len(self.shard_reports),
            "ok": self.ok,
            "exit_code": self.exit_code(),
            "manifest_issues": [
                {"severity": i.severity, "message": i.message, "path": i.path}
                for i in self.manifest_issues
            ],
            "shards": [report.to_dict() for report in self.shard_reports],
        }

    def render(self) -> str:
        lines = [f"fsck (sharded) {self.root}: {len(self.shard_reports)} shard(s)"]
        lines += [f"  {issue.render()}" for issue in self.manifest_issues]
        for report in self.shard_reports:
            lines += ["  " + line for line in report.render().splitlines()]
        lines.append(f"  overall: {'clean' if self.ok else 'DAMAGED'}")
        return "\n".join(lines)


def fsck_sharded(root: Path | str, *, repair: bool = False) -> ShardedFsckReport:
    """Run :func:`fsck` over every shard of the sharded store at ``root``.

    Each shard directory is checked (and with ``repair=True``, repaired)
    exactly as a standalone store; the combined report folds the verdicts
    worst-of.  A fatal shard never stops the walk — the other shards are
    still checked so the report shows the full blast radius.
    """
    from repro.storage.sharded import SHARD_MANIFEST

    root = Path(root)
    report = ShardedFsckReport(root=str(root), repair=repair)
    manifest = root / SHARD_MANIFEST
    try:
        doc = json.loads(manifest.read_text(encoding="utf-8"))
        shard_count = doc["shard_count"]
        if not isinstance(shard_count, int) or shard_count < 1:
            raise ValueError(f"bad shard_count {shard_count!r}")
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        report.add_manifest_issue(
            FATAL, f"unreadable shard manifest: {exc}", manifest
        )
        return report
    for index in range(shard_count):
        shard_dir = root / f"shard-{index:02d}"
        if not shard_dir.is_dir():
            # A shard that never saw a write has no directory yet — an
            # empty store is clean, not damaged.  Note it and move on.
            report.add_manifest_issue(
                INFO, f"shard {index:02d} has no directory (no writes yet)",
                shard_dir,
            )
            continue
        report.shard_reports.append(fsck(shard_dir, repair=repair))
    return report


__all__ = [
    "FsckIssue",
    "FsckReport",
    "ShardedFsckReport",
    "fsck",
    "fsck_sharded",
    "is_sharded_root",
    "INFO",
    "REPAIRABLE",
    "REPAIRED",
    "FATAL",
    "CorruptLogError",
]

"""Hash-partitioned record store: N :class:`RecordStore` shards, one facade.

A :class:`ShardedStore` routes every record to one of ``N`` independent
shards by a salt-free CRC-32 over the canonical bytes of its primary key.
Each shard is a complete, self-contained :class:`~repro.storage.store.
RecordStore` — its own directory, WAL, snapshot/checkpoint cycle, and
fsck surface — so all of the single-store durability machinery composes
per shard unchanged.  On disk::

    root/
      shards.json     # manifest: shard count + router + persisted shard
                      # health states, written atomically
      shard-00/       # a full RecordStore directory (store.wal, snapshot.json)
      shard-01/
      ...

Why shard a single-writer embedded store?

* **Parallel durable ingest** — :meth:`ShardedStore.put_many` validates
  the batch once, partitions it by shard key, and commits the shard
  sub-batches on a thread pool (one worker per shard), overlapping WAL
  writes and fsyncs across shard directories.
* **Bounded WAL disk with small checkpoints** — a checkpoint serializes
  the *whole* store image, so its cost grows with store size; over a long
  ingest the total checkpoint bill is quadratic in the final size divided
  by the WAL bound.  Sharding divides every snapshot by N: the same
  ingest with the same per-shard WAL bound does ~N× less checkpoint work
  (see ``benchmarks/bench_shard.py``).  Pass ``checkpoint_wal_bytes`` to
  make the facade checkpoint any shard whose WAL crosses the bound after
  each bulk write, in parallel.
* **Scatter-gather queries** — the facade exposes the same index
  metadata/read surface the query planner consumes, and
  :class:`~repro.query.executor.ShardedQueryEngine` fans sub-plans across
  the shards and k-way-merges the results.

Routing is deterministic across processes and runs (``zlib.crc32``, not
the salted builtin ``hash``), so a store written with N shards can be
reopened and every key found where it was left.  The shard count is fixed
at creation and recorded in the manifest; reopening with a different
count raises rather than silently misrouting.

Observability: bulk writes report ``storage.sharded.put_many.count`` /
``storage.sharded.put_many.seconds`` plus the per-shard
``storage.sharded.put_many.records{shard=…}`` counters and
``storage.sharded.records{shard=…}`` gauges (skew is visible on
``/metrics`` as divergence between shard labels); facade-driven
checkpoints report ``storage.sharded.checkpoint.count{shard=…}``.  Each
member store is opened with ``shard=i`` so its paged-tree and
buffer-pool series carry the same label.  Shard workers adopt the
submitting thread's trace context (spans nest, log lines share the
trace id), and bulk writes / checkpoints register progress trackers
(``storage.sharded.put_many`` / ``storage.sharded.checkpoint``) visible
on ``/progressz``.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import DuplicateKeyError, MultiShardError, StorageError
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.obs import progress as _progress
from repro.obs import tracing as _tracing
from repro.storage import faultfs as _faultfs
from repro.storage.health import ShardHealthMachine
from repro.storage.schema import Schema
from repro.storage.store import IndexKind, RecordStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.deadline import Guard
    from repro.resilience.retry import RetryPolicy

__all__ = ["ShardedStore", "SHARD_MANIFEST", "shard_key_bytes"]

#: Manifest file marking a directory as a sharded store root.
SHARD_MANIFEST = "shards.json"

#: Manifest format version.
_MANIFEST_VERSION = 1

#: Hard cap on the shard count: beyond this the per-shard WAL/snapshot
#: overhead dwarfs any parallelism win for this store's scale.
MAX_SHARDS = 64

_PUT_MANY_COUNT = _metrics.counter("storage.sharded.put_many.count")
_PUT_MANY_SECONDS = _metrics.histogram("storage.sharded.put_many.seconds")


def shard_key_bytes(key: Any) -> bytes:
    """Canonical routing bytes of a primary key.

    Type-tagged so ``1``, ``1.0``, ``True``, and ``"1"`` never collide,
    and built from value semantics only — unlike ``hash(str)``, which is
    salted per process and would scatter a reopened store.
    """
    if isinstance(key, bool):
        return b"b:1" if key else b"b:0"
    if isinstance(key, int):
        return b"i:%d" % key
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, float):
        return b"f:" + repr(key).encode("ascii")
    return b"j:" + json.dumps(key, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def shard_of(key: Any, shard_count: int) -> int:
    """The shard index ``key`` routes to (CRC-32 mod ``shard_count``)."""
    if shard_count == 1:
        return 0
    return zlib.crc32(shard_key_bytes(key)) % shard_count


class ShardedStore:
    """N hash-partitioned :class:`RecordStore` shards behind one facade.

    Parameters
    ----------
    schema:
        Table schema shared by every shard.
    root:
        Sharded store root directory; ``None`` keeps every shard
        in-memory (no manifest, no durability).
    shards:
        Shard count.  Required when creating a new store; optional when
        reopening (the manifest remembers it, and a mismatch raises).
    sync:
        Per-shard WAL fsync policy, as for :class:`RecordStore`.
    checkpoint_wal_bytes:
        When set, every bulk write ends by checkpointing — in parallel —
        each shard whose WAL footprint reached the bound, keeping total
        WAL disk near ``shards * checkpoint_wal_bytes`` through an
        arbitrarily long ingest.

    >>> from repro.storage.schema import Field, FieldType, Schema
    >>> schema = Schema([Field("id", FieldType.INT), Field("t", FieldType.STRING)],
    ...                 primary_key="id")
    >>> store = ShardedStore(schema, None, shards=4)
    >>> store.put_many([{"id": i, "t": f"r{i}"} for i in range(10)])
    10
    >>> len(store), store.get(3)["t"]
    (10, 'r3')
    """

    def __init__(
        self,
        schema: Schema,
        root: Path | str | None = None,
        *,
        shards: int | None = None,
        sync: bool = False,
        checkpoint_wal_bytes: int | None = None,
        fs: "_faultfs.FileSystem | None" = None,
        retry: "RetryPolicy | None" = None,
        data_format: str = "memory",
        pool_pages: int | None = None,
        health_config: Mapping[str, Any] | None = None,
    ):
        self.schema = schema
        self.root: Path | None = Path(root) if root is not None else None
        if checkpoint_wal_bytes is not None and checkpoint_wal_bytes <= 0:
            raise StorageError(
                f"checkpoint_wal_bytes must be positive, got {checkpoint_wal_bytes}"
            )
        self.checkpoint_wal_bytes = checkpoint_wal_bytes
        self._fs = fs if fs is not None else _faultfs.REAL_FS

        health_doc: Mapping[str, Any] | None = None
        if self.root is None:
            if shards is None:
                raise StorageError("in-memory sharded store needs an explicit shards=")
            count = shards
        else:
            manifest = self.root / SHARD_MANIFEST
            if manifest.exists():
                count, health_doc = self._load_manifest(manifest, expected=shards)
            else:
                if shards is None:
                    raise StorageError(
                        f"{self.root} has no {SHARD_MANIFEST}; pass shards= to create"
                    )
                count = shards
        if not 1 <= count <= MAX_SHARDS:
            raise StorageError(
                f"shard count must be in [1, {MAX_SHARDS}], got {count}"
            )
        self.shard_count = count
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        # data_format/pool_pages pass straight through: each shard is a
        # complete RecordStore, so paged checkpoints and read-through
        # recovery compose per shard unchanged (pool memory is bounded
        # per shard — budget pool_pages accordingly at high shard counts).
        shard_kwargs: dict[str, Any] = {"data_format": data_format}
        if pool_pages is not None:
            shard_kwargs["pool_pages"] = pool_pages
        # Construction arguments are kept so a repaired shard can be
        # rebuilt in place by reopen_shard() with identical settings.
        self._shard_sync = sync
        self._shard_fs = fs
        self._shard_retry = retry
        self._shard_kwargs = shard_kwargs
        # shard=i labels each member's paged-tree/buffer-pool metric
        # series, so per-shard hit rates stay separable on /metrics.
        self.shards: tuple[RecordStore, ...] = tuple(
            RecordStore(
                schema,
                None if self.root is None else self.shard_path(i),
                sync=sync,
                fs=fs,
                retry=retry,
                shard=i,
                **shard_kwargs,
            )
            for i in range(count)
        )
        #: Per-shard health states; persisted into the manifest on every
        #: transition so quarantine survives a reopen.
        self.health = ShardHealthMachine(count, **dict(health_config or {}))
        self.health.load(health_doc)
        self.health.on_change = self._health_changed
        if self.root is not None:
            self._write_manifest()
        # One worker per shard: workloads here are dominated by per-shard
        # WAL/snapshot I/O and (on multi-core hosts) per-shard CPU, so the
        # pool is sized to the partition width, not the host.  Lazy — a
        # single-shard store never pays for a pool.
        self._pool: ThreadPoolExecutor | None = None
        self._records_gauges = tuple(
            _metrics.gauge("storage.sharded.records", shard=str(i))
            for i in range(count)
        )
        self._put_records_counters = tuple(
            _metrics.counter("storage.sharded.put_many.records", shard=str(i))
            for i in range(count)
        )
        self._checkpoint_counters = tuple(
            _metrics.counter("storage.sharded.checkpoint.count", shard=str(i))
            for i in range(count)
        )
        for i, shard in enumerate(self.shards):
            self._records_gauges[i].set(len(shard))

    # -- manifest ---------------------------------------------------------

    def _load_manifest(
        self, manifest: Path, *, expected: int | None
    ) -> tuple[int, Mapping[str, Any] | None]:
        """(shard_count, persisted health doc) from an existing manifest."""
        try:
            doc = json.loads(manifest.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"unreadable shard manifest {manifest}: {exc}") from exc
        count = doc.get("shard_count")
        if not isinstance(count, int) or count < 1:
            raise StorageError(f"shard manifest {manifest} has bad shard_count {count!r}")
        if doc.get("router") not in (None, "crc32"):
            raise StorageError(
                f"shard manifest {manifest} uses unknown router {doc.get('router')!r}"
            )
        if expected is not None and expected != count:
            raise StorageError(
                f"store at {manifest.parent} has {count} shards; "
                f"reopening with shards={expected} would misroute keys"
            )
        health = doc.get("health")
        return count, health if isinstance(health, dict) else None

    def _write_manifest(self) -> None:
        """(Re)write the manifest atomically.

        ``shard_count`` and ``router`` are immutable (validated on load);
        the only mutable section is ``health`` — non-healthy shard states
        that must survive a reopen (a shard pulled for corruption stays
        quarantined until it is repaired and readmitted).
        """
        assert self.root is not None
        manifest = self.root / SHARD_MANIFEST
        doc: dict[str, Any] = {
            "version": _MANIFEST_VERSION,
            "shard_count": self.shard_count,
            "router": "crc32",
        }
        health = getattr(self, "health", None)
        if health is not None:
            health_doc = health.to_dict()
            if health_doc:
                doc["health"] = health_doc
        tmp = manifest.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        tmp.replace(manifest)

    def _health_changed(self, shard: int, old: str, new: str, reason: str) -> None:
        if self.root is not None:
            self._write_manifest()

    def shard_path(self, index: int) -> Path:
        """Directory of shard ``index`` under the store root."""
        assert self.root is not None
        return self.root / f"shard-{index:02d}"

    # -- routing ----------------------------------------------------------

    def shard_for(self, key: Any) -> int:
        """The shard index ``key`` routes to."""
        return shard_of(key, self.shard_count)

    def shard(self, key: Any) -> RecordStore:
        """The shard that owns ``key``."""
        return self.shards[shard_of(key, self.shard_count)]

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, key: Any) -> bool:
        return key in self.shard(key)

    @property
    def index_epoch(self) -> int:
        """Monotone plan-cache epoch: the sum of the shard epochs."""
        return sum(shard.index_epoch for shard in self.shards)

    @property
    def mutation_count(self) -> int:
        return sum(shard.mutation_count for shard in self.shards)

    @property
    def wal_size_bytes(self) -> int:
        """Total WAL footprint across all shards."""
        return sum(shard.wal_size_bytes for shard in self.shards)

    def get(self, key: Any) -> dict[str, Any]:
        """Record with primary key ``key`` (a copy); raises when absent."""
        return self.shard(key).get(key)

    def keys(self) -> Iterator[Any]:
        """All primary keys, shard by shard (per-shard insertion order)."""
        for shard in self.shards:
            yield from shard.keys()

    def scan(
        self,
        predicate: Callable[[Mapping[str, Any]], bool] | None = None,
        *,
        guard: "Guard | None" = None,
    ) -> Iterator[dict[str, Any]]:
        """Iterate all shards' records in shard order; ``guard`` is charged
        for every record examined, exactly as on a single store."""
        for shard in self.shards:
            yield from shard.scan(predicate, guard=guard)

    # -- single-record mutations ------------------------------------------

    def insert(self, record: Mapping[str, Any]) -> None:
        self.schema.validate(dict(record))
        key = self.schema.primary_key_of(record)
        self.shards[self.shard_for(key)].insert(record)

    def upsert(self, record: Mapping[str, Any]) -> bool:
        self.schema.validate(dict(record))
        key = self.schema.primary_key_of(record)
        return self.shards[self.shard_for(key)].upsert(record)

    def update(self, key: Any, changes: Mapping[str, Any]) -> dict[str, Any]:
        return self.shard(key).update(key, changes)

    def delete(self, key: Any) -> None:
        self.shard(key).delete(key)

    def delete_where(self, predicate: Callable[[Mapping[str, Any]], bool]) -> int:
        return sum(shard.delete_where(predicate) for shard in self.shards)

    def update_where(
        self,
        predicate: Callable[[Mapping[str, Any]], bool],
        changes: Mapping[str, Any],
    ) -> int:
        return sum(shard.update_where(predicate, changes) for shard in self.shards)

    # -- bulk write --------------------------------------------------------

    def put_many(
        self,
        records: Iterable[Mapping[str, Any]],
        *,
        on_conflict: str = "error",
        sync: bool | None = None,
        sync_every: int | None = None,
        progress: Callable[[_progress.ProgressTracker], None] | None = None,
    ) -> int:
        """Bulk-write ``records``: validate once, partition by shard key,
        commit the shard sub-batches in parallel.

        Validation and — for ``on_conflict="error"`` — conflict checks run
        at the facade *before* any shard logs anything, so the single
        store's all-or-nothing contract holds across shards: a bad record
        or duplicate key aborts the whole batch with no shard touched.
        The per-shard commits then take the pre-validated fast path
        (ownership of the partitioned dicts transfers to the shards).

        **Cross-shard partial-write contract**: once the per-shard
        commits begin, the batch is no longer atomic *across* shards —
        each shard's sub-batch commits (or fails) independently, and a
        failure never rolls back sibling shards' committed work.  One
        failing shard re-raises its error unchanged; several raise a
        single :class:`~repro.errors.MultiShardError` naming every
        failed shard, so the caller knows exactly which partitions to
        retry (re-submitting the same records with
        ``on_conflict="replace"`` is idempotent).

        When ``checkpoint_wal_bytes`` is configured, shards whose WAL
        crossed the bound are checkpointed (in parallel) before
        returning, bounding WAL disk through a streaming ingest.
        """
        start = time.perf_counter()
        materialized = [dict(record) for record in records]
        if not materialized:
            return 0
        self.schema.validate_many(materialized)
        pk = self.schema.primary_key
        count = self.shard_count
        if on_conflict == "error":
            batch_keys: set[Any] = set()
            for record in materialized:
                key = record[pk]
                if key in self.shards[shard_of(key, count)] or key in batch_keys:
                    raise DuplicateKeyError(key)
                batch_keys.add(key)
        elif on_conflict != "replace":
            raise StorageError(f"unknown on_conflict mode {on_conflict!r}")

        if count == 1:
            parts: list[list[dict[str, Any]]] = [materialized]
        else:
            parts = [[] for _ in range(count)]
            crc = zlib.crc32
            key_bytes = shard_key_bytes
            for record in materialized:
                parts[crc(key_bytes(record[pk])) % count].append(record)

        def commit(
            shard: RecordStore,
            part: list[dict[str, Any]],
            tracker: _progress.ProgressTracker,
        ) -> int:
            written = shard.put_many(
                part,
                on_conflict=on_conflict,
                sync=sync,
                sync_every=sync_every,
                _prevalidated=True,
            )
            tracker.tick(written)
            return written

        with _progress.start(
            "storage.sharded.put_many",
            total=len(materialized),
            shards=sum(1 for p in parts if p),
        ) as op:
            if progress is not None:
                op.subscribe(progress)
            self._each_shard(
                [
                    (i, lambda s=self.shards[i], p=parts[i]: commit(s, p, op))
                    for i in range(count)
                    if parts[i]
                ]
            )
        for i in range(count):
            if parts[i]:
                self._put_records_counters[i].inc(len(parts[i]))
                self._records_gauges[i].set(len(self.shards[i]))
        _PUT_MANY_COUNT.inc()
        _PUT_MANY_SECONDS.observe(time.perf_counter() - start)
        if self.checkpoint_wal_bytes is not None:
            self.maybe_checkpoint()
        _logging.debug(
            "storage.sharded.put_many",
            records=len(materialized),
            shards=sum(1 for p in parts if p),
        )
        return len(materialized)

    def apply_batch(self, operations: list[dict[str, Any]]) -> None:
        """Apply a mixed put/delete batch, routed per shard.

        Each shard receives (and atomically applies) the sub-batch of
        operations whose keys route to it; sub-batches are applied in
        parallel.  As with :meth:`put_many`, validation runs up front.
        """
        pk = self.schema.primary_key
        count = self.shard_count
        parts: list[list[dict[str, Any]]] = [[] for _ in range(count)]
        for op in operations:
            if op["op"] == "put":
                self.schema.validate(op["record"])
                key = op["record"][pk]
            elif op["op"] == "del":
                key = op["key"]
            else:
                raise StorageError(f"unknown batch op {op.get('op')!r}")
            parts[shard_of(key, count)].append(op)
        self._each_shard(
            [
                (i, lambda s=self.shards[i], p=parts[i]: s.apply_batch(p))
                for i in range(count)
                if parts[i]
            ]
        )
        for i in range(count):
            if parts[i]:
                self._records_gauges[i].set(len(self.shards[i]))

    # -- secondary indexes -------------------------------------------------

    def create_index(
        self, field: str, kind: IndexKind = IndexKind.BTREE, *, order: int = 32
    ) -> None:
        """Declare a secondary index on every shard."""
        for shard in self.shards:
            shard.create_index(field, kind, order=order)

    def create_composite_index(self, fields: Sequence[str], *, order: int = 32) -> str:
        """Declare a composite index on every shard; returns its name."""
        name = ""
        for shard in self.shards:
            name = shard.create_composite_index(fields, order=order)
        return name

    def drop_index(self, field: str) -> None:
        for shard in self.shards:
            shard.drop_index(field)

    def has_index(self, field: str) -> bool:
        return self.shards[0].has_index(field)

    def index_kind(self, field: str) -> IndexKind | None:
        return self.shards[0].index_kind(field)

    @property
    def indexed_fields(self) -> tuple[str, ...]:
        return self.shards[0].indexed_fields

    def composite_indexes(self) -> tuple[tuple[str, ...], ...]:
        return self.shards[0].composite_indexes()

    def index_statistics(self, field: str) -> dict[str, int] | None:
        """Summed per-shard statistics.

        ``distinct_keys`` sums the per-shard distinct counts, so a key
        present in several shards is counted once per shard — an
        overestimate, but a monotone one, which is all the planner's
        relative-selectivity comparison needs.
        """
        totals: dict[str, int] | None = None
        for shard in self.shards:
            stats = shard.index_statistics(field)
            if stats is None:
                return None
            if totals is None:
                totals = dict(stats)
            else:
                for stat_key, value in stats.items():
                    totals[stat_key] = totals.get(stat_key, 0) + value
        return totals

    # -- index-backed reads ------------------------------------------------

    def find_by(self, field: str, value: Any) -> list[dict[str, Any]]:
        """Matching records from every shard, in shard order."""
        out: list[dict[str, Any]] = []
        for shard in self.shards:
            out.extend(shard.find_by(field, value))
        return out

    def range_by(
        self,
        field: str,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[dict[str, Any]]:
        """Range matches from every shard, concatenated in shard order.

        Unlike the single store this is *not* globally field-ordered —
        every consumer that needs order re-sorts (the executor's ORDER BY
        path) or merges (:class:`~repro.query.executor.ShardedQueryEngine`).
        """
        out: list[dict[str, Any]] = []
        for shard in self.shards:
            out.extend(
                shard.range_by(
                    field, low, high, include_low=include_low, include_high=include_high
                )
            )
        return out

    def find_by_composite(
        self, fields: Sequence[str], values: Sequence[Any]
    ) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        for shard in self.shards:
            out.extend(shard.find_by_composite(fields, values))
        return out

    def range_by_composite(
        self,
        fields: Sequence[str],
        prefix: Sequence[Any],
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        for shard in self.shards:
            out.extend(
                shard.range_by_composite(
                    fields,
                    prefix,
                    low,
                    high,
                    include_low=include_low,
                    include_high=include_high,
                )
            )
        return out

    # -- durability --------------------------------------------------------

    def checkpoint(
        self,
        *,
        progress: Callable[[_progress.ProgressTracker], None] | None = None,
    ) -> None:
        """Checkpoint every shard, in parallel.

        Each shard runs its own four-step snapshot/rotate/publish/reclaim
        protocol; a failure in any shard propagates after all have
        settled (the others' checkpoints remain valid — shards are
        independent durability domains).  ``progress`` (when given)
        observes one facade-level tracker aggregating every shard's
        record count — a single bar for the whole fan-out.
        """
        self._checkpoint_shards(range(self.shard_count), progress=progress)

    def maybe_checkpoint(self) -> list[int]:
        """Checkpoint (in parallel) the shards whose WAL footprint is at
        or above ``checkpoint_wal_bytes``; returns their indexes."""
        bound = self.checkpoint_wal_bytes
        if bound is None:
            raise StorageError("maybe_checkpoint needs checkpoint_wal_bytes set")
        due = [
            i
            for i, shard in enumerate(self.shards)
            if shard.wal_size_bytes >= bound
        ]
        if due:
            self._checkpoint_shards(due)
        return due

    def _checkpoint_shards(
        self,
        indexes: Iterable[int],
        progress: Callable[[_progress.ProgressTracker], None] | None = None,
    ) -> None:
        indexes = list(indexes)
        total = sum(len(self.shards[i]) for i in indexes)
        with _progress.start(
            "storage.sharded.checkpoint", total=total, shards=len(indexes)
        ) as agg:
            if progress is not None:
                agg.subscribe(progress)
            # Relay each shard tracker's per-tick deltas into the facade
            # aggregate, so one bar covers the whole parallel fan-out.
            relay_lock = threading.Lock()
            relayed: dict[int, int] = {}

            def relay(tracker: _progress.ProgressTracker, key: int) -> None:
                with relay_lock:
                    delta = tracker.done - relayed.get(key, 0)
                    relayed[key] = tracker.done
                if delta > 0:
                    agg.tick(delta)

            self._each_shard(
                [
                    (
                        i,
                        lambda s=self.shards[i], k=i: s.checkpoint(
                            progress=lambda t, k=k: relay(t, k)
                        ),
                    )
                    for i in indexes
                ]
            )
        for i in indexes:
            self._checkpoint_counters[i].inc()
            self._records_gauges[i].set(len(self.shards[i]))

    # -- fault tolerance ---------------------------------------------------

    def quarantine(self, index: int, reason: str = "operator") -> None:
        """Pull shard ``index`` out of service (persisted; idempotent).

        Partial-mode scatter queries skip it; strict queries and direct
        writes still reach it — quarantine routes *query fan-out*, it is
        not an access-control wall.
        """
        if not 0 <= index < self.shard_count:
            raise StorageError(f"no shard {index} (store has {self.shard_count})")
        self.health.quarantine(index, reason)

    def readmit(self, index: int, *, reopen: bool = False) -> None:
        """Return a quarantined/repairing shard to service (persisted).

        With ``reopen=True`` (disk stores only) the member store is
        closed and rebuilt from its directory first, so a repair that
        rewrote the shard's files (snapshot rollback + WAL replay) is
        actually picked up rather than served from stale in-memory state.
        """
        if not 0 <= index < self.shard_count:
            raise StorageError(f"no shard {index} (store has {self.shard_count})")
        if reopen and self.root is not None:
            self.reopen_shard(index)
        self.health.readmit(index)

    def reopen_shard(self, index: int) -> RecordStore:
        """Close shard ``index`` and reopen it from its directory.

        The re-admission step after a repair: recovery replays whatever
        the repair left on disk (e.g. a full WAL chain after a snapshot
        rollback).  Secondary-index *declarations* live only in the
        snapshot, so a rollback loses them — they are re-declared here by
        mirroring a sibling shard (declarations are uniform across
        shards; the indexes themselves rebuild lazily).
        """
        if self.root is None:
            raise StorageError("reopen_shard needs a disk-backed store")
        self.shards[index].close()
        store = RecordStore(
            self.schema,
            self.shard_path(index),
            sync=self._shard_sync,
            fs=self._shard_fs,
            retry=self._shard_retry,
            shard=index,
            **self._shard_kwargs,
        )
        sibling = next(
            (s for j, s in enumerate(self.shards) if j != index), None
        )
        if sibling is not None:
            for field in sibling.indexed_fields:
                if not store.has_index(field):
                    kind = sibling.index_kind(field)
                    if kind is not None:
                        store.create_index(field, kind)
            declared = set(store.composite_indexes())
            for fields in sibling.composite_indexes():
                if fields not in declared:
                    store.create_composite_index(fields)
        shards = list(self.shards)
        shards[index] = store
        # New tuple identity: ShardedQueryEngine watches this to refresh
        # its per-shard engines.
        self.shards = tuple(shards)
        self._records_gauges[index].set(len(store))
        _logging.info("storage.sharded.reopen", shard=index, records=len(store))
        return store

    # -- parallel helper ---------------------------------------------------

    def _each_shard(self, tasks: list[tuple[int, Callable[[], Any]]]) -> list[Any]:
        """Run one callable per shard, in parallel when there are several.

        The calling thread blocks until every task settles.  Shards are
        independent durability domains, so one shard's failure never
        rolls back another's committed work; a single failing shard
        re-raises its exception unchanged, and when *several* fail the
        caller gets one :class:`~repro.errors.MultiShardError` naming
        every failed shard (instead of the first error hiding the rest).
        Every failure also feeds the shard :attr:`health` machine.
        """
        if len(tasks) <= 1:
            results = []
            for i, fn in tasks:
                try:
                    results.append(fn())
                except BaseException as exc:
                    self.health.record_error(i, exc, source="write")
                    raise
                self.health.record_success(i)
            return results
        pool = self._pool
        if pool is None:
            pool = self._pool = ThreadPoolExecutor(
                max_workers=self.shard_count,
                thread_name_prefix="repro-shard",
            )
        # Workers adopt the caller's trace context: their spans nest
        # under the submitting span and their log lines carry the same
        # trace id, so one bulk write reads as one trace.
        ctx = _tracing.TraceContext.capture()

        def run(fn: Callable[[], Any]) -> Any:
            with ctx.attach():
                return fn()

        futures: list[tuple[int, Future]] = [
            (i, pool.submit(run, fn)) for i, fn in tasks
        ]
        results: list[Any] = []
        failures: dict[int, BaseException] = {}
        for i, future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures[i] = exc
                self.health.record_error(i, exc, source="write")
                _logging.warn(
                    "storage.sharded.shard_failure",
                    shard=i,
                    error=f"{type(exc).__name__}: {exc}",
                )
            else:
                self.health.record_success(i)
        if len(failures) == 1:
            raise next(iter(failures.values()))
        if failures:
            raise MultiShardError(failures) from next(iter(failures.values()))
        return results

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down and close every shard (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

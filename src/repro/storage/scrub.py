"""Background scrubber: rate-limited integrity sweeps with auto-repair.

Silent corruption is only "silent" until a query trips over it.  The
:class:`Scrubber` walks every shard of a
:class:`~repro.storage.sharded.ShardedStore` on a schedule and
CRC-verifies the bytes a future query *would* read:

* every reachable page of the checkpointed B+ tree pages file (deep
  :meth:`~repro.storage.paged_btree.PagedBTree.verify` — CRCs, key
  order, leaf chain, free list), opened read-only beside the live store;
* every sealed WAL segment plus the active log, via the same strict CRC
  scan fsck uses (:meth:`~repro.storage.wal.WriteAheadLog.scan_file`);
* the snapshot manifest itself (parses, references an existing pages
  file).

Findings feed the shard health machine
(:class:`~repro.storage.health.ShardHealthMachine`): a corruption
observation quarantines the shard, pulling it out of partial-mode query
fan-out *before* a user query ever touches the damage.  With
``repair=True`` the scrubber goes one step further and runs the full
self-healing loop per quarantined shard::

    quarantine → start_repair → fsck --repair → re-verify → reopen + readmit

``fsck --repair`` rolls a damaged snapshot back when the WAL chain is
complete from genesis (zero committed-record loss) and trims torn WAL
tails; the post-repair re-verify must come back clean before the shard
is reopened (full WAL replay) and re-admitted.  A repair that does not
verify clean returns the shard to quarantine with the reason recorded.

Scrubbing competes with foreground queries for disk bandwidth, so reads
are metered through a token bucket (``bytes_per_s``; burst capped at one
second of budget).  Page reads are charged per 4 KiB page; WAL files are
charged at file granularity (segments are bounded by the rotation
threshold, so the burst error is bounded too).

The scrubber never mutates shard state on its own: a clean pass records
successes, a dirty pass records errors — the health machine decides.
Only an explicit ``repair=True`` deletes or rewrites files, and only
through fsck's repair path.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.obs import progress as _progress
from repro.storage.health import QUARANTINED
from repro.storage.paged_btree import PagedBTree
from repro.storage.pages import PAGE_SIZE
from repro.storage.sharded import ShardedStore
from repro.storage.wal import WriteAheadLog, sealed_segment_paths

__all__ = ["ScrubReport", "Scrubber", "ShardScrubResult"]

_RUNS = _metrics.counter("storage.scrub.runs")
_PAGES = _metrics.counter("storage.scrub.pages")
_BYTES = _metrics.counter("storage.scrub.bytes")
_CORRUPTIONS = _metrics.counter("storage.scrub.corruptions")
_REPAIRS = _metrics.counter("storage.scrub.repairs")

#: Default scrub bandwidth: gentle enough to hide under a foreground
#: workload, fast enough to cover a few-hundred-MB shard set per cycle.
DEFAULT_BYTES_PER_S = 32 * 1024 * 1024


class _TokenBucket:
    """Byte-metered rate limiter (burst capped at one second of budget)."""

    def __init__(
        self,
        bytes_per_s: float | None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.rate = bytes_per_s if bytes_per_s and bytes_per_s > 0 else None
        self._clock = clock
        self._sleep = sleep
        self._allowance = float(self.rate or 0)
        self._last = clock()

    def charge(self, n: int) -> None:
        if self.rate is None or n <= 0:
            return
        now = self._clock()
        self._allowance = min(
            self.rate, self._allowance + (now - self._last) * self.rate
        )
        self._last = now
        self._allowance -= n
        if self._allowance < 0:
            self._sleep(-self._allowance / self.rate)


@dataclass
class ShardScrubResult:
    """Outcome of scrubbing one shard's on-disk state."""

    shard: int
    pages: int = 0
    wal_files: int = 0
    bytes: int = 0
    errors: list[str] = field(default_factory=list)
    #: The exceptions behind ``errors`` — fed to the health machine so
    #: corruption classifies as corruption, not as a generic I/O error.
    exceptions: list[BaseException] = field(default_factory=list)
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "clean": self.clean,
            "pages": self.pages,
            "wal_files": self.wal_files,
            "bytes": self.bytes,
            "errors": list(self.errors),
            "repaired": self.repaired,
        }


@dataclass
class ScrubReport:
    """One full sweep over every shard."""

    shards: list[ShardScrubResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.shards)

    @property
    def corrupt_shards(self) -> tuple[int, ...]:
        return tuple(r.shard for r in self.shards if not r.clean)

    def to_dict(self) -> dict[str, Any]:
        return {
            "clean": self.clean,
            "elapsed_s": round(self.elapsed_s, 6),
            "shards": [r.to_dict() for r in self.shards],
        }

    def render(self) -> str:
        lines = []
        for r in self.shards:
            status = "clean" if r.clean else "CORRUPT"
            if r.repaired:
                status = "repaired"
            lines.append(
                f"shard {r.shard:2d}: {status}  "
                f"({r.pages} pages, {r.wal_files} WAL files, {r.bytes} bytes)"
            )
            for err in r.errors:
                lines.append(f"  ! {err}")
        verdict = "scrub clean" if self.clean else (
            f"scrub found damage on shard(s) "
            f"{', '.join(str(s) for s in self.corrupt_shards)}"
        )
        lines.append(f"{verdict} in {self.elapsed_s:.2f}s")
        return "\n".join(lines)


class Scrubber:
    """Periodic integrity sweeper for a :class:`ShardedStore`.

    Parameters
    ----------
    store:
        The sharded store to watch.  Must be disk-backed; an in-memory
        store has no on-disk state to scrub (``run_once`` returns an
        empty report).
    bytes_per_s:
        Token-bucket read budget; ``None`` disables metering (tests,
        one-shot CLI runs).
    pool_pages:
        Buffer-pool size for the read-only page walks — small on
        purpose, the scrubber should not evict the live store's cache
        favorites by proxy of the OS page cache.
    """

    def __init__(
        self,
        store: ShardedStore,
        *,
        bytes_per_s: float | None = DEFAULT_BYTES_PER_S,
        pool_pages: int = 8,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.store = store
        self.bytes_per_s = bytes_per_s
        self.pool_pages = pool_pages
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._last_report: ScrubReport | None = None
        self._last_finished: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- one sweep ---------------------------------------------------------

    def run_once(self, *, repair: bool = False) -> ScrubReport:
        """Scrub every shard; optionally run the self-healing loop.

        Feeds every finding into the store's health machine.  With
        ``repair=True``, any shard that is quarantined afterwards (from
        this sweep's findings *or* from an earlier query-time error)
        gets the quarantine → fsck → re-verify → readmit treatment.
        """
        _RUNS.inc()
        started = self._clock()
        report = ScrubReport()
        health = self.store.health
        bucket = _TokenBucket(
            self.bytes_per_s, clock=self._clock, sleep=self._sleep
        )
        indexes = range(self.store.shard_count)
        tracker = _progress.start(
            "storage.scrub",
            total=self._estimate_pages() if self.store.root is not None else None,
            shards=self.store.shard_count,
            repair=repair,
        )
        try:
            if self.store.root is None:
                return report
            for index in indexes:
                result = self._scrub_shard(index, bucket, tracker)
                report.shards.append(result)
                if result.clean:
                    if health.is_serving(index):
                        health.record_success(index)
                else:
                    _CORRUPTIONS.inc(len(result.errors))
                    _logging.warn(
                        "storage.scrub.corruption",
                        shard=index,
                        errors=result.errors,
                    )
                    for exc in result.exceptions:
                        health.record_error(index, exc, source="scrub")
                    if not result.exceptions:
                        health.quarantine(index, f"[scrub] {result.errors[0]}")
                if repair and health.state(index) == QUARANTINED:
                    result.repaired = self._repair_shard(
                        index, bucket, tracker
                    )
            report.elapsed_s = self._clock() - started
            _logging.info(
                "storage.scrub.done",
                clean=report.clean,
                corrupt_shards=list(report.corrupt_shards),
                elapsed_s=round(report.elapsed_s, 3),
            )
            with self._lock:
                self._last_report = report
                self._last_finished = self._clock()
            return report
        finally:
            tracker.finish(ok=report.clean)

    def last_verdict(self) -> dict[str, Any] | None:
        """The most recent report plus its age — ``/healthz``'s source."""
        with self._lock:
            if self._last_report is None or self._last_finished is None:
                return None
            doc = self._last_report.to_dict()
            doc["age_s"] = round(self._clock() - self._last_finished, 3)
            return doc

    # -- repair orchestration ----------------------------------------------

    def _repair_shard(
        self, index: int, bucket: _TokenBucket, tracker: Any
    ) -> bool:
        """quarantine → fsck --repair → re-verify → reopen + readmit."""
        from repro.storage.fsck import fsck  # local import: fsck imports storage

        health = self.store.health
        directory = self.store.shard_path(index)
        health.start_repair(index)
        _logging.info("storage.scrub.repair_start", shard=index)
        try:
            fsck_report = fsck(directory, repair=True)
        except Exception as exc:  # fsck itself blew up — stay quarantined
            health.repair_failed(index, f"fsck raised {type(exc).__name__}: {exc}")
            return False
        if not fsck_report.ok:
            health.repair_failed(
                index, f"fsck --repair exited {fsck_report.exit_code()}"
            )
            return False
        recheck = self._scrub_shard(index, bucket, tracker)
        if not recheck.clean:
            health.repair_failed(
                index, f"post-repair scrub still dirty: {recheck.errors[0]}"
            )
            return False
        # Reopen replays the repaired on-disk state (full WAL chain after
        # a snapshot rollback) and readmit returns the shard to service.
        self.store.readmit(index, reopen=True)
        _REPAIRS.inc()
        _logging.info("storage.scrub.repaired", shard=index)
        return True

    # -- shard walk --------------------------------------------------------

    def _scrub_shard(
        self, index: int, bucket: _TokenBucket, tracker: Any
    ) -> ShardScrubResult:
        result = ShardScrubResult(shard=index)
        directory = self.store.shard_path(index)
        if not directory.is_dir():
            return result  # never checkpointed / fresh shard: nothing on disk
        self._scrub_snapshot(directory, result, bucket, tracker)
        self._scrub_wal(directory, result, bucket)
        return result

    def _scrub_snapshot(
        self,
        directory: Path,
        result: ShardScrubResult,
        bucket: _TokenBucket,
        tracker: Any,
    ) -> None:
        snapshot = directory / "snapshot.json"
        if not snapshot.exists():
            return
        try:
            raw = snapshot.read_bytes()
        except OSError as exc:
            result.errors.append(f"snapshot.json unreadable: {exc}")
            result.exceptions.append(exc)
            return
        self._charge(bucket, result, len(raw))
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            result.errors.append(f"snapshot.json unparsable: {exc}")
            result.exceptions.append(exc)
            return
        pages_name = doc.get("pages") if isinstance(doc, dict) else None
        if not isinstance(pages_name, str) or not pages_name:
            return  # inline (v1/v2) snapshot: the JSON parse was the check
        pages_path = directory / pages_name
        if not pages_path.exists():
            msg = f"snapshot references missing pages file {pages_name}"
            result.errors.append(msg)
            return

        def on_page(n: int) -> None:
            result.pages += n
            _PAGES.inc(n)
            tracker.tick(n)
            self._charge(bucket, result, n * PAGE_SIZE)

        try:
            tree = PagedBTree(pages_path, pool_pages=self.pool_pages)
        except Exception as exc:
            result.errors.append(f"{pages_name}: {exc}")
            result.exceptions.append(exc)
            return
        try:
            tree.verify(on_page=on_page)
        except Exception as exc:
            result.errors.append(f"{pages_name}: {exc}")
            result.exceptions.append(exc)
        finally:
            tree.close()

    def _scrub_wal(
        self, directory: Path, result: ShardScrubResult, bucket: _TokenBucket
    ) -> None:
        wal_base = directory / "store.wal"
        paths = [path for _seal, path in sealed_segment_paths(wal_base)]
        if wal_base.exists():
            paths.append(wal_base)
        for path in paths:
            try:
                size = path.stat().st_size
            except OSError:
                continue  # reclaimed between listing and stat
            self._charge(bucket, result, size)
            result.wal_files += 1
            scan = WriteAheadLog.scan_file(path, strict=False)
            if not scan.clean:
                result.errors.append(
                    f"{path.name}: CRC/framing damage at offset {scan.valid_bytes}"
                )

    def _charge(
        self, bucket: _TokenBucket, result: ShardScrubResult, n: int
    ) -> None:
        result.bytes += n
        _BYTES.inc(n)
        bucket.charge(n)

    def _estimate_pages(self) -> int | None:
        """Cheap page-count estimate for the progress tracker's total."""
        total = 0
        for index in range(self.store.shard_count):
            directory = self.store.shard_path(index)
            if not directory.is_dir():
                continue
            for path in directory.glob("store.pages.*"):
                try:
                    total += path.stat().st_size // PAGE_SIZE
                except OSError:
                    pass
        return total or None

    # -- background thread -------------------------------------------------

    def start(self, interval_s: float = 300.0, *, repair: bool = False) -> None:
        """Run :meth:`run_once` every ``interval_s`` until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("scrubber already started")
        self._stop.clear()

        def loop() -> None:
            # First sweep runs immediately: a freshly started scrubber
            # should not leave /healthz verdict-less for a whole interval.
            while True:
                try:
                    self.run_once(repair=repair)
                except Exception as exc:  # keep the cycle alive
                    _logging.error(
                        "storage.scrub.cycle_error",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if self._stop.wait(interval_s):
                    return

        self._thread = threading.Thread(
            target=loop, name="repro-scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop (waits for an in-flight sweep)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

"""Per-shard health state machine: ``healthy → degraded → quarantined →
repairing → healthy``.

A :class:`ShardHealthMachine` tracks one state per shard of a
:class:`~repro.storage.sharded.ShardedStore` and drives it from
*classified* errors:

* **corruption** (:class:`~repro.storage.pages.PageCorruptionError`,
  :class:`~repro.errors.CorruptLogError`) — the shard's on-disk state is
  damaged; serving it risks wrong answers, so one observation quarantines
  immediately;
* **transient** (``EINTR``/``EAGAIN``/``EWOULDBLOCK`` or an exception
  flagged ``transient``, the same classification
  :func:`repro.resilience.retry.is_transient` uses) — counted against the
  error-rate window but never quarantines on its own;
* **io** — any other I/O or storage failure; a shard whose recent error
  rate crosses ``degraded_threshold`` degrades, and past
  ``quarantine_threshold`` it is quarantined.

The error rate is measured over a sliding window of the last
``window`` outcomes per shard, and thresholds only engage once
``min_events`` outcomes have been seen — a single hiccup on a cold shard
is not a trend.  A degraded shard heals itself: ``recovery_successes``
consecutive successes return it to ``healthy``.  Quarantine is sticky —
only an explicit :meth:`readmit` (after repair) or operator action
clears it.

States map to the ``storage.shard.health`` gauge (one series per shard
label) as ``0=healthy 1=degraded 2=quarantined 3=repairing``, and the
machine serializes to/from the shard manifest (``shards.json``) so a
quarantined shard *stays* quarantined across a process restart — a
reopened store must not silently serve a shard that was pulled for
corruption.  An interrupted repair (process died mid-repair) loads back
as ``quarantined``: the repair must be re-run, not assumed.

The machine is thread-safe; scatter-gather workers and the background
scrubber feed it concurrently.  ``on_change`` (when set) fires outside
the per-call fast path whenever a shard's *state* changes — the sharded
store uses it to persist the new state into the manifest.
"""

from __future__ import annotations

import errno
import threading
from collections import deque
from typing import Any, Callable, Mapping

from repro.obs import logging as _logging
from repro.obs import metrics as _metrics

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "REPAIRING",
    "HEALTH_LEVELS",
    "ShardHealthMachine",
    "classify_error",
]

#: The four states, as stable strings (manifest + JSON surfaces).
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"
REPAIRING = "repairing"

#: State → numeric level exported on the ``storage.shard.health`` gauge.
HEALTH_LEVELS: dict[str, int] = {
    HEALTHY: 0,
    DEGRADED: 1,
    QUARANTINED: 2,
    REPAIRING: 3,
}

_STATES = frozenset(HEALTH_LEVELS)

#: OS error numbers that mean "try again" rather than "broken"
#: (mirrors :data:`repro.resilience.retry._TRANSIENT_ERRNOS`; kept local
#: so the storage layer never imports the resilience layer).
_TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.EWOULDBLOCK})

_TRANSITIONS = _metrics.counter("storage.shard.health.transitions")


def classify_error(exc: BaseException) -> str:
    """``"corruption"``, ``"transient"``, or ``"io"`` for ``exc``.

    Imported lazily to keep this module importable without dragging the
    paged-storage stack in (pages ← bufferpool ← …).
    """
    from repro.errors import CorruptLogError
    from repro.storage.pages import PageCorruptionError

    if isinstance(exc, (PageCorruptionError, CorruptLogError)):
        return "corruption"
    if getattr(exc, "transient", False):
        return "transient"
    if isinstance(exc, OSError) and exc.errno in _TRANSIENT_ERRNOS:
        return "transient"
    return "io"


class _ShardState:
    """Mutable per-shard record; guarded by the machine's lock."""

    __slots__ = (
        "state",
        "reason",
        "outcomes",
        "errors",
        "successes",
        "consecutive_ok",
    )

    def __init__(self) -> None:
        self.state = HEALTHY
        self.reason = ""
        #: Sliding window of recent outcomes (True = error).
        self.outcomes: deque[bool] = deque()
        self.errors = 0  # errors currently inside the window
        self.successes = 0  # lifetime counters, for introspection
        self.consecutive_ok = 0


class ShardHealthMachine:
    """Health states for ``shard_count`` shards, driven by outcomes.

    Parameters
    ----------
    shard_count:
        Number of shards tracked (indexes ``0 .. shard_count-1``).
    window:
        Sliding-window length (outcomes per shard) the error rate is
        measured over.
    min_events:
        Outcomes required in the window before rate thresholds engage.
    degraded_threshold / quarantine_threshold:
        Windowed error-rate bounds for ``healthy → degraded`` and
        ``degraded → quarantined``.
    recovery_successes:
        Consecutive successes that heal ``degraded → healthy``.
    on_change:
        ``fn(shard, old_state, new_state, reason)`` called (under the
        machine lock) on every state transition — the persistence hook.

    >>> machine = ShardHealthMachine(2)
    >>> machine.state(0)
    'healthy'
    >>> machine.quarantine(0, "operator")
    >>> machine.state(0), machine.is_serving(0)
    ('quarantined', False)
    """

    def __init__(
        self,
        shard_count: int,
        *,
        window: int = 20,
        min_events: int = 5,
        degraded_threshold: float = 0.3,
        quarantine_threshold: float = 0.7,
        recovery_successes: int = 5,
        on_change: Callable[[int, str, str, str], None] | None = None,
    ):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if not 0.0 < degraded_threshold <= quarantine_threshold <= 1.0:
            raise ValueError(
                "need 0 < degraded_threshold <= quarantine_threshold <= 1"
            )
        self.shard_count = shard_count
        self.window = window
        self.min_events = min_events
        self.degraded_threshold = degraded_threshold
        self.quarantine_threshold = quarantine_threshold
        self.recovery_successes = recovery_successes
        self.on_change = on_change
        # Reentrant: on_change handlers (manifest persistence) call back
        # into to_dict() while the transition still holds the lock.
        self._lock = threading.RLock()
        self._shards = tuple(_ShardState() for _ in range(shard_count))
        self._gauges = tuple(
            _metrics.gauge("storage.shard.health", shard=str(i))
            for i in range(shard_count)
        )
        for gauge in self._gauges:
            gauge.set(HEALTH_LEVELS[HEALTHY])

    # -- reads -------------------------------------------------------------

    def state(self, shard: int) -> str:
        return self._shards[shard].state

    def reason(self, shard: int) -> str:
        return self._shards[shard].reason

    def is_serving(self, shard: int) -> bool:
        """Whether queries should fan out to ``shard`` (healthy or
        degraded — quarantined/repairing shards are skipped in partial
        mode and poison strict queries only if actually touched)."""
        return self._shards[shard].state in (HEALTHY, DEGRADED)

    def quarantined_shards(self) -> tuple[int, ...]:
        """Indexes currently quarantined or under repair."""
        return tuple(
            i
            for i, s in enumerate(self._shards)
            if s.state in (QUARANTINED, REPAIRING)
        )

    def rows(self) -> list[dict[str, Any]]:
        """One JSON-ready row per shard (``/healthz`` / ``/statusz``)."""
        with self._lock:
            return [
                {
                    "shard": i,
                    "state": s.state,
                    "reason": s.reason,
                    "window_errors": s.errors,
                    "window_events": len(s.outcomes),
                    "successes": s.successes,
                }
                for i, s in enumerate(self._shards)
            ]

    # -- outcome feed ------------------------------------------------------

    def record_success(self, shard: int) -> str:
        """Note a successful shard operation; may heal ``degraded``."""
        s = self._shards[shard]
        # Fast path: a healthy shard with an empty window pays two
        # attribute reads and no lock.
        if s.state == HEALTHY and not s.outcomes:
            s.successes += 1
            return HEALTHY
        with self._lock:
            s.successes += 1
            s.consecutive_ok += 1
            self._push(s, error=False)
            if (
                s.state == DEGRADED
                and s.consecutive_ok >= self.recovery_successes
            ):
                self._transition(shard, HEALTHY, "recovered")
            return s.state

    def record_error(self, shard: int, exc: BaseException, *, source: str = "") -> str:
        """Feed a classified failure; returns the (possibly new) state.

        Corruption quarantines immediately; transient and io errors are
        windowed.  Quarantined/repairing shards stay put — the error is
        counted but cannot transition further.
        """
        kind = classify_error(exc)
        with self._lock:
            s = self._shards[shard]
            s.consecutive_ok = 0
            self._push(s, error=True)
            reason = f"{kind}: {type(exc).__name__}: {exc}"
            if source:
                reason = f"[{source}] {reason}"
            if s.state in (QUARANTINED, REPAIRING):
                return s.state
            if kind == "corruption":
                self._transition(shard, QUARANTINED, reason)
                return s.state
            if len(s.outcomes) >= self.min_events:
                rate = s.errors / len(s.outcomes)
                if rate >= self.quarantine_threshold and s.state == DEGRADED:
                    self._transition(shard, QUARANTINED, reason)
                elif rate >= self.degraded_threshold and s.state == HEALTHY:
                    self._transition(shard, DEGRADED, reason)
            return s.state

    # -- operator / repair verbs ------------------------------------------

    def quarantine(self, shard: int, reason: str = "operator") -> None:
        """Force ``shard`` out of service (idempotent)."""
        with self._lock:
            if self._shards[shard].state != QUARANTINED:
                self._transition(shard, QUARANTINED, reason)

    def start_repair(self, shard: int) -> None:
        """Mark a quarantined shard as under repair."""
        with self._lock:
            state = self._shards[shard].state
            if state != QUARANTINED:
                raise ValueError(
                    f"shard {shard} is {state}, not quarantined; cannot repair"
                )
            self._transition(shard, REPAIRING, "repair started")

    def repair_failed(self, shard: int, reason: str) -> None:
        """Return a repairing shard to quarantine (repair did not stick)."""
        with self._lock:
            if self._shards[shard].state == REPAIRING:
                self._transition(shard, QUARANTINED, reason)

    def readmit(self, shard: int, reason: str = "readmitted") -> None:
        """Return a quarantined/repairing shard to service, with a clean
        window (its pre-quarantine error history is about state that no
        longer exists)."""
        with self._lock:
            s = self._shards[shard]
            s.outcomes.clear()
            s.errors = 0
            s.consecutive_ok = 0
            if s.state != HEALTHY:
                self._transition(shard, HEALTHY, reason)

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Manifest-ready snapshot: only non-healthy shards are recorded."""
        with self._lock:
            return {
                str(i): {"state": s.state, "reason": s.reason}
                for i, s in enumerate(self._shards)
                if s.state != HEALTHY
            }

    def load(self, doc: Mapping[str, Any] | None) -> None:
        """Restore persisted states (from the shard manifest).

        Unknown shards/states are ignored; a persisted ``repairing``
        loads as ``quarantined`` — the repair was interrupted and must be
        re-run before the shard serves again.
        """
        if not doc:
            return
        with self._lock:
            for key, entry in doc.items():
                try:
                    shard = int(key)
                except (TypeError, ValueError):
                    continue
                if not 0 <= shard < self.shard_count:
                    continue
                state = entry.get("state") if isinstance(entry, Mapping) else None
                if state not in _STATES:
                    continue
                if state == REPAIRING:
                    state = QUARANTINED
                if state != self._shards[shard].state:
                    reason = ""
                    if isinstance(entry, Mapping):
                        reason = str(entry.get("reason", ""))
                    self._transition(shard, state, reason or "persisted")

    # -- internals ---------------------------------------------------------

    def _push(self, s: _ShardState, *, error: bool) -> None:
        s.outcomes.append(error)
        if error:
            s.errors += 1
        if len(s.outcomes) > self.window:
            if s.outcomes.popleft():
                s.errors -= 1

    def _transition(self, shard: int, new_state: str, reason: str) -> None:
        s = self._shards[shard]
        old = s.state
        s.state = new_state
        s.reason = reason
        s.consecutive_ok = 0
        self._gauges[shard].set(HEALTH_LEVELS[new_state])
        _TRANSITIONS.inc()
        _logging.info(
            "storage.shard.health.transition",
            shard=shard,
            old=old,
            new=new_state,
            reason=reason,
        )
        if self.on_change is not None:
            self.on_change(shard, old, new_state, reason)

"""Embedded record store: WAL, indexes, snapshots, transactions.

The publisher-side substrate: publication records live in a single-writer
embedded store with

* an append-only, CRC-framed write-ahead log (:mod:`repro.storage.wal`),
* an order-configurable B-tree for range-scannable secondary indexes
  (:mod:`repro.storage.btree`),
* a hash index for point lookups (:mod:`repro.storage.hashindex`),
* snapshot + log-compaction durability (:mod:`repro.storage.store`), and
* buffered transactions with rollback (:mod:`repro.storage.transactions`).

Records are plain ``dict`` values validated against a light
:class:`~repro.storage.schema.Schema`.
"""

from repro.storage.schema import Field, FieldType, Schema
from repro.storage.wal import LogEntry, WriteAheadLog
from repro.storage.btree import BTree
from repro.storage.hashindex import HashIndex
from repro.storage.store import IndexKind, RecordStore
from repro.storage.transactions import Transaction

__all__ = [
    "Field",
    "FieldType",
    "Schema",
    "LogEntry",
    "WriteAheadLog",
    "BTree",
    "HashIndex",
    "IndexKind",
    "RecordStore",
    "Transaction",
]

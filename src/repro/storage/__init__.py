"""Embedded record store: WAL, indexes, snapshots, transactions.

The publisher-side substrate: publication records live in a single-writer
embedded store with

* an append-only, CRC-framed write-ahead log (:mod:`repro.storage.wal`),
* an order-configurable in-memory B-tree for range-scannable secondary
  indexes (:mod:`repro.storage.btree`),
* a paged on-disk B+ tree — 4 KiB struct-packed pages, free-list, LRU
  buffer pool with pin counts — serving checkpointed records
  read-through so the working set, not the dataset, must fit in RAM
  (:mod:`repro.storage.pages`, :mod:`repro.storage.bufferpool`,
  :mod:`repro.storage.paged_btree`, :mod:`repro.storage.paged_store`),
* a hash index for point lookups (:mod:`repro.storage.hashindex`),
* checkpoint/rotation durability with verified snapshots
  (:mod:`repro.storage.store`),
* buffered transactions with rollback (:mod:`repro.storage.transactions`),
* offline integrity checking and repair (:mod:`repro.storage.fsck`),
* per-shard health tracking and a self-healing background scrubber
  (:mod:`repro.storage.health`, :mod:`repro.storage.scrub`), and
* a fault-injecting filesystem shim for crash testing
  (:mod:`repro.storage.faultfs`).

Records are plain ``dict`` values validated against a light
:class:`~repro.storage.schema.Schema`.
"""

from repro.storage.schema import Field, FieldType, Schema
from repro.storage.wal import ChainScan, LogEntry, SegmentScan, WriteAheadLog
from repro.storage.btree import BTree
from repro.storage.bufferpool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.hashindex import HashIndex
from repro.storage.paged_btree import PagedBTree
from repro.storage.paged_store import PagedRecordMap
from repro.storage.pages import PAGE_SIZE, PageCorruptionError, PageFile
from repro.storage.store import DATA_FORMATS, IndexKind, RecordStore, records_checksum
from repro.storage.sharded import SHARD_MANIFEST, ShardedStore, shard_key_bytes, shard_of
from repro.storage.transactions import Transaction
from repro.storage.faultfs import (
    REAL_FS,
    FaultFS,
    FileSystem,
    InjectedFault,
    TransientInjectedFault,
)
from repro.storage.fsck import (
    FsckIssue,
    FsckReport,
    ShardedFsckReport,
    fsck,
    fsck_sharded,
    is_sharded_root,
)
from repro.storage.health import (
    DEGRADED,
    HEALTH_LEVELS,
    HEALTHY,
    QUARANTINED,
    REPAIRING,
    ShardHealthMachine,
    classify_error,
)
from repro.storage.scrub import ScrubReport, Scrubber, ShardScrubResult

__all__ = [
    "Field",
    "FieldType",
    "Schema",
    "LogEntry",
    "SegmentScan",
    "ChainScan",
    "WriteAheadLog",
    "BTree",
    "BufferPool",
    "DEFAULT_POOL_PAGES",
    "HashIndex",
    "IndexKind",
    "PAGE_SIZE",
    "PageCorruptionError",
    "PageFile",
    "PagedBTree",
    "PagedRecordMap",
    "DATA_FORMATS",
    "RecordStore",
    "records_checksum",
    "ShardedStore",
    "SHARD_MANIFEST",
    "shard_key_bytes",
    "shard_of",
    "Transaction",
    "FileSystem",
    "FaultFS",
    "REAL_FS",
    "InjectedFault",
    "TransientInjectedFault",
    "fsck",
    "fsck_sharded",
    "is_sharded_root",
    "FsckIssue",
    "FsckReport",
    "ShardedFsckReport",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "REPAIRING",
    "HEALTH_LEVELS",
    "ShardHealthMachine",
    "classify_error",
    "Scrubber",
    "ScrubReport",
    "ShardScrubResult",
]

"""The embedded record store.

A :class:`RecordStore` owns one table of schema-validated ``dict`` records,
durably backed (when given a directory) by a snapshot file plus a
write-ahead log:

* every mutation first lands in the WAL, then in memory — crash recovery is
  "load snapshot, replay surviving WAL segments in order";
* :meth:`RecordStore.checkpoint` writes the full state atomically (tmp
  file + read-back verification + rename + fsync), records which WAL
  segments it covers, and deletes them — bounding WAL disk usage
  (:meth:`RecordStore.snapshot` is a compatibility alias);
* secondary indexes (B-tree or hash) are maintained eagerly on every write
  and can be declared over scalar fields or string-list fields (each list
  element is indexed).

The store is single-writer by design; concurrency control is out of scope
for the artifact being reproduced.

Durability contract: *records* are durable from the moment their WAL append
returns; *index declarations* become durable at the next
:meth:`RecordStore.checkpoint` (they are schema-level metadata, cheap to
re-declare, and keeping them out of the WAL keeps every log entry a pure
data operation).

Crash safety is testable, not asserted: all durability-relevant file I/O
routes through a :mod:`repro.storage.faultfs` facade, ``tests/crash/``
drives a failpoint × operation crash matrix through it, and
:mod:`repro.storage.fsck` (CLI: ``repro fsck``) verifies a store
directory offline — CRCs, segment chains, snapshot manifests — and can
repair recoverable tail damage.  The on-disk format and the recovery
procedure are specified in ``docs/storage_format.md``.

Bulk ingestion takes a fast path: :meth:`RecordStore.put_many` validates
every record up front, group-commits the whole batch to the WAL (one
buffered write, one fsync when syncing), and then maintains each secondary
index with one sorted batched update instead of per-record top-down
inserts.  :meth:`RecordStore.apply_batch` and recovery replay route pure
put runs through the same path.

Observability: reads and writes report to the default metrics registry
(``storage.store.get.count``, ``storage.store.put.count``,
``storage.store.delete.count``, ``storage.store.scan.count`` /
``storage.store.scan.records``, ``storage.store.find_by.count``,
``storage.store.range_by.count``); bulk writes additionally report
``storage.store.put_many.count`` / ``storage.store.put_many.records``.
Checkpoints report ``storage.checkpoint.count`` /
``storage.checkpoint.segments_removed`` /
``storage.checkpoint.bytes_reclaimed`` and land their latency in
``storage.checkpoint.seconds``; open-time recovery reports
``storage.recovery.count`` / ``storage.recovery.segments_replayed`` /
``storage.recovery.entries_replayed`` /
``storage.recovery.torn_bytes_dropped`` /
``storage.recovery.stale_segments_skipped`` and times itself in
``storage.recovery.seconds``.  WAL-level metrics (append count/bytes,
flush latency, group commits, rotations) are reported by
:mod:`repro.storage.wal` itself.  See ``docs/observability.md``.
"""

from __future__ import annotations

import contextlib
import enum
import gc
import json
import threading
import zlib
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.deadline import Guard

from repro.errors import (
    DuplicateKeyError,
    RecordNotFoundError,
    StorageError,
    ValidationError,
)
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.obs import progress as _progress
from repro.obs import workload as _workload
from repro.storage import faultfs as _faultfs
from repro.storage.btree import BTree
from repro.storage.bufferpool import DEFAULT_POOL_PAGES
from repro.storage.hashindex import HashIndex
from repro.storage.paged_btree import PagedBTree
from repro.storage.paged_store import (
    PagedRecordMap,
    StreamingChecksum,
    encode_record,
)
from repro.storage.schema import FieldType, Schema
from repro.resilience.retry import RetryBudget, RetryPolicy
from repro.storage.wal import WriteAheadLog

#: Current snapshot formats.  Version 2 added the manifest fields
#: (``wal_seal``, ``record_count``, ``checksum``); version-1 snapshots
#: (no manifest, single-file WAL) still load.  Version 3 is the *paged*
#: manifest: instead of an inline ``records`` array it references a
#: ``store.pages.NNNNNN`` B+ tree file holding the records, so recovery
#: opens read-through instead of loading everything.
_SNAPSHOT_VERSION = 2
_PAGED_SNAPSHOT_VERSION = 3
_SUPPORTED_SNAPSHOT_VERSIONS = (1, 2, 3)

#: Accepted ``data_format`` values: what :meth:`RecordStore.checkpoint`
#: writes.  Recovery auto-detects the on-disk format from the manifest,
#: so either setting opens either kind of directory — the flag controls
#: the *next* checkpoint, which is how migrations run in both
#: directions.
DATA_FORMATS = ("memory", "paged")

_GET_COUNT = _metrics.counter("storage.store.get.count")
_PUT_COUNT = _metrics.counter("storage.store.put.count")
_DELETE_COUNT = _metrics.counter("storage.store.delete.count")
_SCAN_COUNT = _metrics.counter("storage.store.scan.count")
_SCAN_RECORDS = _metrics.counter("storage.store.scan.records")
_FIND_BY_COUNT = _metrics.counter("storage.store.find_by.count")
_RANGE_BY_COUNT = _metrics.counter("storage.store.range_by.count")
_PUT_MANY_COUNT = _metrics.counter("storage.store.put_many.count")
_PUT_MANY_RECORDS = _metrics.counter("storage.store.put_many.records")
_CHECKPOINT_COUNT = _metrics.counter("storage.checkpoint.count")
_CHECKPOINT_SEGMENTS_REMOVED = _metrics.counter("storage.checkpoint.segments_removed")
_CHECKPOINT_BYTES_RECLAIMED = _metrics.counter("storage.checkpoint.bytes_reclaimed")
_RECOVERY_COUNT = _metrics.counter("storage.recovery.count")
_RECOVERY_SEGMENTS = _metrics.counter("storage.recovery.segments_replayed")
_RECOVERY_ENTRIES = _metrics.counter("storage.recovery.entries_replayed")
_RECOVERY_TORN_BYTES = _metrics.counter("storage.recovery.torn_bytes_dropped")
_RECOVERY_STALE_SEGMENTS = _metrics.counter("storage.recovery.stale_segments_skipped")

#: Key-usage histograms (repro top / workload-report skew data).  Handle
#: cached at import time like the metric series above; every recording
#: call starts with the table's own enabled-flag check.
_KEY_USAGE = _workload.get_default_key_usage()
# Pre-bound for the two hottest probe sites (find_by / range_by): one
# global load per probe instead of a global load plus a method bind.
_KU_RECORD = _KEY_USAGE.record


def _range_label(low: Any, high: Any) -> str:
    """One histogram key naming a range probe's bounds, not its keys.

    A range scan touching thousands of keys records a single
    ``[low..high]`` descriptor — per-key counting on ranges would turn a
    cheap index walk into a per-row accounting loop.  Exact per-key
    distributions come from equality probes and from the offline
    ``repro workload-report`` pass.
    """
    lo = "-inf" if low is None else low
    hi = "+inf" if high is None else high
    return f"[{lo}..{hi}]"


# Bulk operations pause the cyclic garbage collector: a 100k-record batch
# allocates that many long-lived dicts, and the generational collector
# otherwise rescans the growing survivor set several times mid-batch —
# measured at ~15-20% of put_many wall time at 100k records with zero
# garbage found (the store holds references to everything allocated).
# The pause nests (sharded stores commit several shard batches at once,
# possibly from worker threads) via a depth counter under a lock, and the
# collector is re-enabled only by the outermost exit — and only if it was
# enabled when the outermost pause began.
_GC_PAUSE_LOCK = threading.Lock()
_GC_PAUSE_DEPTH = 0
_GC_PAUSE_REENABLE = False


@contextlib.contextmanager
def _gc_paused() -> Iterator[None]:
    global _GC_PAUSE_DEPTH, _GC_PAUSE_REENABLE
    with _GC_PAUSE_LOCK:
        _GC_PAUSE_DEPTH += 1
        if _GC_PAUSE_DEPTH == 1:
            _GC_PAUSE_REENABLE = gc.isenabled()
            if _GC_PAUSE_REENABLE:
                gc.disable()
    try:
        yield
    finally:
        with _GC_PAUSE_LOCK:
            _GC_PAUSE_DEPTH -= 1
            if _GC_PAUSE_DEPTH == 0 and _GC_PAUSE_REENABLE:
                gc.enable()


def records_checksum(records: Sequence[Mapping[str, Any]]) -> str:
    """CRC-32 (hex) over the canonical JSON of ``records``.

    Canonical = sorted keys, compact separators, no ASCII escaping — the
    same bytes whoever computes it, so the snapshot writer, recovery, and
    ``repro fsck`` all agree.
    """
    canonical = json.dumps(
        list(records), sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    return f"{zlib.crc32(canonical) & 0xFFFFFFFF:08x}"


class IndexKind(enum.Enum):
    """Secondary index implementations available to :meth:`create_index`."""

    BTREE = "btree"
    HASH = "hash"


#: Separator joining the field names of a composite index into its name.
COMPOSITE_SEPARATOR = "+"


class _TailType:
    """Sentinel comparing greater than every ordinary value.

    Used to build upper bounds over composite-key tuples without knowing
    the component types: ``(95, 600, _TAIL)`` sits just above every real
    ``(95, 600, …)`` key.
    """

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return False

    def __le__(self, other: object) -> bool:
        return self is other

    def __gt__(self, other: object) -> bool:
        return self is not other

    def __ge__(self, other: object) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<tail>"


_TAIL = _TailType()


@dataclass
class _SecondaryIndex:
    field: str  #: single field name, or "a+b+…" for composites
    kind: IndexKind
    #: ``None`` means declared-but-not-built: paged recovery registers
    #: index declarations without scanning the data (that would defeat
    #: the O(1) open); the first read through the index materializes it
    #: (see ``RecordStore._ensure_index_built``).
    structure: BTree | HashIndex | None
    fields: tuple[str, ...] = ()  #: non-empty only for composites

    @property
    def supports_range(self) -> bool:
        # Decided by kind, not by isinstance: a lazy index has no
        # structure yet but its range capability is already known.
        return self.kind is IndexKind.BTREE

    @property
    def is_composite(self) -> bool:
        return len(self.fields) > 1


def _index_keys(record: Mapping[str, Any], field: str) -> list[Any]:
    """Index keys contributed by ``record`` for ``field``.

    Scalars contribute themselves; string lists contribute each element;
    missing/None contributes nothing.
    """
    value = record.get(field)
    if value is None:
        return []
    if isinstance(value, list):
        return list(value)
    return [value]


def _composite_keys(record: Mapping[str, Any], fields: tuple[str, ...]) -> list[tuple]:
    """The (single) tuple key ``record`` contributes to a composite index.

    A record missing any component contributes nothing; list fields are
    rejected at index-creation time so each record yields at most one key.
    """
    values = []
    for field in fields:
        value = record.get(field)
        if value is None:
            return []
        values.append(value)
    return [tuple(values)]


def _keys_for(record: Mapping[str, Any], index: _SecondaryIndex) -> list[Any]:
    if index.is_composite:
        return _composite_keys(record, index.fields)
    return _index_keys(record, index.field)


class RecordStore:
    """One table of validated records with optional durability.

    Parameters
    ----------
    schema:
        Table schema; the primary-key field identifies records.
    directory:
        Where the snapshot and WAL live.  ``None`` means in-memory only.
    sync:
        fsync the WAL on every append (durable but slow); benchmarks
        measure both settings.
    data_format:
        What checkpoints write: ``"memory"`` (the classic v2 snapshot —
        records inline in ``snapshot.json``, fully loaded at open) or
        ``"paged"`` (a v3 manifest referencing a ``store.pages.NNNNNN``
        B+ tree file, opened read-through in O(1) with only the working
        set resident).  Recovery auto-detects the on-disk format, so
        opening with the *other* flag and checkpointing migrates the
        directory.
    pool_pages:
        Buffer-pool capacity (in 4 KiB pages) for paged reads; bounds
        resident memory for the record data.
    shard:
        Shard ordinal when this store is one member of a
        :class:`~repro.storage.sharded.ShardedStore`; labels the paged
        B+ tree and buffer-pool metric series with ``shard=N`` so
        per-shard behaviour is separable in ``/metrics``.  ``None`` (the
        default) keeps the unlabeled process-wide series.

    >>> from repro.storage.schema import Field, FieldType, Schema
    >>> schema = Schema([Field("id", FieldType.INT), Field("t", FieldType.STRING)],
    ...                 primary_key="id")
    >>> store = RecordStore(schema)
    >>> store.insert({"id": 1, "t": "a"})
    >>> store.get(1)["t"]
    'a'
    >>> store.create_index("t", IndexKind.HASH)
    >>> [r["id"] for r in store.find_by("t", "a")]
    [1]
    """

    def __init__(
        self,
        schema: Schema,
        directory: Path | str | None = None,
        *,
        sync: bool = False,
        fs: _faultfs.FileSystem | None = None,
        retry: RetryPolicy | None = None,
        data_format: str = "memory",
        pool_pages: int = DEFAULT_POOL_PAGES,
        shard: int | None = None,
    ):
        if data_format not in DATA_FORMATS:
            raise StorageError(
                f"unknown data_format {data_format!r}; expected one of {DATA_FORMATS}"
            )
        self.schema = schema
        self._data_format = data_format
        self._pool_pages = pool_pages
        self._shard = shard
        #: Filesystem facade for all durability-relevant I/O; tests pass a
        #: :class:`repro.storage.faultfs.FaultFS` to inject crashes.
        self._fs = fs if fs is not None else _faultfs.REAL_FS
        #: Retry policy shared by the WAL and the snapshot writer: heals
        #: transient I/O faults, passes permanent ones through untouched.
        self._retry = retry if retry is not None else RetryPolicy(budget=RetryBudget())
        #: Primary store of records: a plain dict in memory format, a
        #: :class:`PagedRecordMap` (on-disk tree + in-memory overlay)
        #: once a paged checkpoint exists.  Both expose the same mapping
        #: surface; the paged map iterates in primary-key order.
        self._records: dict[Any, dict[str, Any]] | PagedRecordMap = {}
        self._indexes: dict[str, _SecondaryIndex] = {}
        #: Monotone counter bumped on every applied put/delete; lets
        #: derived structures (caches, search engines) detect staleness.
        self.mutation_count = 0
        #: Monotone counter bumped on index create/drop and on bulk
        #: writes (``put_many`` / ``apply_batch``).  Plan caches key on it
        #: so a schema or bulk-statistics change simply misses instead of
        #: needing explicit invalidation.  Per-record writes do not bump
        #: it: they only drift selectivity estimates, never correctness.
        self.index_epoch = 0
        self._wal: WriteAheadLog | None = None
        self._directory: Path | None = None
        #: Highest WAL segment number covered by the on-disk snapshot (0
        #: when no snapshot or a pre-segmentation one); recovery replays
        #: only segments above it.
        self._snapshot_seal = 0
        if directory is not None:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)
            self._recover()
            self._wal = WriteAheadLog(
                self._wal_path,
                sync=sync,
                fs=self._fs,
                seal_floor=self._snapshot_seal,
                retry=self._retry,
            )

    # -- paths -------------------------------------------------------------

    @property
    def _wal_path(self) -> Path:
        assert self._directory is not None
        return self._directory / "store.wal"

    @property
    def _snapshot_path(self) -> Path:
        assert self._directory is not None
        return self._directory / "snapshot.json"

    def _pages_name(self, seal: int) -> str:
        """Pages file published by the checkpoint covering WAL seal ``seal``.

        Versioned by seal (like WAL segments) so a crash mid-checkpoint
        can never leave the manifest pointing at a half-rewritten file:
        a new checkpoint always publishes a *new* name, the manifest
        flips atomically, and superseded files are removed last (a crash
        before that leaves fsck-repairable strays).
        """
        return f"store.pages.{seal:06d}"

    @property
    def data_format(self) -> str:
        """The format the next checkpoint will write."""
        return self._data_format

    @property
    def is_paged(self) -> bool:
        """Whether records are currently served read-through from pages."""
        return isinstance(self._records, PagedRecordMap)

    @property
    def overlay_size(self) -> int:
        """Records buffered in memory since the last paged checkpoint
        (0 when not paged — everything is in memory anyway)."""
        if isinstance(self._records, PagedRecordMap):
            return self._records.overlay_size
        return 0

    # -- basic accessors -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Any) -> bool:
        return key in self._records

    def get(self, key: Any) -> dict[str, Any]:
        """Record with primary key ``key`` (a copy); raises when absent."""
        _GET_COUNT.inc()
        try:
            return dict(self._records[key])
        except KeyError:
            raise RecordNotFoundError(key) from None

    def scan(
        self,
        predicate: Callable[[Mapping[str, Any]], bool] | None = None,
        *,
        guard: "Guard | None" = None,
    ) -> Iterator[dict[str, Any]]:
        """Iterate over (copies of) all records, optionally filtered.

        ``guard`` (a :class:`repro.resilience.Guard`) accounts every
        record examined — filtered-out records included — so a deadline,
        cancellation, or row budget interrupts the scan mid-stream.  To
        keep the guarded loop within a few percent of the unguarded one,
        rows are charged in blocks of up to ``guard.stride``, clipped to
        the remaining row budget (a budget violation still reports
        ``used == limit + 1`` exactly); the deadline/cancellation check
        runs at least once per stride.
        """
        _SCAN_COUNT.inc()
        examined = 0
        try:
            if guard is None:
                for record in self._records.values():
                    examined += 1
                    if predicate is None or predicate(record):
                        yield dict(record)
                return
            rows = iter(self._records.values())
            stride = guard.stride
            while True:
                budget = guard.max_rows
                size = (
                    stride
                    if budget is None
                    else min(stride, budget - guard.rows_examined + 1)
                )
                chunk = tuple(islice(rows, size if size > 0 else 1))
                if not chunk:
                    return
                guard.tick(len(chunk))
                examined += len(chunk)
                for record in chunk:
                    if predicate is None or predicate(record):
                        yield dict(record)
        finally:
            # One bulk increment per scan (not per record) keeps the hot
            # loop free of metric calls even on abandoned iterations.
            _SCAN_RECORDS.inc(examined)

    def keys(self) -> Iterator[Any]:
        """All primary keys in insertion order."""
        return iter(self._records)

    # -- mutations -------------------------------------------------------------

    def insert(self, record: Mapping[str, Any]) -> None:
        """Insert a new record; raises :class:`DuplicateKeyError` if present."""
        record = dict(record)
        self.schema.validate(record)
        key = self.schema.primary_key_of(record)
        if key in self._records:
            raise DuplicateKeyError(key)
        self._log({"op": "put", "record": record})
        self._apply_put(record)
        _PUT_COUNT.inc()

    def upsert(self, record: Mapping[str, Any]) -> bool:
        """Insert or replace; returns True when a record was replaced."""
        record = dict(record)
        self.schema.validate(record)
        key = self.schema.primary_key_of(record)
        existed = key in self._records
        self._log({"op": "put", "record": record})
        if existed:
            self._apply_delete(key)
        self._apply_put(record)
        _PUT_COUNT.inc()
        return existed

    def update(self, key: Any, changes: Mapping[str, Any]) -> dict[str, Any]:
        """Apply field changes to an existing record; returns the new record."""
        current = self.get(key)
        current.update(changes)
        self.schema.validate(current)
        if self.schema.primary_key_of(current) != key:
            raise ValidationError("update must not change the primary key")
        self._log({"op": "put", "record": current})
        self._apply_delete(key)
        self._apply_put(current)
        _PUT_COUNT.inc()
        return dict(current)

    def delete(self, key: Any) -> None:
        """Delete by primary key; raises when absent."""
        if key not in self._records:
            raise RecordNotFoundError(key)
        self._log({"op": "del", "key": key})
        self._apply_delete(key)
        _DELETE_COUNT.inc()

    def put_many(
        self,
        records: Iterable[Mapping[str, Any]],
        *,
        on_conflict: str = "error",
        sync: bool | None = None,
        sync_every: int | None = None,
        _prevalidated: bool = False,
    ) -> int:
        """Bulk-write ``records`` through the batched fast path.

        Every record is validated *before* anything is logged; the whole
        batch then lands in the WAL as one group commit (one buffered
        write and, when syncing, one fsync — bounded by ``sync_every``,
        see :meth:`WriteAheadLog.append_many`), and each secondary index
        is maintained with a single sorted batched update instead of one
        top-down insert per key.  The cyclic garbage collector is paused
        for the duration (see ``_gc_paused``): the batch allocates only
        long-lived objects, and mid-batch collections were the dominant
        superlinear cost at 100k records.  Returns the number of records
        written.

        ``on_conflict`` chooses what a primary key that already exists
        (in the store or earlier in the batch) means: ``"error"`` (the
        default) raises :class:`DuplicateKeyError` before any state is
        touched — the whole batch is atomic, matching ``insert()`` — and
        ``"replace"`` upserts, matching ``upsert()``.

        ``_prevalidated`` is internal (used by
        :class:`~repro.storage.sharded.ShardedStore`): the caller attests
        ``records`` is a list of schema-valid, conflict-checked dicts
        whose ownership transfers to the store, so validation, conflict
        checks, and the defensive per-record copy are all skipped.
        """
        if on_conflict not in ("error", "replace"):
            raise StorageError(f"unknown on_conflict mode {on_conflict!r}")
        if _prevalidated:
            materialized = records if isinstance(records, list) else list(records)
        else:
            materialized = [dict(record) for record in records]
        if not materialized:
            return 0
        with _gc_paused():
            if not _prevalidated:
                self.schema.validate_many(materialized)
                if on_conflict == "error":
                    pk = self.schema.primary_key
                    contains = self._records.__contains__
                    batch_keys: set[Any] = set()
                    for record in materialized:
                        key = record[pk]
                        if contains(key) or key in batch_keys:
                            raise DuplicateKeyError(key)
                        batch_keys.add(key)
            if self._wal is not None:
                self._wal.append_many(
                    ({"op": "put", "record": record} for record in materialized),
                    sync=sync,
                    sync_every=sync_every,
                )
            self._apply_put_batch(materialized)
        _PUT_COUNT.inc(len(materialized))
        _PUT_MANY_COUNT.inc()
        _PUT_MANY_RECORDS.inc(len(materialized))
        self.index_epoch += 1
        return len(materialized)

    def _apply_put_batch(self, records: list[dict[str, Any]]) -> None:
        """Apply validated puts with sorted batched index maintenance.

        Takes ownership of the record dicts.  Later records win when a
        primary key repeats within the batch (replay semantics).  All
        index additions are computed — and B-tree ones sorted — *before*
        any state mutates, so an unsortable key set aborts cleanly.
        """
        by_key: dict[Any, dict[str, Any]] = {}
        for record in records:
            by_key[self.schema.primary_key_of(record)] = record
        additions: list[tuple[_SecondaryIndex, list[tuple[Any, Any]]]] = []
        for index in self._indexes.values():
            if index.structure is None:
                continue  # lazy: the eventual build scans current state
            pairs = [
                (index_key, key)
                for key, record in by_key.items()
                for index_key in _keys_for(record, index)
            ]
            if not pairs:
                continue
            if isinstance(index.structure, BTree):
                try:
                    pairs.sort(key=lambda pair: pair[0])
                except TypeError as exc:
                    raise StorageError(
                        f"B-tree index keys must be mutually comparable: {exc}"
                    ) from exc
            additions.append((index, pairs))
        for key in by_key:
            if key in self._records:
                self._apply_delete(key)
        self.mutation_count += len(by_key)
        self._records.update(by_key)
        for index, pairs in additions:
            assert index.structure is not None
            index.structure.insert_many(pairs)

    def apply_batch(self, operations: list[dict[str, Any]]) -> None:
        """Apply a pre-validated operation batch atomically (one WAL entry).

        Each operation is ``{"op": "put", "record": …}`` or
        ``{"op": "del", "key": …}``.  Every operation is validated *before*
        the batch is logged: a bad batch aborts prior to its WAL append, so
        neither the log nor the in-memory state is touched (and none of the
        WAL metrics below move).  Once validation passes, the whole batch
        lands as a single WAL entry — one ``storage.wal.append.count``
        increment whose framed size feeds ``storage.wal.append.bytes``
        (and, when the log fsyncs, one ``storage.wal.flush.seconds``
        observation).  A batch of nothing but puts is applied through the
        same sorted batched index maintenance as :meth:`put_many`.
        """
        all_puts = True
        for op in operations:
            if op["op"] == "put":
                self.schema.validate(op["record"])
            elif op["op"] == "del":
                all_puts = False  # deletes of absent keys are tolerated
            else:
                raise StorageError(f"unknown batch op {op.get('op')!r}")
        self._log({"op": "batch", "ops": operations})
        puts = deletes = 0
        if all_puts:
            self._apply_put_batch([dict(op["record"]) for op in operations])
            puts = len(operations)
        else:
            for op in operations:
                if op["op"] == "put":
                    record = dict(op["record"])
                    key = self.schema.primary_key_of(record)
                    if key in self._records:
                        self._apply_delete(key)
                    self._apply_put(record)
                    puts += 1
                else:
                    if op["key"] in self._records:
                        self._apply_delete(op["key"])
                        deletes += 1
        # Bulk increments per batch (not per record) keep the apply loop
        # free of metric calls; recovery replay is likewise uncounted here
        # and shows up in storage.wal.replay.entries instead.
        _PUT_COUNT.inc(puts)
        _DELETE_COUNT.inc(deletes)
        self.index_epoch += 1

    def update_where(
        self,
        predicate: Callable[[Mapping[str, Any]], bool],
        changes: Mapping[str, Any] | Callable[[Mapping[str, Any]], Mapping[str, Any]],
    ) -> int:
        """Atomically update every record matching ``predicate``.

        ``changes`` is either a field dict applied to each match or a
        callable mapping the old record to its field changes.  All updated
        records are validated *before* anything is logged, then the whole
        batch lands as one WAL entry.  The primary key cannot change.
        Returns the number of records updated.
        """
        updated: list[dict[str, Any]] = []
        for record in self._records.values():
            if not predicate(record):
                continue
            new_record = dict(record)
            delta = changes(record) if callable(changes) else changes
            new_record.update(delta)
            self.schema.validate(new_record)
            if self.schema.primary_key_of(new_record) != self.schema.primary_key_of(record):
                raise ValidationError("update_where must not change primary keys")
            updated.append(new_record)
        if updated:
            self.apply_batch([{"op": "put", "record": r} for r in updated])
        return len(updated)

    def delete_where(self, predicate: Callable[[Mapping[str, Any]], bool]) -> int:
        """Atomically delete every record matching ``predicate``.

        Matching happens first over a stable scan, then all deletes land as
        one WAL batch; returns the number of records deleted.
        """
        keys = [
            self.schema.primary_key_of(record)
            for record in self._records.values()
            if predicate(record)
        ]
        if keys:
            self.apply_batch([{"op": "del", "key": key} for key in keys])
        return len(keys)

    def transaction(self) -> "Transaction":
        """Start a buffered transaction (see :class:`Transaction`)."""
        from repro.storage.transactions import Transaction

        return Transaction(self)

    # -- secondary indexes --------------------------------------------------------

    def create_index(
        self, field: str, kind: IndexKind = IndexKind.BTREE, *, order: int = 32
    ) -> None:
        """Declare a secondary index over ``field`` and build it.

        STRING_LIST fields index every element.  Re-declaring an existing
        index with the same kind is a no-op; a different kind is an error.
        """
        self.schema.field(field)  # raises on unknown field
        existing = self._indexes.get(field)
        if existing is not None:
            if existing.kind is kind:
                return
            raise StorageError(
                f"index on {field!r} already exists with kind {existing.kind.value}"
            )
        structure: BTree | HashIndex
        if kind is IndexKind.BTREE:
            structure = self._bulk_build_btree(
                lambda record: _index_keys(record, field), order
            )
        else:
            structure = HashIndex.bulk_load(
                (index_key, key)
                for key, record in self._records.items()
                for index_key in _index_keys(record, field)
            )
        index = _SecondaryIndex(field=field, kind=kind, structure=structure)
        self._indexes[field] = index
        self.index_epoch += 1

    def create_composite_index(
        self, fields: Sequence[str], *, order: int = 32
    ) -> str:
        """Declare a B-tree index over a tuple of scalar fields.

        Returns the index name (fields joined with ``+``), which
        :meth:`find_by_composite` / :meth:`range_by_composite` and the
        planner address it by.  List fields are rejected (a composite key
        must be single-valued per record).
        """
        if len(fields) < 2:
            raise StorageError("composite index needs at least two fields")
        for field in fields:
            declared = self.schema.field(field)  # raises on unknown
            if declared.type is FieldType.STRING_LIST:
                raise StorageError(
                    f"list field {field!r} cannot join a composite index"
                )
        name = COMPOSITE_SEPARATOR.join(fields)
        existing = self._indexes.get(name)
        if existing is not None:
            return name
        fields_tuple = tuple(fields)
        structure = self._bulk_build_btree(
            lambda record: _composite_keys(record, fields_tuple), order
        )
        index = _SecondaryIndex(
            field=name, kind=IndexKind.BTREE, structure=structure, fields=fields_tuple
        )
        self._indexes[name] = index
        self.index_epoch += 1
        return name

    def _ensure_index_built(self, index: _SecondaryIndex) -> BTree | HashIndex:
        """Materialize a lazily-declared index on first use.

        Paged recovery declares indexes without building them (building
        would scan the whole store and defeat the O(1) open); the first
        read through an index pays the build cost instead.  Writes that
        arrive before first use simply skip the unbuilt index — the
        build scans the *current* records, so nothing is missed.
        """
        structure = index.structure
        if structure is not None:
            return structure
        if index.is_composite:
            fields = index.fields
            structure = self._bulk_build_btree(
                lambda record: _composite_keys(record, fields), 32
            )
        elif index.kind is IndexKind.BTREE:
            field = index.field
            structure = self._bulk_build_btree(
                lambda record: _index_keys(record, field), 32
            )
        else:
            structure = HashIndex.bulk_load(
                (index_key, key)
                for key, record in self._records.items()
                for index_key in _index_keys(record, index.field)
            )
        index.structure = structure
        return structure

    def _declare_index(self, index_def: Mapping[str, Any]) -> None:
        """Register an index declaration without building it (paged open)."""
        if "fields" in index_def:
            fields = tuple(index_def["fields"])
            name = COMPOSITE_SEPARATOR.join(fields)
            self._indexes[name] = _SecondaryIndex(
                field=name, kind=IndexKind.BTREE, structure=None, fields=fields
            )
        else:
            field = index_def["field"]
            self._indexes[field] = _SecondaryIndex(
                field=field, kind=IndexKind(index_def["kind"]), structure=None
            )
        self.index_epoch += 1

    def _bulk_build_btree(
        self, key_extractor: Callable[[Mapping[str, Any]], list[Any]], order: int
    ) -> BTree:
        """Build a B-tree over existing records via sorted bulk load.

        O(n log n) in the sort but with far better constants than n
        individual inserts.  Keys must be mutually comparable — a B-tree
        cannot hold an ordering-free key set at all, so mixed-type keys
        raise :class:`~repro.errors.StorageError` here instead of failing
        obscurely inside a later node split.
        """
        buckets: dict[Any, list[Any]] = {}
        for primary_key, record in self._records.items():
            for index_key in key_extractor(record):
                buckets.setdefault(index_key, []).append(primary_key)
        try:
            ordered = sorted(buckets.items())
        except TypeError as exc:
            raise StorageError(
                f"B-tree index keys must be mutually comparable: {exc}"
            ) from exc
        return BTree.from_sorted(ordered, order=order)

    def composite_indexes(self) -> tuple[tuple[str, ...], ...]:
        """Field tuples of all declared composite indexes."""
        return tuple(
            index.fields for index in self._indexes.values() if index.is_composite
        )

    def find_by_composite(
        self, fields: Sequence[str], values: Sequence[Any]
    ) -> list[dict[str, Any]]:
        """Records whose ``fields`` equal ``values`` (via the composite index)."""
        index = self._require_composite(fields)
        if len(values) != len(fields):
            raise StorageError("values must match the composite's fields")
        structure = self._ensure_index_built(index)
        out = [dict(self._records[pk]) for pk in structure.search(tuple(values))]
        _KEY_USAGE.record(
            COMPOSITE_SEPARATOR.join(fields), tuple(values), len(out)
        )
        return out

    def range_by_composite(
        self,
        fields: Sequence[str],
        prefix: Sequence[Any],
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[dict[str, Any]]:
        """Prefix-equality + range scan over a composite index.

        ``prefix`` fixes the leading fields; ``low``/``high`` bound the
        next field.  ``range_by_composite(("volume","page"), (95,), 600)``
        returns volume-95 records from page 600 up, in (volume, page)
        order.
        """
        index = self._require_composite(fields)
        if len(prefix) >= len(fields):
            raise StorageError("prefix must leave at least one free field")
        prefix_tuple = tuple(prefix)
        # Bound the tuple space: fixed prefix, then the range component,
        # then open tails.  _Tail sorts above every value, closing the
        # upper bound without knowing the component type.
        low_key: Any = (
            prefix_tuple + (low,) if low is not None else prefix_tuple
        )
        if high is not None:
            high_key: Any = prefix_tuple + (high, _TAIL)
            include_high_effective = True  # _TAIL absorbs inclusivity below
        else:
            high_key = prefix_tuple + (_TAIL,)
            include_high_effective = True
        structure = self._ensure_index_built(index)
        assert isinstance(structure, BTree)
        out = []
        for key_tuple, pk in structure.range(
            low_key, high_key, include_low=True, include_high=include_high_effective
        ):
            if key_tuple[: len(prefix_tuple)] != prefix_tuple:
                continue
            component = key_tuple[len(prefix_tuple)]
            if low is not None and (
                component < low or (component == low and not include_low)
            ):
                continue
            if high is not None and (
                component > high or (component == high and not include_high)
            ):
                continue
            out.append(dict(self._records[pk]))
        _KEY_USAGE.record(
            COMPOSITE_SEPARATOR.join(fields),
            f"{prefix_tuple}{_range_label(low, high)}",
            rows=len(out),
        )
        return out

    def _require_composite(self, fields: Sequence[str]) -> _SecondaryIndex:
        name = COMPOSITE_SEPARATOR.join(fields)
        index = self._indexes.get(name)
        if index is None or not index.is_composite:
            raise StorageError(f"no composite index on {tuple(fields)!r}")
        return index

    def drop_index(self, field: str) -> None:
        """Remove the index on ``field`` (error when absent)."""
        if field not in self._indexes:
            raise StorageError(f"no index on field {field!r}")
        del self._indexes[field]
        self.index_epoch += 1

    def has_index(self, field: str) -> bool:
        return field in self._indexes

    def index_kind(self, field: str) -> IndexKind | None:
        index = self._indexes.get(field)
        return index.kind if index else None

    @property
    def indexed_fields(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    def index_statistics(self, field: str) -> dict[str, int] | None:
        """Cardinality statistics of the index on ``field`` (or ``None``).

        ``distinct_keys`` / ``entries`` drive the planner's selectivity
        estimate: more distinct keys ⇒ a typical equality probe returns
        fewer records.
        """
        index = self._indexes.get(field)
        if index is None:
            return None
        structure = self._ensure_index_built(index)
        return {
            "distinct_keys": structure.distinct_keys,
            "entries": len(structure),
        }

    # -- index-backed reads -----------------------------------------------------

    def find_by(self, field: str, value: Any) -> list[dict[str, Any]]:
        """All records whose ``field`` equals (or contains) ``value``.

        Uses the secondary index when one exists, otherwise scans.
        """
        _FIND_BY_COUNT.inc()
        index = self._indexes.get(field)
        if index is not None:
            structure = self._ensure_index_built(index)
            # A list field may contain the value twice; keep first hits only.
            seen: set[Any] = set()
            out = []
            for pk in structure.search(value):
                if pk not in seen:
                    seen.add(pk)
                    out.append(dict(self._records[pk]))
            _KU_RECORD(field, value, len(out))
            return out
        return [r for r in self.scan(lambda rec: value in _index_keys(rec, field))]

    def range_by(
        self,
        field: str,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[dict[str, Any]]:
        """Records with ``field`` in the given range, in field order.

        Uses a B-tree index when available; falls back to scan+sort.
        """
        _RANGE_BY_COUNT.inc()
        index = self._indexes.get(field)
        if index is not None and index.supports_range:
            structure = self._ensure_index_built(index)
            assert isinstance(structure, BTree)
            pairs = structure.range(
                low, high, include_low=include_low, include_high=include_high
            )
            out = [dict(self._records[pk]) for _, pk in pairs]
            _KU_RECORD(field, _range_label(low, high), len(out))
            return out

        def in_range(value: Any) -> bool:
            if low is not None and (value < low or (value == low and not include_low)):
                return False
            if high is not None and (value > high or (value == high and not include_high)):
                return False
            return True

        hits = [
            (key_value, dict(record))
            for record in self._records.values()
            for key_value in _index_keys(record, field)
            if in_range(key_value)
        ]
        hits.sort(key=lambda pair: pair[0])
        return [record for _, record in hits]

    # -- internal application ------------------------------------------------------

    def _apply_put(self, record: dict[str, Any]) -> None:
        self.mutation_count += 1
        key = self.schema.primary_key_of(record)
        self._records[key] = record
        for index in self._indexes.values():
            if index.structure is None:
                continue  # lazy: the eventual build scans current state
            for index_key in _keys_for(record, index):
                index.structure.insert(index_key, key)

    def _apply_delete(self, key: Any) -> None:
        self.mutation_count += 1
        record = self._records.pop(key)
        for index in self._indexes.values():
            if index.structure is None:
                continue  # lazy: the eventual build scans current state
            for index_key in _keys_for(record, index):
                index.structure.remove(index_key, key)

    def _log(self, payload: dict[str, Any]) -> None:
        if self._wal is not None:
            self._wal.append(payload)

    # -- durability ---------------------------------------------------------------

    def _index_defs(self) -> list[dict[str, Any]]:
        index_defs: list[dict[str, Any]] = []
        for idx in self._indexes.values():
            if idx.is_composite:
                index_defs.append({"fields": list(idx.fields), "kind": idx.kind.value})
            else:
                index_defs.append({"field": idx.field, "kind": idx.kind.value})
        return index_defs

    def _snapshot_state(self) -> dict[str, Any]:
        """The full-state snapshot document, manifest fields included."""
        index_defs = self._index_defs()
        records = list(self._records.values())
        assert self._wal is not None
        return {
            "version": _SNAPSHOT_VERSION,
            "wal_seal": self._wal.highest_seal,
            "record_count": len(records),
            "checksum": records_checksum(records),
            "records": records,
            "indexes": index_defs,
        }

    @_metrics.get_default_registry().timed("storage.checkpoint.seconds")
    def checkpoint(
        self,
        *,
        progress: Callable[[_progress.ProgressTracker], None] | None = None,
    ) -> None:
        """Snapshot the full state and reclaim the WAL segments it covers.

        Four crash-ordered steps:

        1. **Rotate** — the active WAL file is sealed as the next numbered
           segment, so everything the snapshot will cover is immutable.
        2. **Write** — the snapshot document (records, index declarations,
           and a manifest: the covered segment number ``wal_seal``, the
           record count, and a CRC-32 over the canonical records JSON)
           goes to a temp file, is fsynced, and is **verified by reading
           it back** — a snapshot corrupted in flight must never replace
           a good one, because step 4 deletes the data that could rebuild
           it.
        3. **Publish** — atomic rename over ``snapshot.json`` plus a
           directory fsync.
        4. **Reclaim** — sealed segments at or below ``wal_seal`` are
           deleted.  A crash between 3 and 4 leaves *stale* segments:
           recovery skips them (``repro fsck`` removes them).

        A crash at any point recovers to the full pre-checkpoint state —
        the crash matrix in ``tests/crash/`` drives every step.
        """
        if self._directory is None:
            raise StorageError("in-memory store cannot checkpoint")
        assert self._wal is not None
        with _gc_paused():
            self._checkpoint_locked(progress)

    def _checkpoint_locked(
        self,
        progress: Callable[[_progress.ProgressTracker], None] | None = None,
    ) -> None:
        """Checkpoint body; runs with the garbage collector paused.

        Dispatches on the configured data format — the manifest the
        snapshot publishes decides what the *next* open does, which is
        how ``repro checkpoint --paged`` migrates a directory in place
        (and back).
        """
        attrs: dict[str, Any] = {"format": self._data_format}
        if self._shard is not None:
            attrs["shard"] = self._shard
        with _progress.start(
            "storage.checkpoint", total=len(self._records), **attrs
        ) as tracker:
            if progress is not None:
                tracker.subscribe(progress)
            if self._data_format == "paged":
                self._checkpoint_paged_locked(tracker)
            else:
                self._checkpoint_memory_locked(tracker)

    def _checkpoint_memory_locked(self, tracker: _progress.ProgressTracker) -> None:
        """Classic v2 checkpoint: records inline in ``snapshot.json``.

        Serializing and read-back-verifying the full store image
        allocates on the order of the store size with nothing to
        collect; mid-checkpoint collections only rescan it.
        """
        assert self._wal is not None
        # Downgrade path: a paged directory checkpointed in memory format
        # materializes everything back into a plain dict first, and drops
        # the pages files once the inline snapshot is published.
        old_map: PagedRecordMap | None = None
        if isinstance(self._records, PagedRecordMap):
            old_map = self._records
            self._records = {key: record for key, record in old_map.items()}
        self._wal.rotate()
        covered = self._wal.highest_seal
        state = self._snapshot_state()
        payload = json.dumps(state, ensure_ascii=False).encode("utf-8")
        tmp = self._snapshot_path.with_suffix(".json.tmp")
        try:
            fh = self._fs.open(tmp, "wb")
            try:
                self._retry.call(lambda: fh.write(payload), describe="checkpoint.write")
                self._retry.call(lambda: self._fs.fsync(fh), describe="checkpoint.fsync")
            finally:
                fh.close()
            self._verify_snapshot_file(tmp, state)
            self._retry.call(
                lambda: self._fs.replace(tmp, self._snapshot_path),
                describe="checkpoint.replace",
            )
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        # fsync the directory so the rename itself survives a crash —
        # os.replace only orders the data, not the directory entry.
        self._fs.fsync_dir(self._directory)
        removed = 0
        reclaimed = 0
        for seal, sealed in self._wal.sealed_segments():
            if seal <= covered:
                reclaimed += sealed.stat().st_size
                self._fs.remove(sealed)
                removed += 1
        if removed:
            self._fs.fsync_dir(self._directory)
        if old_map is not None:
            # The inline snapshot now owns the data; retire the pages.
            old_map.close()
            self._remove_pages_files(keep=None)
        # The inline snapshot is written in one piece; the whole batch
        # completes at publish time rather than record by record.
        tracker.tick(len(self._records))
        self._snapshot_seal = covered
        _CHECKPOINT_COUNT.inc()
        _CHECKPOINT_SEGMENTS_REMOVED.inc(removed)
        _CHECKPOINT_BYTES_RECLAIMED.inc(reclaimed)
        _logging.info(
            "storage.checkpoint",
            wal_seal=covered,
            records=len(self._records),
            segments_removed=removed,
            bytes_reclaimed=reclaimed,
        )

    def _checkpoint_paged_locked(self, tracker: _progress.ProgressTracker) -> None:
        """Paged (v3) checkpoint: publish a B+ tree pages file.

        Same crash-ordered protocol as the memory checkpoint, with the
        pages file slotted in before the manifest:

        1. **Rotate** the WAL; the covered seal names the pages file.
        2. **Build** ``store.pages.NNNNNN.tmp`` by streaming the records
           in pk order through :meth:`PagedBTree.bulk_build` (unmodified
           base records pass through as stored bytes), computing the
           records CRC on the way; fsync; then **verify by re-opening**
           — every page CRC-checked, entry count and data CRC compared.
        3. **Publish the pages file** (atomic rename to its final name +
           directory fsync).  A crash here leaves an unreferenced pages
           file: a stray, repairable by ``repro fsck``.
        4. **Publish the manifest** — a v3 ``snapshot.json`` referencing
           the pages file by name, with the same ``wal_seal`` /
           ``record_count`` / ``checksum`` fields as v2 but no inline
           records.  Written to a temp file, verified by read-back,
           renamed, directory fsynced.
        5. **Reclaim**: covered WAL segments, then superseded
           ``store.pages.*`` files.

        Afterwards the store serves read-through from the new pages file
        with an empty overlay.
        """
        assert self._wal is not None
        assert self._directory is not None
        self._wal.rotate()
        covered = self._wal.highest_seal
        pages_name = self._pages_name(covered)
        pages_path = self._directory / pages_name
        tmp_pages = self._directory / (pages_name + ".tmp")
        tmp_pages.unlink(missing_ok=True)
        checksum = StreamingChecksum()
        if isinstance(self._records, PagedRecordMap):
            source: Iterator[tuple[Any, bytes]] = self._records.sorted_encoded_items()
        else:
            source = (
                (key, encode_record(record))
                for key, record in sorted(
                    self._records.items(), key=lambda item: item[0]
                )
            )

        def stream() -> Iterator[tuple[Any, bytes]]:
            # Tick the progress tracker in blocks: per-record lock
            # traffic on a 100k-record build would be pure overhead.
            pending = 0
            for key, raw in source:
                checksum.add(raw)
                pending += 1
                if pending >= 1024:
                    tracker.tick(pending)
                    pending = 0
                yield key, raw
            if pending:
                tracker.tick(pending)

        tree: PagedBTree | None = None
        try:
            tree = PagedBTree.bulk_build(
                tmp_pages,
                stream(),
                fs=self._fs,
                pool_pages=self._pool_pages,
                shard=self._shard,
            )
            record_count = tree.entry_count
            tree.set_data_crc(checksum.value())
            self._retry.call(tree.flush, describe="checkpoint.pages.flush")
            tree.close()
            tree = None
            self._verify_pages_file(tmp_pages, record_count, checksum.value())
            self._retry.call(
                lambda: self._fs.replace(tmp_pages, pages_path),
                describe="checkpoint.pages.replace",
            )
        except BaseException:
            if tree is not None:
                tree.abandon()
            tmp_pages.unlink(missing_ok=True)
            raise
        self._fs.fsync_dir(self._directory)
        state = {
            "version": _PAGED_SNAPSHOT_VERSION,
            "format": "paged",
            "pages": pages_name,
            "wal_seal": covered,
            "record_count": record_count,
            "checksum": checksum.hexdigest(),
            "indexes": self._index_defs(),
        }
        payload = json.dumps(state, ensure_ascii=False).encode("utf-8")
        tmp = self._snapshot_path.with_suffix(".json.tmp")
        try:
            fh = self._fs.open(tmp, "wb")
            try:
                self._retry.call(lambda: fh.write(payload), describe="checkpoint.write")
                self._retry.call(lambda: self._fs.fsync(fh), describe="checkpoint.fsync")
            finally:
                fh.close()
            self._verify_paged_manifest(tmp, state)
            self._retry.call(
                lambda: self._fs.replace(tmp, self._snapshot_path),
                describe="checkpoint.replace",
            )
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self._fs.fsync_dir(self._directory)
        removed = 0
        reclaimed = 0
        for seal, sealed in self._wal.sealed_segments():
            if seal <= covered:
                reclaimed += sealed.stat().st_size
                self._fs.remove(sealed)
                removed += 1
        old_map = self._records if isinstance(self._records, PagedRecordMap) else None
        if old_map is not None:
            old_map.close()
        self._remove_pages_files(keep=pages_name)
        if removed:
            self._fs.fsync_dir(self._directory)
        self._records = PagedRecordMap(
            PagedBTree(
                pages_path,
                fs=self._fs,
                pool_pages=self._pool_pages,
                shard=self._shard,
            )
        )
        self._snapshot_seal = covered
        _CHECKPOINT_COUNT.inc()
        _CHECKPOINT_SEGMENTS_REMOVED.inc(removed)
        _CHECKPOINT_BYTES_RECLAIMED.inc(reclaimed)
        _logging.info(
            "storage.checkpoint",
            wal_seal=covered,
            records=record_count,
            format="paged",
            pages=pages_name,
            segments_removed=removed,
            bytes_reclaimed=reclaimed,
        )

    def _verify_pages_file(self, path: Path, count: int, data_crc: int) -> None:
        """Deep read-back verification of a just-built pages file.

        Every reachable page is re-read and CRC-checked and the tree
        structure validated — the paged analog of re-parsing the inline
        snapshot — because the checkpoint is about to delete the WAL
        segments that could rebuild this data.
        """
        verify_tree = PagedBTree(path, fs=self._fs, pool_pages=64)
        try:
            stats = verify_tree.verify()
        except StorageError as exc:
            raise StorageError(f"paged checkpoint verification failed: {exc}") from exc
        finally:
            verify_tree.close()
        if stats["entries"] != count or stats["data_crc"] != data_crc:
            raise StorageError(
                "paged checkpoint verification failed: pages file holds "
                f"{stats['entries']} entries (crc {stats['data_crc']:08x}), "
                f"expected {count} (crc {data_crc:08x})"
            )

    def _verify_paged_manifest(self, path: Path, expected: dict[str, Any]) -> None:
        try:
            with open(path, "rb") as fh:
                state = json.loads(fh.read().decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(f"checkpoint verification failed: {exc}") from exc
        for field in ("version", "pages", "record_count", "checksum"):
            if state.get(field) != expected[field]:
                raise StorageError(
                    f"checkpoint verification failed: manifest {field} mismatch"
                )

    def _remove_pages_files(self, keep: str | None) -> None:
        """Delete ``store.pages.*`` files except ``keep`` (and any tmps)."""
        assert self._directory is not None
        removed = False
        for path in sorted(self._directory.glob("store.pages.*")):
            if keep is not None and path.name == keep:
                continue
            self._fs.remove(path)
            removed = True
        if removed:
            self._fs.fsync_dir(self._directory)

    def snapshot(self) -> None:
        """Compatibility alias for :meth:`checkpoint`."""
        self.checkpoint()

    @property
    def wal_size_bytes(self) -> int:
        """Total on-disk WAL footprint (active file plus sealed segments);
        0 for an in-memory store."""
        if self._wal is None:
            return 0
        return self._wal.total_size_bytes

    def maybe_checkpoint(self, wal_bytes: int) -> bool:
        """Checkpoint iff the WAL footprint is at least ``wal_bytes``.

        The building block of a WAL-disk-bounding ingest loop: callers
        stream batches and call this after each one, paying the
        O(store size) snapshot cost only when the log has actually grown
        past the bound.  Returns True when a checkpoint ran.
        """
        if wal_bytes <= 0:
            raise StorageError(f"wal_bytes bound must be positive, got {wal_bytes}")
        if self._wal is None or self.wal_size_bytes < wal_bytes:
            return False
        self.checkpoint()
        return True

    def _verify_snapshot_file(self, path: Path, expected: dict[str, Any]) -> None:
        """Read a just-written snapshot back and verify its manifest.

        Catches in-flight corruption (a bad disk, a flipped bit in the
        write path) *before* the rename publishes the snapshot and the
        checkpoint deletes the WAL segments that could rebuild it.
        """
        try:
            with open(path, "rb") as fh:
                state = json.loads(fh.read().decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(f"checkpoint verification failed: {exc}") from exc
        if state.get("record_count") != expected["record_count"]:
            raise StorageError(
                "checkpoint verification failed: record count mismatch"
            )
        if state.get("checksum") != expected["checksum"] or state.get(
            "checksum"
        ) != records_checksum(state.get("records", [])):
            raise StorageError("checkpoint verification failed: checksum mismatch")

    @_metrics.get_default_registry().timed("storage.recovery.seconds")
    def _recover(self) -> None:
        """Rebuild in-memory state: snapshot, then surviving WAL segments.

        Strict by design — mid-chain damage raises
        :class:`~repro.errors.CorruptLogError` rather than silently
        dropping acknowledged data; ``repro fsck`` is the explicit tool
        for diagnosing and repairing a damaged directory.
        """
        _RECOVERY_COUNT.inc()
        if self._snapshot_path.exists():
            with open(self._snapshot_path, encoding="utf-8") as fh:
                state = json.load(fh)
            version = state.get("version")
            if version not in _SUPPORTED_SNAPSHOT_VERSIONS:
                raise StorageError(f"unsupported snapshot version {version!r}")
            if version == _PAGED_SNAPSHOT_VERSION:
                self._recover_paged(state)
            else:
                records = state["records"]
                if version >= 2 and state.get("record_count") != len(records):
                    raise StorageError(
                        "snapshot record count disagrees with its manifest "
                        "(corrupt snapshot; run `repro fsck` for details)"
                    )
                for record in records:
                    self.schema.validate(record)
                    self._records[self.schema.primary_key_of(record)] = dict(record)
                for index_def in state.get("indexes", []):
                    if "fields" in index_def:
                        self.create_composite_index(index_def["fields"])
                    else:
                        self.create_index(
                            index_def["field"], IndexKind(index_def["kind"])
                        )
            self._snapshot_seal = int(state.get("wal_seal", 0))
        chain = WriteAheadLog.scan_chain(self._wal_path, min_seal=self._snapshot_seal)
        # Buffer runs of consecutive puts so replay of a bulk ingest goes
        # through the same sorted batched index maintenance that wrote it.
        pending: list[dict[str, Any]] = []
        entries = 0
        for scan in chain.segments:
            entries += len(scan.entries)
            _RECOVERY_TORN_BYTES.inc(scan.torn_bytes)
            for entry in scan.entries:
                self._replay_op(entry.payload, pending)
        if pending:
            self._apply_put_batch(pending)
        _RECOVERY_SEGMENTS.inc(len(chain.segments))
        _RECOVERY_ENTRIES.inc(entries)
        _RECOVERY_STALE_SEGMENTS.inc(len(chain.stale))
        _logging.info(
            "storage.recovery",
            records=len(self._records),
            segments_replayed=len(chain.segments),
            entries_replayed=entries,
            stale_segments=len(chain.stale),
            snapshot_seal=self._snapshot_seal,
        )

    def _recover_paged(self, state: dict[str, Any]) -> None:
        """Open a v3 (paged) snapshot read-through — O(1), not O(n).

        Only the tree's meta page is read: the manifest's record count
        and checksum are compared against the meta fields the checkpoint
        stamped, records stay on disk until touched, and secondary
        indexes are *declared* but not built (see
        :meth:`_ensure_index_built`).  Deep page validation is
        ``repro fsck``'s job, exactly as chain validation is for the WAL.
        """
        assert self._directory is not None
        pages_name = state.get("pages")
        if not isinstance(pages_name, str) or "/" in pages_name:
            raise StorageError(f"paged snapshot has invalid pages name {pages_name!r}")
        pages_path = self._directory / pages_name
        if not pages_path.exists():
            raise StorageError(
                f"paged snapshot references missing pages file {pages_name} "
                "(run `repro fsck` for details)"
            )
        tree = PagedBTree(
            pages_path, fs=self._fs, pool_pages=self._pool_pages, shard=self._shard
        )
        expected_crc = int(state.get("checksum", "0"), 16)
        if (
            tree.entry_count != state.get("record_count")
            or tree.data_crc != expected_crc
        ):
            tree.close()
            raise StorageError(
                "paged snapshot manifest disagrees with its pages file "
                "(corrupt checkpoint; run `repro fsck` for details)"
            )
        self._records = PagedRecordMap(tree)
        for index_def in state.get("indexes", []):
            self._declare_index(index_def)

    def _replay_op(
        self, payload: dict[str, Any], pending: list[dict[str, Any]]
    ) -> None:
        op = payload.get("op")
        if op == "put":
            pending.append(dict(payload["record"]))
            return
        if pending:
            self._apply_put_batch(pending)
            pending.clear()
        if op == "del":
            if payload["key"] in self._records:
                self._apply_delete(payload["key"])
        elif op == "batch":
            for sub in payload["ops"]:
                self._replay_op(sub, pending)
            if pending:
                self._apply_put_batch(pending)
                pending.clear()
        else:
            raise StorageError(f"unknown WAL op {op!r}")

    def close(self) -> None:
        """Release the WAL and pages file handles (safe to call twice).

        Overlay records NOT yet checkpointed are still durable — they
        live in the WAL and replay on the next open.
        """
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        if isinstance(self._records, PagedRecordMap):
            self._records.close()

    def __enter__(self) -> "RecordStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

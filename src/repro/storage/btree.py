"""In-memory B-tree for range-scannable secondary indexes.

A classic B-tree (not B+); every node stores keys and per-key value lists so
duplicate index keys (many records sharing a year, say) cost one key slot.
``order`` is the maximum number of children; nodes hold between
``ceil(order/2) - 1`` and ``order - 1`` keys except the root.

Keys must be mutually comparable (the store layer guarantees this by
building keys as same-shape tuples).  The structure is single-threaded by
design, matching the embedded single-writer store.

The implementation favours clarity over micro-optimization but keeps the
right asymptotics: O(log n) point ops, O(log n + k) range scans.
``validate()`` checks every structural invariant and is exercised heavily by
the property-based tests.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Any, Iterable, Iterator

from repro.obs import metrics as _metrics

_SPLITS = _metrics.counter("storage.btree.node_splits")
_SEARCHES = _metrics.counter("storage.btree.searches")
_BULK_LOADS = _metrics.counter("storage.btree.bulk_loads")
_BULK_PAIRS = _metrics.counter("storage.btree.bulk_load.pairs")


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[list[Any]] = []  # parallel to keys
        self.children: list[_Node] = []  # empty iff leaf

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _group_sorted(pairs: Iterable[tuple[Any, Any]]) -> list[tuple[Any, list[Any]]]:
    """Group key-ordered ``(key, value)`` pairs into ``(key, values)`` runs."""
    grouped: list[tuple[Any, list[Any]]] = []
    for key, value in pairs:
        if grouped and grouped[-1][0] == key:
            grouped[-1][1].append(value)
        else:
            grouped.append((key, [value]))
    return grouped


class BTree:
    """Ordered multimap backed by a B-tree.

    >>> tree = BTree(order=4)
    >>> for k in [5, 1, 9, 3, 7]:
    ...     tree.insert(k, f"v{k}")
    >>> tree.search(3)
    ['v3']
    >>> [k for k, _ in tree.range(3, 7)]
    [3, 5, 7]
    >>> tree.remove(3, "v3")
    True
    >>> tree.search(3)
    []
    """

    def __init__(self, *, order: int = 32):
        if order < 3:
            raise ValueError(f"order must be >= 3, got {order}")
        self.order = order
        # Classic CLRS formulation via minimum degree t: nodes hold between
        # t-1 and 2t-1 keys.  An odd maximum is required so a preemptive
        # split of a full node yields two valid t-1-key halves plus the
        # median; deriving both bounds from t guarantees that for any
        # requested order.
        self._t = max(2, order // 2)
        self._root = _Node()
        self._len = 0  # number of (key, value) pairs
        self._key_count = 0  # number of distinct keys

    @classmethod
    def from_sorted(
        cls, items: "Iterator[tuple[Any, list[Any]]] | list[tuple[Any, list[Any]]]",
        *,
        order: int = 32,
    ) -> "BTree":
        """Bulk-load a tree from ``(key, values)`` pairs sorted by key.

        Builds bottom-up in O(n).  Node counts per level are computed
        first and the content distributed as evenly as possible (sizes
        differing by at most one), which keeps every node provably within
        the B-tree fill bounds — no rebalancing pass needed.  Keys must be
        strictly increasing.

        >>> tree = BTree.from_sorted([(k, [f"v{k}"]) for k in range(100)], order=4)
        >>> tree.validate()
        >>> [k for k, _ in tree.range(40, 44)]
        [40, 41, 42, 43, 44]
        """
        tree = cls(order=order)
        pairs = list(items)
        _BULK_LOADS.inc()
        _BULK_PAIRS.inc(sum(len(v) for _, v in pairs))
        if not pairs:
            return tree
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if not a < b:
                raise ValueError(f"keys not strictly increasing: {a!r} !< {b!r}")

        cap = tree._max_keys
        total = len(pairs)

        # Leaf level.  A run of m leaves plus the m-1 promoted separators
        # holds at most m*cap + (m-1) pairs; the smallest such m keeps the
        # evenly-distributed leaf sizes within [cap/2, cap] ⊆ [min, cap].
        leaf_count = -(-(total + 1) // (cap + 1))  # ceil((N+1)/(cap+1))
        key_total = total - (leaf_count - 1)
        base, extra = divmod(key_total, leaf_count)
        leaves: list[_Node] = []
        separators: list[tuple[Any, list[Any]]] = []
        i = 0
        for leaf_index in range(leaf_count):
            size = base + (1 if leaf_index < extra else 0)
            node = _Node()
            node.keys = [k for k, _ in pairs[i : i + size]]
            node.values = [list(v) for _, v in pairs[i : i + size]]
            leaves.append(node)
            i += size
            if leaf_index < leaf_count - 1:
                separator_key, separator_values = pairs[i]
                separators.append((separator_key, list(separator_values)))
                i += 1
        assert i == total

        # Internal levels: distribute children evenly over
        # ceil(C/(cap+1)) parents; separator j of a level sits between
        # that level's nodes j and j+1, and the separator between two
        # parent groups is promoted upward.
        level = leaves
        level_separators = separators
        while len(level) > 1:
            child_count = len(level)
            parent_count = -(-child_count // (cap + 1))
            base, extra = divmod(child_count, parent_count)
            parents: list[_Node] = []
            upper_separators: list[tuple[Any, list[Any]]] = []
            i = 0
            for parent_index in range(parent_count):
                take = base + (1 if parent_index < extra else 0)
                node = _Node()
                node.children = level[i : i + take]
                node.keys = [k for k, _ in level_separators[i : i + take - 1]]
                node.values = [v for _, v in level_separators[i : i + take - 1]]
                parents.append(node)
                i += take
                if parent_index < parent_count - 1:
                    upper_separators.append(level_separators[i - 1])
            level = parents
            level_separators = upper_separators

        tree._root = level[0]
        tree._len = sum(len(v) for _, v in pairs)
        tree._key_count = total
        return tree

    @classmethod
    def bulk_load(
        cls, pairs: "Iterable[tuple[Any, Any]]", *, order: int = 32
    ) -> "BTree":
        """Bulk-load a tree from ``(key, value)`` pairs sorted by key.

        The streaming entry point for batched index builds: duplicate
        keys are allowed (values keep their arrival order) and the tree
        is constructed bottom-up with no per-insert node splits.

        >>> tree = BTree.bulk_load([(1, "a"), (1, "b"), (2, "c")], order=4)
        >>> tree.search(1)
        ['a', 'b']
        """
        return cls.from_sorted(_group_sorted(pairs), order=order)

    def insert_many(self, pairs: list[tuple[Any, Any]]) -> None:
        """Insert many ``(key, value)`` pairs, sorted by key, in one batch.

        A batch that fills an empty tree — or is at least a quarter of the
        tree's current size — is merged with the existing items and the
        tree rebuilt bottom-up: O(n + m) with zero node splits.  Smaller
        batches fall back to ordinary inserts (sorted order still helps:
        consecutive inserts descend mostly-warm paths).
        """
        if not pairs:
            return
        if self._key_count and len(pairs) * 4 < self._len:
            for key, value in pairs:
                self.insert(key, value)
            return
        # Merge-rebuild: items() and pairs are both key-ordered; heapq.merge
        # keeps existing values ahead of new ones under equal keys, matching
        # what sequential insert() calls would have produced.
        merged = _group_sorted(
            heapq.merge(self.items(), pairs, key=lambda kv: kv[0])
        )
        rebuilt = BTree.from_sorted(merged, order=self.order)
        self._root = rebuilt._root
        self._len = rebuilt._len
        self._key_count = rebuilt._key_count

    # -- capacity rules ----------------------------------------------------

    @property
    def _max_keys(self) -> int:
        return 2 * self._t - 1

    @property
    def _min_keys(self) -> int:
        return self._t - 1

    def __len__(self) -> int:
        return self._len

    @property
    def distinct_keys(self) -> int:
        return self._key_count

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone root)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    # -- search ------------------------------------------------------------

    def search(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (empty list when absent)."""
        _SEARCHES.inc()
        node = self._root
        while True:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return list(node.values[i])
            if node.is_leaf:
                return []
            node = node.children[i]

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def min_key(self) -> Any:
        """Smallest key; raises ``KeyError`` on an empty tree."""
        if self._key_count == 0:
            raise KeyError("empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Any:
        """Largest key; raises ``KeyError`` on an empty tree."""
        if self._key_count == 0:
            raise KeyError("empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # -- iteration ----------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order (values in insertion order)."""
        yield from self._iter_node(self._root)

    def keys(self) -> Iterator[Any]:
        """Distinct keys in order."""
        last_sentinel = object()
        last: Any = last_sentinel
        for key, _ in self.items():
            if last is last_sentinel or key != last:
                yield key
                last = key

    def _iter_node(self, node: _Node) -> Iterator[tuple[Any, Any]]:
        if node.is_leaf:
            for key, values in zip(node.keys, node.values):
                for value in values:
                    yield (key, value)
            return
        for i, (key, values) in enumerate(zip(node.keys, node.values)):
            yield from self._iter_node(node.children[i])
            for value in values:
                yield (key, value)
        yield from self._iter_node(node.children[-1])

    def range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with ``low <= key <= high`` in key order.

        ``None`` bounds are open ends.  Inclusivity of each bound is
        controlled independently.
        """
        yield from self._range_node(self._root, low, high, include_low, include_high)

    def _range_node(
        self, node: _Node, low: Any, high: Any, inc_low: bool, inc_high: bool
    ) -> Iterator[tuple[Any, Any]]:
        # keys[start] is the first key >= low; children[start] may still
        # hold in-range keys in (keys[start-1], keys[start]).
        start = 0 if low is None else bisect.bisect_left(node.keys, low)
        for i in range(start, len(node.keys) + 1):
            if not node.is_leaf:
                yield from self._range_node(node.children[i], low, high, inc_low, inc_high)
            if i == len(node.keys):
                break
            key = node.keys[i]
            if high is not None and (key > high or (key == high and not inc_high)):
                return  # this key and every subtree to the right exceed high
            if low is None or key > low or (key == low and inc_low):
                for value in node.values[i]:
                    yield (key, value)

    # -- insertion -----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key`` (duplicates under one key allowed)."""
        root = self._root
        if len(root.keys) == self._max_keys:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)
        self._len += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        _SPLITS.inc()
        full = parent.children[index]
        mid = len(full.keys) // 2
        sibling = _Node()
        sibling.keys = full.keys[mid + 1 :]
        sibling.values = full.values[mid + 1 :]
        if not full.is_leaf:
            sibling.children = full.children[mid + 1 :]
            full.children = full.children[: mid + 1]
        parent.keys.insert(index, full.keys[mid])
        parent.values.insert(index, full.values[mid])
        parent.children.insert(index + 1, sibling)
        full.keys = full.keys[:mid]
        full.values = full.values[:mid]

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i].append(value)
                return
            if node.is_leaf:
                node.keys.insert(i, key)
                node.values.insert(i, [value])
                self._key_count += 1
                return
            child = node.children[i]
            if len(child.keys) == self._max_keys:
                self._split_child(node, i)
                if node.keys[i] == key:
                    node.values[i].append(value)
                    return
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    # -- deletion --------------------------------------------------------------

    def remove(self, key: Any, value: Any | None = None) -> bool:
        """Remove ``value`` from ``key``'s list (or the whole key).

        With ``value=None`` the key and all its values are removed.  Returns
        True when something was removed.
        """
        values = self.search(key)
        if not values:
            return False
        if value is not None:
            if value not in values:
                return False
            if len(values) > 1:
                self._remove_one_value(key, value)
                self._len -= 1
                return True
            # fall through: removing the last value removes the key
        removed_count = len(values)
        self._delete_key(self._root, key)
        self._len -= removed_count
        self._key_count -= 1
        if not self._root.keys and not self._root.is_leaf:
            self._root = self._root.children[0]
        return True

    def _remove_one_value(self, key: Any, value: Any) -> None:
        node = self._root
        while True:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i].remove(value)
                return
            node = node.children[i]

    def _delete_key(self, node: _Node, key: Any) -> None:
        i = bisect.bisect_left(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            if node.is_leaf:
                node.keys.pop(i)
                node.values.pop(i)
                return
            self._delete_internal(node, i)
            return
        if node.is_leaf:
            return  # key absent; callers pre-check via search()
        child_index = i
        self._ensure_child_min(node, child_index)
        # _ensure_child_min may have shifted separators; recompute position.
        i = bisect.bisect_left(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            self._delete_internal(node, i)
            return
        self._delete_key(node.children[i], key)

    def _delete_internal(self, node: _Node, i: int) -> None:
        """Delete the separator key at ``node.keys[i]`` (internal node)."""
        left, right = node.children[i], node.children[i + 1]
        if len(left.keys) > self._min_keys:
            pred_key, pred_values = self._pop_max(left)
            node.keys[i] = pred_key
            node.values[i] = pred_values
        elif len(right.keys) > self._min_keys:
            succ_key, succ_values = self._pop_min(right)
            node.keys[i] = succ_key
            node.values[i] = succ_values
        else:
            # Merge the separator and the right child into the left child,
            # then delete from the merged node.
            key = node.keys[i]
            self._merge_children(node, i)
            self._delete_key(node.children[i], key)

    def _pop_max(self, node: _Node) -> tuple[Any, list[Any]]:
        while not node.is_leaf:
            self._ensure_child_min(node, len(node.children) - 1)
            node = node.children[-1]
        return node.keys.pop(), node.values.pop()

    def _pop_min(self, node: _Node) -> tuple[Any, list[Any]]:
        while not node.is_leaf:
            self._ensure_child_min(node, 0)
            node = node.children[0]
        key = node.keys.pop(0)
        values = node.values.pop(0)
        return key, values

    def _ensure_child_min(self, node: _Node, i: int) -> None:
        """Guarantee ``node.children[i]`` has more than the minimum keys."""
        i = min(i, len(node.children) - 1)
        child = node.children[i]
        if len(child.keys) > self._min_keys:
            return
        if i > 0 and len(node.children[i - 1].keys) > self._min_keys:
            self._rotate_right(node, i - 1)
        elif i + 1 < len(node.children) and len(node.children[i + 1].keys) > self._min_keys:
            self._rotate_left(node, i)
        elif i > 0:
            self._merge_children(node, i - 1)
        else:
            self._merge_children(node, i)

    def _rotate_right(self, node: _Node, sep: int) -> None:
        """Move one key from children[sep] through separator into children[sep+1]."""
        left, right = node.children[sep], node.children[sep + 1]
        right.keys.insert(0, node.keys[sep])
        right.values.insert(0, node.values[sep])
        node.keys[sep] = left.keys.pop()
        node.values[sep] = left.values.pop()
        if not left.is_leaf:
            right.children.insert(0, left.children.pop())

    def _rotate_left(self, node: _Node, sep: int) -> None:
        """Move one key from children[sep+1] through separator into children[sep]."""
        left, right = node.children[sep], node.children[sep + 1]
        left.keys.append(node.keys[sep])
        left.values.append(node.values[sep])
        node.keys[sep] = right.keys.pop(0)
        node.values[sep] = right.values.pop(0)
        if not right.is_leaf:
            left.children.append(right.children.pop(0))

    def _merge_children(self, node: _Node, sep: int) -> None:
        """Merge children[sep], separator, children[sep+1] into children[sep]."""
        left, right = node.children[sep], node.children[sep + 1]
        left.keys.append(node.keys.pop(sep))
        left.values.append(node.values.pop(sep))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(sep + 1)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check all B-tree invariants; raises ``AssertionError`` on failure.

        Checked: key ordering within nodes, separator ordering across
        subtrees, node fill bounds, uniform leaf depth, parallel
        keys/values lengths, and the cached counters.
        """
        leaf_depths: set[int] = set()
        seen_pairs = self._validate_node(self._root, None, None, 0, leaf_depths, is_root=True)
        assert len(leaf_depths) <= 1, f"leaves at differing depths: {leaf_depths}"
        assert seen_pairs == self._len, f"len cache {self._len} != actual {seen_pairs}"
        keys = list(self.keys())
        assert keys == sorted(keys), "keys() not sorted"
        assert len(keys) == self._key_count, (
            f"key-count cache {self._key_count} != actual {len(keys)}"
        )

    def _validate_node(
        self,
        node: _Node,
        low: Any,
        high: Any,
        depth: int,
        leaf_depths: set[int],
        *,
        is_root: bool,
    ) -> int:
        assert len(node.keys) == len(node.values), "keys/values length mismatch"
        if not is_root:
            assert len(node.keys) >= self._min_keys, (
                f"underfull node: {len(node.keys)} < {self._min_keys}"
            )
        assert len(node.keys) <= self._max_keys, "overfull node"
        for a, b in zip(node.keys, node.keys[1:]):
            assert a < b, f"node keys out of order: {a!r} >= {b!r}"
        for key, values in zip(node.keys, node.values):
            assert values, f"empty value list under key {key!r}"
            if low is not None:
                assert key > low, f"key {key!r} <= lower bound {low!r}"
            if high is not None:
                assert key < high, f"key {key!r} >= upper bound {high!r}"
        count = sum(len(v) for v in node.values)
        if node.is_leaf:
            leaf_depths.add(depth)
            return count
        assert len(node.children) == len(node.keys) + 1, "child count mismatch"
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            count += self._validate_node(
                child, bounds[i], bounds[i + 1], depth + 1, leaf_depths, is_root=False
            )
        return count

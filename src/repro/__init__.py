"""repro — a bibliographic author-index engine.

Reproduction of the front-matter artifact *Author Index* as a system: the
library a publisher would run to produce a printed author index from a
database of publication records.

Quickstart::

    from repro import PublicationRecord, build_index

    records = [
        PublicationRecord.create(
            1, "Habeas Corpus in West Virginia",
            ["Fox, Fred L., II*"], "69:293 (1967)"),
    ]
    index = build_index(records)
    print(index.render("text", paginated=False))

Subpackages
-----------
core
    The index pipeline: builder, collation, pagination, renderers.
names / citation / textproc
    Parsing substrates for names, citations, and scanned text.
storage / query
    The embedded record store and its query engine.
corpus
    Reference data (the artifact itself), raw-text ingest, and the
    synthetic corpus generator.
baselines
    Naive comparison implementations used by the benchmarks.
obs
    Zero-dependency observability: metrics registry, span tracing, and
    snapshot exporters (see ``docs/observability.md``).
"""

from repro import obs
from repro.citation import Citation, parse_citation
from repro.core import (
    AuthorIndex,
    AuthorIndexBuilder,
    CollationOptions,
    IndexEntry,
    PublicationRecord,
    build_index,
)
from repro.errors import ReproError
from repro.names import PersonName, parse_name
from repro.query import QueryEngine, parse_query
from repro.repository import PublicationRepository
from repro.storage import Field, FieldType, IndexKind, RecordStore, Schema

__version__ = "1.0.0"

__all__ = [
    "obs",
    "Citation",
    "parse_citation",
    "AuthorIndex",
    "AuthorIndexBuilder",
    "CollationOptions",
    "IndexEntry",
    "PublicationRecord",
    "build_index",
    "ReproError",
    "PersonName",
    "parse_name",
    "QueryEngine",
    "parse_query",
    "PublicationRepository",
    "Field",
    "FieldType",
    "IndexKind",
    "RecordStore",
    "Schema",
    "__version__",
]

"""Exception hierarchy for the :mod:`repro` library.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause while the
subclasses keep error handling precise.  Errors carry enough structured
context (offsets, field names, record ids) to be actionable without string
parsing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParseError(ReproError):
    """Raised when structured text cannot be parsed.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    text:
        The offending input (may be truncated by the caller).
    position:
        Zero-based offset into ``text`` where the problem was detected, or
        ``None`` when no single position applies.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is not None:
            return f"{base} (at offset {self.position} in {self.text!r})"
        if self.text:
            return f"{base} (in {self.text!r})"
        return base


class NameParseError(ParseError):
    """Raised when an author name cannot be parsed."""


class CitationParseError(ParseError):
    """Raised when a citation string cannot be parsed."""


class QueryError(ReproError):
    """Base class for query-engine errors."""


class QuerySyntaxError(QueryError, ParseError):
    """Raised when a query string is syntactically invalid."""


class QueryPlanError(QueryError):
    """Raised when a valid query cannot be planned (e.g. unknown field)."""


class QueryInterrupted(QueryError):
    """Base class for executions stopped before completing normally.

    Carries partial-progress context so callers (and EXPLAIN ANALYZE)
    can report how far the query got: ``rows_examined`` counts rows the
    access path had touched, ``elapsed_s`` is wall time since the guard
    was armed.  ``partial`` optionally holds a partial
    :class:`~repro.query.executor.QueryProfile` when the interruption
    happened under ``profile=True``.
    """

    def __init__(
        self,
        message: str,
        *,
        rows_examined: int = 0,
        elapsed_s: float = 0.0,
    ):
        super().__init__(message)
        self.rows_examined = rows_examined
        self.elapsed_s = elapsed_s
        self.partial: object | None = None


class QueryTimeout(QueryInterrupted):
    """Raised when a query's deadline expires mid-execution."""

    def __init__(
        self,
        message: str,
        *,
        timeout_s: float | None = None,
        rows_examined: int = 0,
        elapsed_s: float = 0.0,
    ):
        super().__init__(message, rows_examined=rows_examined, elapsed_s=elapsed_s)
        self.timeout_s = timeout_s


class QueryCancelled(QueryInterrupted):
    """Raised when a query's :class:`~repro.resilience.CancelToken` fires."""


class BudgetExceeded(QueryInterrupted):
    """Raised when a query exhausts its row or byte budget.

    ``budget`` names the exhausted dimension (``"rows"`` or ``"bytes"``),
    ``limit`` its configured bound, ``used`` the amount consumed when the
    guard tripped.
    """

    def __init__(
        self,
        message: str,
        *,
        budget: str = "rows",
        limit: int = 0,
        used: int = 0,
        rows_examined: int = 0,
        elapsed_s: float = 0.0,
    ):
        super().__init__(message, rows_examined=rows_examined, elapsed_s=elapsed_s)
        self.budget = budget
        self.limit = limit
        self.used = used


class AdmissionRejected(ReproError):
    """Raised when the admission gate sheds a request (queue full/timed out).

    ``retry_after_s`` is the backoff hint surfaced to clients (the HTTP
    layer maps it to a 429 response with a ``Retry-After`` header);
    ``reason`` is ``"queue-full"`` or ``"queue-timeout"``.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0, reason: str = "queue-full"):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason


class StorageError(ReproError):
    """Base class for storage-engine errors."""


class CorruptLogError(StorageError):
    """Raised when the write-ahead log fails CRC or framing validation."""

    def __init__(self, message: str, offset: int | None = None):
        super().__init__(message)
        self.offset = offset


class DuplicateKeyError(StorageError):
    """Raised when inserting a record whose primary key already exists."""

    def __init__(self, key: object):
        super().__init__(f"duplicate primary key: {key!r}")
        self.key = key


class RecordNotFoundError(StorageError):
    """Raised when a record id does not exist in the store."""

    def __init__(self, key: object):
        super().__init__(f"no record with primary key: {key!r}")
        self.key = key


class TransactionError(StorageError):
    """Raised on invalid transaction usage (nested begin, commit w/o begin)."""


class MultiShardError(StorageError):
    """Raised when parallel work failed on more than one shard.

    ``failures`` maps shard index → the exception that shard raised, so
    callers see *every* failed shard instead of just the first one (the
    others' committed work stands — shards are independent durability
    domains, and cross-shard bulk writes are not atomic once the
    per-shard commits begin).
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        detail = "; ".join(
            f"shard {shard}: {type(exc).__name__}: {exc}"
            for shard, exc in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} shards failed: {detail}")


class ShardUnavailableError(StorageError):
    """Raised when a strict query touches a quarantined/repairing shard."""

    def __init__(self, shard: int, state: str, reason: str = ""):
        suffix = f" ({reason})" if reason else ""
        super().__init__(f"shard {shard} is {state}{suffix}")
        self.shard = shard
        self.state = state
        self.reason = reason


class ValidationError(ReproError):
    """Raised when a record or entry violates a model invariant."""

    def __init__(self, message: str, field: str | None = None):
        super().__init__(message)
        self.field = field


class RenderError(ReproError):
    """Raised when an index cannot be rendered to the requested format."""


class CorpusError(ReproError):
    """Raised when corpus data files are missing or malformed."""

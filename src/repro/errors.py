"""Exception hierarchy for the :mod:`repro` library.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause while the
subclasses keep error handling precise.  Errors carry enough structured
context (offsets, field names, record ids) to be actionable without string
parsing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParseError(ReproError):
    """Raised when structured text cannot be parsed.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    text:
        The offending input (may be truncated by the caller).
    position:
        Zero-based offset into ``text`` where the problem was detected, or
        ``None`` when no single position applies.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is not None:
            return f"{base} (at offset {self.position} in {self.text!r})"
        if self.text:
            return f"{base} (in {self.text!r})"
        return base


class NameParseError(ParseError):
    """Raised when an author name cannot be parsed."""


class CitationParseError(ParseError):
    """Raised when a citation string cannot be parsed."""


class QueryError(ReproError):
    """Base class for query-engine errors."""


class QuerySyntaxError(QueryError, ParseError):
    """Raised when a query string is syntactically invalid."""


class QueryPlanError(QueryError):
    """Raised when a valid query cannot be planned (e.g. unknown field)."""


class StorageError(ReproError):
    """Base class for storage-engine errors."""


class CorruptLogError(StorageError):
    """Raised when the write-ahead log fails CRC or framing validation."""

    def __init__(self, message: str, offset: int | None = None):
        super().__init__(message)
        self.offset = offset


class DuplicateKeyError(StorageError):
    """Raised when inserting a record whose primary key already exists."""

    def __init__(self, key: object):
        super().__init__(f"duplicate primary key: {key!r}")
        self.key = key


class RecordNotFoundError(StorageError):
    """Raised when a record id does not exist in the store."""

    def __init__(self, key: object):
        super().__init__(f"no record with primary key: {key!r}")
        self.key = key


class TransactionError(StorageError):
    """Raised on invalid transaction usage (nested begin, commit w/o begin)."""


class ValidationError(ReproError):
    """Raised when a record or entry violates a model invariant."""

    def __init__(self, message: str, field: str | None = None):
        super().__init__(message)
        self.field = field


class RenderError(ReproError):
    """Raised when an index cannot be rendered to the requested format."""


class CorpusError(ReproError):
    """Raised when corpus data files are missing or malformed."""

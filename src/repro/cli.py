"""Command-line interface: ``python -m repro`` / ``repro-index``.

Subcommands
-----------
``build``
    Build an author index from a JSON corpus (or the bundled reference
    corpus) and render it to any registered format.
``ingest``
    Parse raw OCR'd index text into the JSON corpus format.
``query``
    Run a query against a corpus loaded into the embedded store.
    ``--explain`` prints the plan; ``--profile`` executes with
    EXPLAIN ANALYZE-style per-operator timings and row counts
    (``--json`` for the machine-readable form).
``stats``
    Print corpus/index statistics, or — with ``--metrics`` — run the
    full pipeline (storage, build, query, search) against the corpus and
    dump the observability registry snapshot (JSON by default).
``formats``
    List available render formats.
``fsck``
    Check (and with ``--repair``, repair) the integrity of a store
    directory: snapshot manifest, WAL segment chain, CRC frames, crash
    artifacts.  Exit code 0 = clean/repaired, 1 = repairable damage
    found (run again with ``--repair``), 2 = fatal damage.
``checkpoint``
    Open a store directory, replay its WAL, and checkpoint it: write a
    verified snapshot and delete the WAL segments it covers.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.core import CollationOptions
from repro.core.builder import AuthorIndexBuilder
from repro.core.entry import PublicationRecord
from repro.core.render import available_formats
from repro.corpus import (
    PUBLICATION_SCHEMA,
    load_reference_records,
    parse_index_text,
    populate_store,
)
from repro.errors import ReproError
from repro.query import QueryEngine
from repro.storage import IndexKind, RecordStore


def _load_corpus(path: str | None) -> list[PublicationRecord]:
    """Records from a JSON corpus file, or the bundled reference corpus."""
    if path is None:
        return load_reference_records()
    with open(path, encoding="utf-8") as fh:
        raw = json.load(fh)
    items = raw["records"] if isinstance(raw, dict) else raw
    return [
        PublicationRecord.create(
            item.get("id", i + 1), item["title"], item["authors"], item["citation"]
        )
        for i, item in enumerate(items)
    ]


def _cmd_build(args: argparse.Namespace) -> int:
    records = _load_corpus(args.corpus)
    options = CollationOptions(mc_as_mac=args.mc_as_mac)
    builder = AuthorIndexBuilder(options=options, resolve_variants=args.resolve)
    index = builder.add_records(records).build()
    render_options: dict[str, object] = {}
    if args.format == "text":
        render_options["paginated"] = not args.no_pages
    output = index.render(args.format, **render_options)
    if args.output:
        Path(args.output).write_text(output, encoding="utf-8")
        print(f"wrote {len(output)} characters to {args.output}", file=sys.stderr)
    else:
        print(output, end="")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    text = Path(args.input).read_text(encoding="utf-8")
    report = parse_index_text(text)
    corpus = {
        "records": [
            {
                "id": r.record_id,
                "title": r.title,
                "authors": [
                    a.inverted() + ("*" if r.is_student_work else "")
                    for a in r.authors
                ],
                "citation": r.citation.columnar(),
            }
            for r in report.records
        ]
    }
    output = json.dumps(corpus, indent=2, ensure_ascii=False)
    if args.output:
        Path(args.output).write_text(output, encoding="utf-8")
    else:
        print(output)
    print(
        f"parsed {report.record_count} records "
        f"({report.furniture_lines} furniture lines dropped, "
        f"{len(report.warnings)} warnings)",
        file=sys.stderr,
    )
    if args.show_warnings:
        for warning in report.warnings:
            print(f"  warning: {warning}", file=sys.stderr)
    return 0


def _print_rows(rows: list[dict]) -> None:
    for row in rows:
        authors = "; ".join(row["authors"])
        print(f"{authors} | {row['title']} | {row['volume']}:{row['page']} ({row['year']})")
    print(f"({len(rows)} rows)", file=sys.stderr)


def _cmd_query(args: argparse.Namespace) -> int:
    records = _load_corpus(args.corpus)
    store = RecordStore(PUBLICATION_SCHEMA)
    populate_store(store, records)
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    store.create_index("volume", IndexKind.BTREE)
    engine = QueryEngine(store)
    if args.explain:
        print(engine.explain(args.query))
        return 0
    if args.profile:
        profile = engine.execute(args.query, profile=True)
        if args.json:
            print(json.dumps(
                {"rows": profile.rows, "profile": profile.to_dict()},
                indent=2, ensure_ascii=False,
            ))
        else:
            print(profile.render())
            print()
            _print_rows(profile.rows)
        return 0
    _print_rows(engine.execute(args.query))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.metrics:
        return _cmd_stats_metrics(args)
    records = _load_corpus(args.corpus)
    index = AuthorIndexBuilder().add_records(records).build()
    print(index.statistics().summary())
    return 0


def _cmd_stats_metrics(args: argparse.Namespace) -> int:
    """Exercise every pipeline over the corpus, dump the metrics registry.

    The snapshot therefore always contains the four metric families
    (``storage.*``, ``build.*``, ``query.*``, ``search.*``) for one
    complete, reproducible workload — the baseline ``repro stats
    --metrics`` runs are diffable across revisions via the jsonl format.
    """
    from repro import obs
    from repro.search.engine import TitleSearchEngine

    registry = obs.get_default_registry()
    registry.reset()
    records = _load_corpus(args.corpus)
    # A disk-backed store so the WAL append/flush metrics move too.
    with tempfile.TemporaryDirectory(prefix="repro-stats-") as tmp:
        with RecordStore(PUBLICATION_SCHEMA, directory=tmp) as store:
            populate_store(store, records)
            store.create_index("surnames", IndexKind.HASH)
            store.create_index("year", IndexKind.BTREE)
            store.create_index("volume", IndexKind.BTREE)
            AuthorIndexBuilder().add_records(records).build()
            engine = QueryEngine(store)
            # Run the same query twice: the first planning is a
            # query.planner.cache.miss, the repeat a cache.hit, so the
            # snapshot always shows the plan cache moving.
            engine.execute("year >= 1900 ORDER BY year LIMIT 25")
            engine.execute("year >= 1900 ORDER BY year LIMIT 25")
            TitleSearchEngine(records).search("law")
            # Checkpoint last so the storage.checkpoint.* family (and a
            # WAL rotation) always moves in the baseline snapshot.
            store.checkpoint()
        # Snapshot after the store closes: the WAL flushes its locally
        # batched append counters to the registry on close.
        snapshot = registry.snapshot()
    if args.metrics_format == "text":
        print(obs.export.render_text(snapshot))
    elif args.metrics_format == "jsonl":
        print(obs.export.render_jsonl(snapshot))
    else:
        print(obs.export.render_json(snapshot))
    return 0


def _cmd_formats(_args: argparse.Namespace) -> int:
    for name in available_formats():
        print(name)
    return 0


def _cmd_bundle(args: argparse.Namespace) -> int:
    from repro.core.kwic import build_kwic_index
    from repro.core.titleindex import build_title_index
    from repro.core.toc import build_toc

    records = _load_corpus(args.corpus)
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    author_index = AuthorIndexBuilder().add_records(records).build()
    (out_dir / "author_index.txt").write_text(
        author_index.render("text"), encoding="utf-8"
    )
    (out_dir / "title_index.txt").write_text(
        build_title_index(records).render_text(), encoding="utf-8"
    )
    (out_dir / "subject_index.txt").write_text(
        build_kwic_index(records, min_group_size=2).render_text(), encoding="utf-8"
    )
    (out_dir / "contents.txt").write_text(
        build_toc(records).render_text(), encoding="utf-8"
    )
    print(f"wrote 4 index files to {out_dir}/", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import corpus_report

    records = _load_corpus(args.corpus)
    stopwords = set(args.suppress.split(",")) if args.suppress else set()
    output = corpus_report(
        records, title=args.title, keyword_stopwords=stopwords
    )
    if args.output:
        Path(args.output).write_text(output, encoding="utf-8")
        print(f"wrote report to {args.output}", file=sys.stderr)
    else:
        print(output, end="")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.search.engine import TitleSearchEngine

    records = _load_corpus(args.corpus)
    engine = TitleSearchEngine(records)
    hits = engine.search(args.query, k=args.top)
    by_id = {r.record_id: r for r in records}
    for hit in hits:
        record = by_id[hit.record_id]
        authors = "; ".join(a.inverted() for a in record.authors)
        print(f"{hit.score:6.2f}  {record.title}  — {authors}  "
              f"[{record.citation.columnar()}]")
    print(f"({len(hits)} hits)", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.lint import lint_index

    records = _load_corpus(args.corpus)
    index = AuthorIndexBuilder().add_records(records).build()
    issues = lint_index(index)
    for issue in issues:
        print(issue)
    print(f"({len(issues)} issues)", file=sys.stderr)
    return 1 if issues and args.strict else 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.storage.fsck import fsck

    report = fsck(args.directory, repair=args.repair)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, ensure_ascii=False))
    else:
        print(report.render())
    return report.exit_code()


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    with RecordStore(PUBLICATION_SCHEMA, directory=args.directory) as store:
        before = store._wal.total_size_bytes
        store.checkpoint()
        after = store._wal.total_size_bytes
        print(
            f"checkpointed {len(store)} records; WAL {before} -> {after} bytes",
            file=sys.stderr,
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.export import dumps_csv, format_bibtex

    records = _load_corpus(args.corpus)
    if args.to == "bibtex":
        output = format_bibtex(records, journal=args.journal)
    else:
        output = dumps_csv(records)
    if args.output:
        Path(args.output).write_text(output, encoding="utf-8")
        print(f"wrote {len(records)} records to {args.output}", file=sys.stderr)
    else:
        print(output, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-index",
        description="Build, query, and render author indexes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build and render an author index")
    p_build.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_build.add_argument("--format", default="text", choices=available_formats())
    p_build.add_argument("--output", help="write to file instead of stdout")
    p_build.add_argument("--no-pages", action="store_true", help="continuous text output")
    p_build.add_argument("--resolve", action="store_true", help="entity-resolve name variants")
    p_build.add_argument("--mc-as-mac", action="store_true", help="file Mc as Mac")
    p_build.set_defaults(func=_cmd_build)

    p_ingest = sub.add_parser("ingest", help="parse raw OCR'd index text to JSON")
    p_ingest.add_argument("input", help="raw text file")
    p_ingest.add_argument("--output", help="JSON output path (default: stdout)")
    p_ingest.add_argument("--show-warnings", action="store_true")
    p_ingest.set_defaults(func=_cmd_ingest)

    p_query = sub.add_parser("query", help="query a corpus")
    p_query.add_argument("query", help='e.g. \'surnames:"McAteer" AND year >= 1980\'')
    p_query.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_query.add_argument("--explain", action="store_true", help="print the plan only")
    p_query.add_argument(
        "--profile",
        action="store_true",
        help="EXPLAIN ANALYZE: run the query and print the per-operator "
             "tree with timings and rows examined/returned",
    )
    p_query.add_argument(
        "--json",
        action="store_true",
        help="with --profile: emit rows and profile as one JSON document",
    )
    p_query.set_defaults(func=_cmd_query)

    p_stats = sub.add_parser("stats", help="print index statistics")
    p_stats.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_stats.add_argument(
        "--metrics",
        action="store_true",
        help="run the storage/build/query/search pipelines over the corpus "
             "and dump the observability metrics snapshot instead",
    )
    p_stats.add_argument(
        "--metrics-format",
        choices=("json", "jsonl", "text"),
        default="json",
        help="snapshot format for --metrics (default: json)",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_formats = sub.add_parser("formats", help="list render formats")
    p_formats.set_defaults(func=_cmd_formats)

    p_bundle = sub.add_parser(
        "bundle", help="write the full front-matter bundle (4 indexes)"
    )
    p_bundle.add_argument("output_dir", help="directory for the index files")
    p_bundle.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_bundle.set_defaults(func=_cmd_bundle)

    p_report = sub.add_parser("report", help="render the Markdown corpus report")
    p_report.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_report.add_argument("--title", default="Corpus report")
    p_report.add_argument("--suppress", help="comma-separated keyword stopwords")
    p_report.add_argument("--output", help="write to file instead of stdout")
    p_report.set_defaults(func=_cmd_report)

    p_search = sub.add_parser("search", help="full-text title search (TF-IDF)")
    p_search.add_argument("query", help='words AND-ed; "quoted" = phrase')
    p_search.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_search.add_argument("--top", type=int, default=10, help="max hits (default 10)")
    p_search.set_defaults(func=_cmd_search)

    p_lint = sub.add_parser("lint", help="editorial checks on the built index")
    p_lint.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_lint.add_argument("--strict", action="store_true", help="exit 1 on any issue")
    p_lint.set_defaults(func=_cmd_lint)

    p_export = sub.add_parser("export", help="export records as BibTeX or CSV")
    p_export.add_argument("--to", choices=("bibtex", "csv"), default="bibtex")
    p_export.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_export.add_argument("--journal", default="", help="journal field for BibTeX")
    p_export.add_argument("--output", help="write to file instead of stdout")
    p_export.set_defaults(func=_cmd_export)

    p_fsck = sub.add_parser(
        "fsck", help="check/repair the integrity of a store directory"
    )
    p_fsck.add_argument("directory", help="store directory (WAL + snapshot)")
    p_fsck.add_argument(
        "--repair",
        action="store_true",
        help="repair what is safely repairable (truncate torn tails, "
             "remove crash artifacts)",
    )
    p_fsck.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_fsck.set_defaults(func=_cmd_fsck)

    p_checkpoint = sub.add_parser(
        "checkpoint",
        help="snapshot a store directory and truncate its covered WAL segments",
    )
    p_checkpoint.add_argument("directory", help="store directory (WAL + snapshot)")
    p_checkpoint.set_defaults(func=_cmd_checkpoint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``python -m repro`` / ``repro-index``.

Subcommands
-----------
``build``
    Build an author index from a JSON corpus (or the bundled reference
    corpus) and render it to any registered format.
``ingest``
    Parse raw OCR'd index text into the JSON corpus format.
``query``
    Run a query against a corpus loaded into the embedded store.
    ``--explain`` prints the plan; ``--profile`` executes with
    EXPLAIN ANALYZE-style per-operator timings and row counts
    (``--json`` for the machine-readable form).  ``--timeout-ms`` /
    ``--max-rows`` bound the execution: a violated bound prints a
    one-line JSON error to stderr and exits 3 (deadline/cancel) or
    4 (budget).
``stats``
    Print corpus/index statistics, or — with ``--metrics`` — run the
    full pipeline (storage, build, query, search) against the corpus and
    dump the observability registry snapshot (JSON by default).
``formats``
    List available render formats.
``fsck``
    Check (and with ``--repair``, repair) the integrity of a store
    directory: snapshot manifest, WAL segment chain, CRC frames, crash
    artifacts.  Exit code 0 = clean/repaired, 1 = repairable damage
    found (run again with ``--repair``), 2 = fatal damage.  A sharded
    store root (``shards.json``) is detected automatically: every shard
    is checked, the exit code is the worst across shards, and ``--json``
    emits the per-shard report.
``checkpoint``
    Open a store directory, replay its WAL, and checkpoint it: write a
    verified snapshot and delete the WAL segments it covers.  Sharded
    roots are detected automatically and checkpointed shard-parallel.
    The on-disk data format is preserved by default; ``--paged``
    migrates to the paged B+ tree format (v3 manifest + ``store.pages``
    file, millisecond reopen), ``--memory`` migrates back to the
    classic inline-records snapshot.
``serve-telemetry``
    Run the stdlib HTTP telemetry daemon: ``/statusz`` (HTML dashboard),
    ``/metrics`` (Prometheus), ``/healthz`` (fsck-backed store health),
    ``/alertz`` (SLO burn-rate alerts), ``/progressz`` (in-flight long
    operations), ``/varz``, ``/tracez``, ``/logz``.  See
    ``docs/operations.md``.
``progress``
    One-shot (or ``--interval`` live) view of a running daemon's
    ``/progressz``: in-flight checkpoints, bulk builds, fsck walks, and
    sharded ingests with done/total, rate, and ETA.
``alerts``
    Evaluate declarative SLO rules (availability burn rate, latency,
    checkpoint staleness, WAL backlog) over a recorded metric sample
    ring — or poll a daemon's ``/alertz`` — and exit 1 when any rule is
    firing, so cron/CI can page on it.
``serve-query``
    The telemetry daemon plus a resilient ``/query`` endpoint: admission
    control with load shedding (429 + ``Retry-After``), per-query
    deadlines and row budgets, and a circuit breaker feeding
    ``/healthz``.  See ``docs/resilience.md``.
``logs``
    Tail structured log events: from a JSONL file (``--file``), or from
    an in-process run of the standard pipeline workload at debug level.
``top``
    The workload profiler's fingerprint table — which query shapes the
    process's work went to (calls, rows, CPU/wall time, bytes, plan-cache
    hits, interruptions).  ``--url`` polls a running daemon's ``/topz``
    (``--interval`` for a live view); without it, a mixed demo burst runs
    in-process and its table is shown.
``profile``
    Run the sampling wall-clock profiler for ``--seconds`` and write
    ``flamegraph.pl``-ready collapsed stacks: against a running daemon
    (``--url``, via ``/profilez``) or around an in-process query burst.
``workload-report``
    Seed a store (synthetic corpus by default), run a mixed query burst,
    and write the full workload report as JSON: per-fingerprint operator
    breakdowns, per-index key-usage, and exact key-distribution
    histograms — the shard-key planning input.  See ``docs/profiling.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.core import CollationOptions
from repro.core.builder import AuthorIndexBuilder
from repro.core.entry import PublicationRecord
from repro.core.render import available_formats
from repro.corpus import (
    PUBLICATION_SCHEMA,
    load_reference_records,
    parse_index_text,
    populate_store,
)
from repro.errors import (
    BudgetExceeded,
    QueryInterrupted,
    ReproError,
)
from repro.query import QueryEngine
from repro.storage import IndexKind, RecordStore

#: Exit code for a query stopped by its deadline or a cancellation.
EXIT_QUERY_INTERRUPTED = 3
#: Exit code for a query stopped by its row/byte budget.
EXIT_BUDGET_EXCEEDED = 4


def _load_corpus(path: str | None) -> list[PublicationRecord]:
    """Records from a JSON corpus file, or the bundled reference corpus."""
    if path is None:
        return load_reference_records()
    with open(path, encoding="utf-8") as fh:
        raw = json.load(fh)
    items = raw["records"] if isinstance(raw, dict) else raw
    return [
        PublicationRecord.create(
            item.get("id", i + 1), item["title"], item["authors"], item["citation"]
        )
        for i, item in enumerate(items)
    ]


def _records_via_shards(records: list[PublicationRecord], shards: int) -> list[PublicationRecord]:
    """Round-trip ``records`` through an N-shard store's scatter-gather path.

    The records come back via a sorted scan merged across shards —
    byte-identical to the input corpus order (primary keys are unique),
    so the built index is the same; the point is running the real
    partition + merge machinery when ``--shards`` is requested.
    """
    from repro.query import ShardedQueryEngine
    from repro.storage import ShardedStore

    with ShardedStore(PUBLICATION_SCHEMA, shards=shards) as store:
        populate_store(store, records)
        with ShardedQueryEngine(store) as engine:
            rows = engine.execute("* ORDER BY id")
    return [PublicationRecord.from_store_dict(row) for row in rows]


def _cmd_build(args: argparse.Namespace) -> int:
    records = _load_corpus(args.corpus)
    if args.shards:
        records = _records_via_shards(records, args.shards)
    options = CollationOptions(mc_as_mac=args.mc_as_mac)
    builder = AuthorIndexBuilder(options=options, resolve_variants=args.resolve)
    index = builder.add_records(records).build()
    render_options: dict[str, object] = {}
    if args.format == "text":
        render_options["paginated"] = not args.no_pages
    output = index.render(args.format, **render_options)
    if args.output:
        Path(args.output).write_text(output, encoding="utf-8")
        print(f"wrote {len(output)} characters to {args.output}", file=sys.stderr)
    else:
        print(output, end="")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    text = Path(args.input).read_text(encoding="utf-8")
    report = parse_index_text(text)
    corpus = {
        "records": [
            {
                "id": r.record_id,
                "title": r.title,
                "authors": [
                    a.inverted() + ("*" if r.is_student_work else "")
                    for a in r.authors
                ],
                "citation": r.citation.columnar(),
            }
            for r in report.records
        ]
    }
    output = json.dumps(corpus, indent=2, ensure_ascii=False)
    if args.output:
        Path(args.output).write_text(output, encoding="utf-8")
    else:
        print(output)
    if args.store:
        from repro.storage import ShardedStore

        data_format = "paged" if args.paged else "memory"
        with ShardedStore(
            PUBLICATION_SCHEMA, args.store, shards=args.shards or 1, sync=True,
            data_format=data_format,
        ) as store:
            store.put_many(r.to_store_dict() for r in report.records)
            store.checkpoint()
            print(
                f"stored {len(store)} records durably in "
                f"{store.shard_count} shard(s) at {args.store} "
                f"({data_format} format)",
                file=sys.stderr,
            )
    print(
        f"parsed {report.record_count} records "
        f"({report.furniture_lines} furniture lines dropped, "
        f"{len(report.warnings)} warnings)",
        file=sys.stderr,
    )
    if args.show_warnings:
        for warning in report.warnings:
            print(f"  warning: {warning}", file=sys.stderr)
    return 0


def _print_rows(rows: list[dict]) -> None:
    for row in rows:
        authors = "; ".join(row["authors"])
        print(f"{authors} | {row['title']} | {row['volume']}:{row['page']} ({row['year']})")
    print(f"({len(rows)} rows)", file=sys.stderr)


def _cmd_query(args: argparse.Namespace) -> int:
    records = _load_corpus(args.corpus)
    if args.shards:
        return _cmd_query_sharded(args, records)
    store = RecordStore(PUBLICATION_SCHEMA)
    populate_store(store, records)
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    store.create_index("volume", IndexKind.BTREE)
    slow_log = None
    if args.slow_log or args.slow_ms is not None:
        from repro.obs.slowlog import DEFAULT_THRESHOLD_S, SlowQueryLog

        threshold = (
            args.slow_ms / 1000.0 if args.slow_ms is not None else DEFAULT_THRESHOLD_S
        )
        slow_log = SlowQueryLog(args.slow_log, threshold_s=threshold)
    engine = QueryEngine(store, slow_log=slow_log)
    if args.explain:
        print(engine.explain(args.query))
        return 0
    bounds: dict = {}
    if args.timeout_ms is not None:
        bounds["timeout_s"] = args.timeout_ms / 1000.0
    if args.max_rows is not None:
        bounds["max_rows"] = args.max_rows
    if args.profile:
        profile = engine.execute(args.query, profile=True, **bounds)
        if args.json:
            print(json.dumps(
                {"rows": profile.rows, "profile": profile.to_dict()},
                indent=2, ensure_ascii=False,
            ))
        else:
            print(profile.render())
            print()
            _print_rows(profile.rows)
        return 0
    _print_rows(engine.execute(args.query, **bounds))
    return 0


def _cmd_query_sharded(args: argparse.Namespace, records: list[PublicationRecord]) -> int:
    """``query --shards N``: scatter-gather across an N-shard store."""
    from repro.query import ShardedQueryEngine
    from repro.storage import ShardedStore

    with ShardedStore(PUBLICATION_SCHEMA, shards=args.shards) as store:
        populate_store(store, records)
        store.create_index("surnames", IndexKind.HASH)
        store.create_index("year", IndexKind.BTREE)
        store.create_index("volume", IndexKind.BTREE)
        with ShardedQueryEngine(store) as engine:
            if args.explain:
                print(engine.explain(args.query))
                return 0
            bounds: dict = {}
            if args.timeout_ms is not None:
                bounds["timeout_s"] = args.timeout_ms / 1000.0
            if args.max_rows is not None:
                bounds["max_rows"] = args.max_rows
            if args.partial_ok:
                bounds["partial"] = True
            if args.profile:
                profile = engine.execute(args.query, profile=True, **bounds)
                if args.json:
                    print(json.dumps(
                        {"rows": profile.rows, "profile": profile.to_dict()},
                        indent=2, ensure_ascii=False,
                    ))
                else:
                    print(profile.render())
                    print()
                    _print_rows(profile.rows)
                return 0
            result = engine.execute(args.query, **bounds)
            _print_rows(result)
            if getattr(result, "partial", False):
                failed = ", ".join(str(s) for s in result.shards_failed)
                print(
                    f"warning: partial result — shard(s) {failed} "
                    "failed or quarantined and were skipped",
                    file=sys.stderr,
                )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.metrics:
        return _cmd_stats_metrics(args)
    records = _load_corpus(args.corpus)
    index = AuthorIndexBuilder().add_records(records).build()
    print(index.statistics().summary())
    return 0


def _run_standard_workload(corpus: str | None) -> dict:
    """Exercise every pipeline over the corpus; returns the registry snapshot.

    The snapshot therefore always contains the four metric families
    (``storage.*``, ``build.*``, ``query.*``, ``search.*``) for one
    complete, reproducible workload — the baseline ``repro stats
    --metrics`` runs are diffable across revisions via the jsonl format.
    """
    from repro import obs
    from repro.search.engine import TitleSearchEngine

    registry = obs.get_default_registry()
    registry.reset()
    records = _load_corpus(corpus)
    # A disk-backed store so the WAL append/flush metrics move too.
    with tempfile.TemporaryDirectory(prefix="repro-stats-") as tmp:
        with RecordStore(PUBLICATION_SCHEMA, directory=tmp) as store:
            populate_store(store, records)
            store.create_index("surnames", IndexKind.HASH)
            store.create_index("year", IndexKind.BTREE)
            store.create_index("volume", IndexKind.BTREE)
            AuthorIndexBuilder().add_records(records).build()
            engine = QueryEngine(store)
            # Run the same query twice: the first planning is a
            # query.planner.cache.miss, the repeat a cache.hit, so the
            # snapshot always shows the plan cache moving.
            engine.execute("year >= 1900 ORDER BY year LIMIT 25")
            engine.execute("year >= 1900 ORDER BY year LIMIT 25")
            TitleSearchEngine(records).search("law")
            # Checkpoint last so the storage.checkpoint.* family (and a
            # WAL rotation) always moves in the baseline snapshot.
            store.checkpoint()
        # Snapshot after the store closes: the WAL flushes its locally
        # batched append counters to the registry on close.
        return registry.snapshot()


def _cmd_stats_metrics(args: argparse.Namespace) -> int:
    """``stats --metrics``: run the standard workload, dump the registry."""
    from repro import obs

    if args.since is not None:
        return _cmd_stats_rates(args)
    snapshot = _run_standard_workload(args.corpus)
    if args.metrics_format == "text":
        print(obs.export.render_text(snapshot))
    elif args.metrics_format == "jsonl":
        print(obs.export.render_jsonl(snapshot))
    elif args.metrics_format == "prom":
        # Same renderer the telemetry daemon's /metrics endpoint uses.
        print(obs.render_prometheus(snapshot), end="")
    else:
        print(obs.export.render_json(snapshot))
    return 0


def _cmd_stats_rates(args: argparse.Namespace) -> int:
    """``stats --metrics --since N``: windowed counter rates.

    With ``--timeseries FILE``, rates come from the on-disk sample ring
    a telemetry daemon (or earlier run) recorded there.  Without it, the
    standard workload runs bracketed by two samples, so the rates
    describe that workload.
    """
    from repro.obs.timeseries import TimeSeriesLog

    if args.timeseries:
        ts = TimeSeriesLog(args.timeseries)
    else:
        from repro import obs

        # The workload resets the registry before running; reset before
        # the first sample too, so the pair brackets exactly one
        # workload even when an earlier command already ran one
        # in-process.
        obs.get_default_registry().reset()
        ts = TimeSeriesLog()
        ts.sample()
        _run_standard_workload(args.corpus)
        ts.sample()
    rates = ts.rates(args.since)
    print(json.dumps(rates, indent=2, sort_keys=True))
    return 0


def _cmd_formats(_args: argparse.Namespace) -> int:
    for name in available_formats():
        print(name)
    return 0


def _cmd_bundle(args: argparse.Namespace) -> int:
    from repro.core.kwic import build_kwic_index
    from repro.core.titleindex import build_title_index
    from repro.core.toc import build_toc

    records = _load_corpus(args.corpus)
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    author_index = AuthorIndexBuilder().add_records(records).build()
    (out_dir / "author_index.txt").write_text(
        author_index.render("text"), encoding="utf-8"
    )
    (out_dir / "title_index.txt").write_text(
        build_title_index(records).render_text(), encoding="utf-8"
    )
    (out_dir / "subject_index.txt").write_text(
        build_kwic_index(records, min_group_size=2).render_text(), encoding="utf-8"
    )
    (out_dir / "contents.txt").write_text(
        build_toc(records).render_text(), encoding="utf-8"
    )
    print(f"wrote 4 index files to {out_dir}/", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import corpus_report

    records = _load_corpus(args.corpus)
    stopwords = set(args.suppress.split(",")) if args.suppress else set()
    output = corpus_report(
        records, title=args.title, keyword_stopwords=stopwords
    )
    if args.output:
        Path(args.output).write_text(output, encoding="utf-8")
        print(f"wrote report to {args.output}", file=sys.stderr)
    else:
        print(output, end="")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.search.engine import TitleSearchEngine

    records = _load_corpus(args.corpus)
    engine = TitleSearchEngine(records)
    hits = engine.search(args.query, k=args.top)
    by_id = {r.record_id: r for r in records}
    for hit in hits:
        record = by_id[hit.record_id]
        authors = "; ".join(a.inverted() for a in record.authors)
        print(f"{hit.score:6.2f}  {record.title}  — {authors}  "
              f"[{record.citation.columnar()}]")
    print(f"({len(hits)} hits)", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.lint import lint_index

    records = _load_corpus(args.corpus)
    index = AuthorIndexBuilder().add_records(records).build()
    issues = lint_index(index)
    for issue in issues:
        print(issue)
    print(f"({len(issues)} issues)", file=sys.stderr)
    return 1 if issues and args.strict else 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.storage.fsck import fsck, fsck_sharded, is_sharded_root

    if is_sharded_root(args.directory):
        report = fsck_sharded(args.directory, repair=args.repair)
        if args.shards is not None and len(report.shard_reports) not in (0, args.shards):
            print(
                f"error: expected {args.shards} shards, store has "
                f"{len(report.shard_reports)}",
                file=sys.stderr,
            )
            return 2
    else:
        if args.shards is not None:
            print(
                "error: --shards given but the directory is not a sharded "
                "store root (no shards.json)",
                file=sys.stderr,
            )
            return 2
        report = fsck(args.directory, repair=args.repair)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, ensure_ascii=False))
    else:
        print(report.render())
    return report.exit_code()


def _detect_data_format(directory: Path | str) -> str:
    """The format the store at ``directory`` last checkpointed in.

    A version-3 ``snapshot.json`` means paged; anything else (v1/v2,
    missing, unreadable — fsck's problem, not ours) means memory.  Lets
    ``repro checkpoint`` preserve the on-disk format unless the user
    explicitly asks to migrate.
    """
    try:
        state = json.loads(
            (Path(directory) / "snapshot.json").read_bytes().decode("utf-8")
        )
    except (OSError, ValueError):
        return "memory"
    return "paged" if state.get("version") == 3 else "memory"


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.storage import ShardedStore, is_sharded_root

    bar = None
    if args.progress:
        from repro.obs.progress import ProgressBar

        bar = ProgressBar()
    if is_sharded_root(args.directory):
        data_format = args.data_format or _detect_data_format(
            Path(args.directory) / "shard-00"
        )
        # shards= is optional (the manifest knows); when given it is
        # cross-checked and a mismatch aborts before any shard opens.
        with ShardedStore(
            PUBLICATION_SCHEMA, args.directory, shards=args.shards,
            data_format=data_format,
        ) as store:
            before = store.wal_size_bytes
            store.checkpoint(progress=bar)
            print(
                f"checkpointed {len(store)} records across "
                f"{store.shard_count} shards ({data_format} format); "
                f"WAL {before} -> {store.wal_size_bytes} bytes",
                file=sys.stderr,
            )
        return 0
    if args.shards is not None:
        print(
            "error: --shards given but the directory is not a sharded "
            "store root (no shards.json)",
            file=sys.stderr,
        )
        return 2
    data_format = args.data_format or _detect_data_format(args.directory)
    with RecordStore(
        PUBLICATION_SCHEMA, directory=args.directory, data_format=data_format
    ) as store:
        before = store.wal_size_bytes
        store.checkpoint(progress=bar)
        print(
            f"checkpointed {len(store)} records ({data_format} format); "
            f"WAL {before} -> {store.wal_size_bytes} bytes",
            file=sys.stderr,
        )
    return 0


def _open_sharded_root(directory: str) -> "object | None":
    """Open the sharded store at ``directory``, or print why not.

    Shared by the shard fault-tolerance commands (scrub / quarantine /
    readmit); returns ``None`` after printing an error (callers exit 2).
    """
    from repro.errors import StorageError
    from repro.storage import ShardedStore, is_sharded_root

    if not is_sharded_root(directory):
        print(
            f"error: {directory} is not a sharded store root (no shards.json)",
            file=sys.stderr,
        )
        return None
    data_format = _detect_data_format(Path(directory) / "shard-00")
    try:
        return ShardedStore(PUBLICATION_SCHEMA, directory, data_format=data_format)
    except StorageError as exc:
        print(
            f"error: cannot open store: {exc}\n"
            f"hint: a shard too damaged to open needs offline repair — "
            f"try `repro fsck --repair {directory}` first",
            file=sys.stderr,
        )
        return None


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.storage import Scrubber

    store = _open_sharded_root(args.directory)
    if store is None:
        return 2
    bytes_per_s = args.rate_mb_s * 1024 * 1024 if args.rate_mb_s else None
    with store:
        scrubber = Scrubber(store, bytes_per_s=bytes_per_s)
        report = scrubber.run_once(repair=args.repair)
        rows = store.health.rows()
    if args.json:
        print(json.dumps(
            {"scrub": report.to_dict(), "health": rows},
            indent=2, ensure_ascii=False,
        ))
    else:
        print(report.render())
        for row in rows:
            if row["state"] != "healthy":
                print(f"shard {row['shard']}: {row['state']} ({row['reason']})")
    return 0 if all(r.clean or r.repaired for r in report.shards) else 1


def _cmd_quarantine(args: argparse.Namespace) -> int:
    store = _open_sharded_root(args.directory)
    if store is None:
        return 2
    with store:
        store.quarantine(args.shard, args.reason)
        state = store.health.state(args.shard)
    print(f"shard {args.shard}: {state}", file=sys.stderr)
    return 0


def _cmd_readmit(args: argparse.Namespace) -> int:
    store = _open_sharded_root(args.directory)
    if store is None:
        return 2
    with store:
        store.readmit(args.shard, reopen=not args.no_reopen)
        state = store.health.state(args.shard)
        records = len(store.shards[args.shard])
    print(
        f"shard {args.shard}: {state} ({records} records)", file=sys.stderr
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.export import dumps_csv, format_bibtex

    records = _load_corpus(args.corpus)
    if args.to == "bibtex":
        output = format_bibtex(records, journal=args.journal)
    else:
        output = dumps_csv(records)
    if args.output:
        Path(args.output).write_text(output, encoding="utf-8")
        print(f"wrote {len(records)} records to {args.output}", file=sys.stderr)
    else:
        print(output, end="")
    return 0


def _cmd_serve_telemetry(args: argparse.Namespace) -> int:
    from repro.obs.server import TelemetryServer
    from repro.obs.slo import SLOEngine, load_rules
    from repro.obs.timeseries import TimeSeriesLog, TimeSeriesRecorder

    if args.store is not None and args.seed_corpus:
        # Seed the store directory with the corpus (for smoke tests and
        # demos) so /healthz has a real snapshot + WAL chain to walk.
        records = _load_corpus(args.corpus)
        data_format = "paged" if args.paged else "memory"
        if args.shards:
            from repro.storage import ShardedStore

            with ShardedStore(
                PUBLICATION_SCHEMA, args.store, shards=args.shards,
                data_format=data_format,
            ) as store:
                if len(store) == 0:
                    populate_store(store, records)
                store.checkpoint()
        else:
            with RecordStore(
                PUBLICATION_SCHEMA, directory=args.store, data_format=data_format
            ) as store:
                if len(store) == 0:
                    populate_store(store, records)
                store.checkpoint()
    # The SLO engine needs sampled history: use the on-disk ring when
    # --timeseries names one, an in-memory ring otherwise, so /alertz
    # and the /statusz alerts section work out of the box.
    rules = load_rules(args.slo_rules) if args.slo_rules else None
    ts_log = TimeSeriesLog(args.timeseries) if args.timeseries else TimeSeriesLog()
    recorder = TimeSeriesRecorder(ts_log, interval_s=args.interval).start()
    # Optional background scrubber: needs the sharded store held open
    # for the daemon's lifetime so its verdict can back /healthz.
    scrub_store = scrubber = None
    if args.scrub_interval:
        from repro.storage import ShardedStore, Scrubber, is_sharded_root

        if args.store is None or not is_sharded_root(args.store):
            print(
                "error: --scrub-interval needs a sharded --store "
                "(shards.json root)",
                file=sys.stderr,
            )
            recorder.stop()
            return 2
        data_format = _detect_data_format(Path(args.store) / "shard-00")
        scrub_store = ShardedStore(
            PUBLICATION_SCHEMA, args.store, data_format=data_format
        )
        scrubber = Scrubber(scrub_store)
        scrubber.start(args.scrub_interval, repair=args.scrub_repair)
    server = TelemetryServer(
        host=args.host,
        port=args.port,
        store_dir=args.store,
        slo_engine=SLOEngine(ts_log, rules),
        scrubber=scrubber,
        health_ttl_s=args.health_ttl,
    )
    print(f"telemetry: listening on {server.url}", file=sys.stderr)
    print(
        "endpoints: /statusz /metrics /healthz /alertz /progressz /varz "
        "/tracez /logz /topz /profilez",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    finally:
        if scrubber is not None:
            scrubber.stop()
        if scrub_store is not None:
            scrub_store.close()
        recorder.stop()
    return 0


def _cmd_serve_query(args: argparse.Namespace) -> int:
    from repro.obs.server import TelemetryServer
    from repro.resilience import AdmissionController, CircuitBreaker, QueryService

    from repro.query import ShardedQueryEngine
    from repro.storage import is_sharded_root

    records = _load_corpus(args.corpus)
    if args.store is not None and is_sharded_root(args.store):
        # A sharded root gets the scatter-gather engine: health-gated
        # strict reads, and `partial_ok=1` degrading to the healthy
        # shards with an HTTP 206.
        store = _open_sharded_root(args.store)
        if store is None:
            return 2
        engine = ShardedQueryEngine(store)
    else:
        store = RecordStore(PUBLICATION_SCHEMA, directory=args.store)
        if len(store) == 0:
            populate_store(store, records)
            if args.store is not None:
                store.checkpoint()
        engine = QueryEngine(store)
    try:
        store.create_index("surnames", IndexKind.HASH)
        store.create_index("year", IndexKind.BTREE)
        store.create_index("volume", IndexKind.BTREE)
        admission = AdmissionController(
            max_concurrent=args.max_concurrent,
            max_queue=args.max_queue,
            queue_timeout_s=args.queue_timeout_ms / 1000.0,
            breaker=CircuitBreaker(),
        )
        service = QueryService(
            engine,
            admission=admission,
            default_timeout_s=args.default_timeout_ms / 1000.0,
            default_max_rows=args.default_max_rows,
        )
        server = TelemetryServer(
            host=args.host,
            port=args.port,
            store_dir=args.store,
            query_service=service,
            health_ttl_s=args.health_ttl,
        )
        print(f"query service: listening on {server.url}", file=sys.stderr)
        print(
            "endpoints: /query /metrics /healthz /varz /tracez /logz "
            "/topz /profilez",
            file=sys.stderr,
        )
        server.serve_forever()
    finally:
        if isinstance(engine, ShardedQueryEngine):
            engine.close()
        store.close()
    return 0


def _render_progress_snapshot(body: dict) -> str:
    """``/progressz`` payload as aligned terminal lines."""
    lines = []
    for op in body.get("active", []):
        total = f"/{op['total']}" if op["total"] is not None else ""
        pct = f" ({op['percent']:.0f}%)" if op["percent"] is not None else ""
        eta = f"  ETA {op['eta_s']:.0f}s" if op["eta_s"] is not None else ""
        lines.append(
            f"ACTIVE  {op['name']:<28} {op['done']}{total}{pct}  "
            f"{op['rate_per_s']:,.0f}/s{eta}"
        )
    for op in body.get("recent", []):
        status = "ok" if op["ok"] else "FAILED"
        lines.append(
            f"RECENT  {op['name']:<28} {op['done']} in {op['elapsed_s']}s  {status}"
        )
    if not lines:
        lines.append("(no operations in flight or recently finished)")
    return "\n".join(lines)


def _cmd_progress(args: argparse.Namespace) -> int:
    import time as _time

    base = args.url.rstrip("/")
    shown = 0
    while True:
        body = _http_get_json(f"{base}/progressz")
        if args.json:
            print(json.dumps(body, indent=2, sort_keys=True))
        else:
            print(f"-- {base}/progressz --")
            print(_render_progress_snapshot(body))
        shown += 1
        if args.interval is None or (
            args.iterations is not None and shown >= args.iterations
        ):
            return 0
        _time.sleep(args.interval)


def _render_alerts(body: dict) -> str:
    """``/alertz`` payload (or a local evaluation) as terminal lines."""
    if body.get("enabled") is False:
        return f"alerting disabled: {body.get('reason', 'no SLO engine')}"
    lines = [f"{'RULE':<24} {'SEVERITY':<8} {'STATE':<8} REASON"]
    for state in body.get("rules", []):
        verdict = "FIRING" if state["firing"] else (
            "no-data" if state.get("no_data") else "ok"
        )
        lines.append(
            f"{state['name']:<24} {state['severity']:<8} {verdict:<8} "
            f"{state['reason']}"
        )
    firing = body.get("firing", [])
    lines.append(
        f"({len(firing)} firing / {len(body.get('rules', []))} rules)"
    )
    return "\n".join(lines)


def _cmd_alerts(args: argparse.Namespace) -> int:
    """Evaluate SLO rules; exit 0 when quiet, 1 when any rule is firing."""
    try:
        if args.url:
            if args.rules or args.timeseries:
                print(
                    "error: --rules/--timeseries evaluate locally and "
                    "cannot be combined with --url (the daemon owns its "
                    "rules)",
                    file=sys.stderr,
                )
                return 2
            body = _http_get_json(f"{args.url.rstrip('/')}/alertz")
        else:
            if not args.timeseries:
                print(
                    "error: need --timeseries FILE (a sample ring written "
                    "by serve-telemetry) or --url DAEMON",
                    file=sys.stderr,
                )
                return 2
            from repro.obs.slo import SLOEngine, load_rules
            from repro.obs.timeseries import TimeSeriesLog

            rules = load_rules(args.rules) if args.rules else None
            body = SLOEngine(TimeSeriesLog(args.timeseries), rules).evaluate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True))
    else:
        print(_render_alerts(body))
    return 1 if body.get("firing") else 0


def _cmd_logs(args: argparse.Namespace) -> int:
    from repro.obs import logging as obs_logging

    if args.file:
        records = obs_logging.read_jsonl(args.file)
        if args.level:
            minimum = obs_logging.LEVELS[args.level]
            records = [
                r for r in records
                if obs_logging.LEVELS.get(r.get("level", "info"), 20) >= minimum
            ]
        if args.event:
            prefix = args.event.rstrip(".")
            records = [
                r for r in records
                if r.get("event") == prefix
                or str(r.get("event", "")).startswith(prefix + ".")
            ]
        if args.trace:
            records = [r for r in records if r.get("trace_id") == args.trace]
        if args.tail is not None:
            records = records[-args.tail:]
    else:
        # No file: run the standard workload at debug level and tail the
        # in-process ring — a self-contained demo of the event stream.
        logger = obs_logging.get_default_logger()
        previous = logger.level
        logger.set_level("debug")
        try:
            _run_standard_workload(args.corpus)
        finally:
            logger.set_level(previous)
        records = obs_logging.tail(
            args.tail, level=args.level, event=args.event, trace_id=args.trace
        )
    for record in records:
        if args.json:
            print(json.dumps(record, ensure_ascii=False, sort_keys=True))
        else:
            print(obs_logging.format_event(record))
    print(f"({len(records)} events)", file=sys.stderr)
    return 0


def _http_get_json(url: str, *, timeout_s: float = 10.0) -> dict:
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout_s) as resp:  # noqa: S310 - operator-supplied URL
        return json.loads(resp.read().decode("utf-8"))


def _seeded_engine(corpus: str | None) -> tuple[QueryEngine, RecordStore]:
    """An in-memory store over ``corpus`` with the standard three indexes."""
    records = _load_corpus(corpus)
    store = RecordStore(PUBLICATION_SCHEMA)
    populate_store(store, records)
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    store.create_index("volume", IndexKind.BTREE)
    return QueryEngine(store), store


def _run_mixed_burst(engine: QueryEngine, store: RecordStore) -> dict:
    """A mixed bag of query shapes against ``store``: index lookups,
    ranges, sorts, aggregates, and one budget-tripped scan — enough
    distinct fingerprints (with operator breakdowns from the profiled
    runs) to make the workload table worth reading.  Literals are
    sampled from the store so every shape actually matches rows.
    """
    surnames: list[str] = []
    years: list[int] = []
    volumes: list[int] = []
    for record in store.scan():
        surnames.extend(record.get("surnames") or [])
        if record.get("year") is not None:
            years.append(record["year"])
        if record.get("volume") is not None:
            volumes.append(record["volume"])
        if len(years) >= 64:
            break
    surnames = surnames or ["?"]
    years = sorted(years) or [1980]
    volumes = sorted(volumes) or [1]
    mid_year = years[len(years) // 2]
    executed = profiled = interrupted = 0
    for i in range(8):
        surname = surnames[(i * 7) % len(surnames)]
        year = years[(i * 5) % len(years)]
        volume = volumes[(i * 3) % len(volumes)]
        shapes: list[tuple[str, bool]] = [
            (f'surnames:"{surname}"', False),
            (f"year >= {year} ORDER BY year LIMIT 25", False),
            (f"year >= {min(year, mid_year)} AND year <= {max(year, mid_year)}", True),
            (f"volume = {volume}", False),
            (f"year >= {years[0]} GROUP BY year", i == 0),
        ]
        for text, profile in shapes:
            engine.execute(text, profile=profile)
            executed += 1
            profiled += int(profile)
    try:
        engine.execute(f"year >= {years[0]} ORDER BY title", max_rows=10)
    except QueryInterrupted:
        interrupted += 1
    executed += 1
    return {"queries": executed, "profiled": profiled, "interrupted": interrupted}


def _render_top_rows(rows: list[dict], *, evicted_calls: int = 0) -> str:
    """The fingerprint table as an aligned terminal table."""
    header = (
        f"{'FINGERPRINT':<13} {'CALLS':>6} {'ROWS':>8} {'EXAM':>8} "
        f"{'CPU_MS':>9} {'WALL_MS':>9} {'BYTES':>10} {'HIT%':>5} "
        f"{'INT':>4}  TEMPLATE"
    )
    lines = [header]
    for row in rows:
        calls = row["calls"] or 1
        interruptions = (
            row["deadline_exceeded"] + row["cancelled"]
            + row["budget_exceeded"] + row["shed"]
        )
        template = row["template"]
        if len(template) > 48:
            template = template[:45] + "..."
        lines.append(
            f"{row['fingerprint']:<13} {row['calls']:>6} "
            f"{row['rows_returned']:>8} {row['rows_examined']:>8} "
            f"{row['cpu_ns'] / 1e6:>9.2f} {row['wall_ns'] / 1e6:>9.2f} "
            f"{row['bytes_scanned']:>10} "
            f"{100.0 * row['plan_cache_hits'] / calls:>5.0f} "
            f"{interruptions:>4}  {template}"
        )
    if evicted_calls:
        lines.append(f"(+ {evicted_calls} calls under evicted fingerprints)")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    if args.url:
        base = args.url.rstrip("/")
        iterations = args.iterations
        if iterations is None and args.interval is None:
            iterations = 1  # one shot unless a live view was asked for
        interval = args.interval if args.interval is not None else 2.0
        shown = 0
        while True:
            body = _http_get_json(f"{base}/topz?n={args.n}&sort={args.sort}")
            if args.json:
                print(json.dumps(body, indent=2, sort_keys=True))
            else:
                print(
                    f"-- {base}/topz  sort={body['sort']}  "
                    f"tracked={body['tracked']}/{body['maxsize']} --"
                )
                print(_render_top_rows(
                    body["fingerprints"], evicted_calls=body["evicted_calls"]
                ))
            shown += 1
            if iterations is not None and shown >= iterations:
                return 0
            _time.sleep(interval)
    # No daemon: run the demo burst in-process and show its table once.
    from repro.obs import workload as obs_workload

    engine, store = _seeded_engine(args.corpus)
    burst = _run_mixed_burst(engine, store)
    table = obs_workload.get_default_table()
    rows = table.top(args.n, sort_by=args.sort)
    if args.json:
        print(json.dumps(
            {"burst": burst, "fingerprints": rows}, indent=2, sort_keys=True
        ))
    else:
        print(
            f"-- in-process burst: {burst['queries']} queries "
            f"({burst['profiled']} profiled) --", file=sys.stderr,
        )
        print(_render_top_rows(rows, evicted_calls=table.evicted_calls))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import time as _time

    if args.url:
        base = args.url.rstrip("/")
        _http_get_json(f"{base}/profilez?action=start&hz={args.hz}")
        try:
            _time.sleep(args.seconds)
        finally:
            status = _http_get_json(f"{base}/profilez?action=stop")
        from urllib.request import urlopen

        with urlopen(f"{base}/profilez?format=collapsed", timeout=10.0) as resp:
            folded = resp.read().decode("utf-8")
    else:
        from repro.obs.profiling import SamplingProfiler

        engine, store = _seeded_engine(args.corpus)
        profiler = SamplingProfiler(hz=args.hz)
        profiler.start()
        try:
            deadline = _time.perf_counter() + args.seconds
            while _time.perf_counter() < deadline:
                _run_mixed_burst(engine, store)
        finally:
            status = profiler.stop()
        folded = profiler.render_collapsed()
    if args.out:
        Path(args.out).write_text(folded, encoding="utf-8")
        print(f"wrote {len(folded.splitlines())} stacks to {args.out}", file=sys.stderr)
    else:
        print(folded, end="")
    print(
        f"profiler: {status['samples']} samples over "
        f"{status['active_seconds']}s at {status['hz']} Hz "
        f"({status['distinct_stacks']} distinct stacks)",
        file=sys.stderr,
    )
    return 0


def _key_distribution(store: RecordStore, field: str, *, top: int = 20) -> dict:
    """Exact per-key row counts for ``field`` from one offline scan.

    The online :class:`~repro.obs.workload.KeyUsageTable` sees only the
    keys the workload probed; this sees the whole table — together they
    answer "is the hot key hot because of data skew or access skew?".
    """
    counts: dict = {}
    for record in store.scan():
        value = record.get(field)
        if value is None:
            continue
        for v in value if isinstance(value, list) else [value]:
            counts[v] = counts.get(v, 0) + 1
    total = sum(counts.values())
    ranked = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
    return {
        "field": field,
        "distinct_keys": len(counts),
        "rows": total,
        "top_key_share": round(ranked[0][1] / total, 4) if total else 0.0,
        "top_keys": [{"key": str(k), "rows": n} for k, n in ranked[:top]],
    }


def _cmd_workload_report(args: argparse.Namespace) -> int:
    from repro.obs import workload as obs_workload

    obs_workload.reset()
    if args.corpus:
        engine, store = _seeded_engine(args.corpus)
        source = args.corpus
    else:
        from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig

        records = list(
            SyntheticCorpus(
                SyntheticCorpusConfig(size=args.synthetic, seed=args.seed)
            ).records()
        )
        store = RecordStore(PUBLICATION_SCHEMA)
        populate_store(store, records)
        store.create_index("surnames", IndexKind.HASH)
        store.create_index("year", IndexKind.BTREE)
        store.create_index("volume", IndexKind.BTREE)
        engine = QueryEngine(store)
        source = f"synthetic(size={args.synthetic}, seed={args.seed})"
    burst = _run_mixed_burst(engine, store)
    report = {
        "corpus": {"source": source, "records": len(store)},
        "burst": burst,
        "workload": obs_workload.get_default_table().snapshot(),
        "key_usage": obs_workload.get_default_key_usage().snapshot(),
        "key_distribution": {
            field: _key_distribution(store, field)
            for field in ("surnames", "year", "volume")
        },
    }
    output = json.dumps(report, indent=2, sort_keys=True, default=str)
    if args.out:
        Path(args.out).write_text(output + "\n", encoding="utf-8")
        print(f"wrote workload report to {args.out}", file=sys.stderr)
    else:
        print(output)
    print(
        f"{report['workload']['tracked']} fingerprints over "
        f"{burst['queries']} queries ({len(store)} records)",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-index",
        description="Build, query, and render author indexes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build and render an author index")
    p_build.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_build.add_argument("--format", default="text", choices=available_formats())
    p_build.add_argument("--output", help="write to file instead of stdout")
    p_build.add_argument("--no-pages", action="store_true", help="continuous text output")
    p_build.add_argument("--resolve", action="store_true", help="entity-resolve name variants")
    p_build.add_argument("--mc-as-mac", action="store_true", help="file Mc as Mac")
    p_build.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="round-trip the corpus through an N-shard store's "
             "scatter-gather path before building (result is identical; "
             "exercises the partition + merge machinery)",
    )
    p_build.set_defaults(func=_cmd_build)

    p_ingest = sub.add_parser("ingest", help="parse raw OCR'd index text to JSON")
    p_ingest.add_argument("input", help="raw text file")
    p_ingest.add_argument("--output", help="JSON output path (default: stdout)")
    p_ingest.add_argument("--show-warnings", action="store_true")
    p_ingest.add_argument(
        "--store",
        metavar="DIR",
        help="additionally commit the parsed records to a durable store "
             "at DIR (WAL + checkpoint)",
    )
    p_ingest.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="with --store: partition the store into N shards and commit "
             "them in parallel (default 1)",
    )
    p_ingest.add_argument(
        "--paged",
        action="store_true",
        help="with --store: checkpoint into the paged on-disk B+ tree "
             "format (store.pages file + LRU buffer pool) so the store "
             "reopens in milliseconds with only the working set in RAM",
    )
    p_ingest.set_defaults(func=_cmd_ingest)

    p_query = sub.add_parser("query", help="query a corpus")
    p_query.add_argument("query", help='e.g. \'surnames:"McAteer" AND year >= 1980\'')
    p_query.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_query.add_argument("--explain", action="store_true", help="print the plan only")
    p_query.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="load the corpus into an N-shard store and execute via "
             "scatter-gather (one worker per shard)",
    )
    p_query.add_argument(
        "--partial-ok",
        action="store_true",
        help="with --shards: tolerate failing/quarantined shards — return "
             "rows from the healthy ones and note the skipped shards on "
             "stderr instead of failing the whole query",
    )
    p_query.add_argument(
        "--profile",
        action="store_true",
        help="EXPLAIN ANALYZE: run the query and print the per-operator "
             "tree with timings and rows examined/returned",
    )
    p_query.add_argument(
        "--json",
        action="store_true",
        help="with --profile: emit rows and profile as one JSON document",
    )
    p_query.add_argument(
        "--slow-log",
        metavar="FILE",
        help="record queries over the slow threshold to this JSONL file",
    )
    p_query.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="slow-query threshold in milliseconds (default 100; implies "
             "slow-query capture even without --slow-log)",
    )
    p_query.add_argument(
        "--timeout-ms",
        type=float,
        metavar="MS",
        help=f"wall-clock deadline for the query; exceeding it exits "
             f"{EXIT_QUERY_INTERRUPTED} with a one-line JSON error",
    )
    p_query.add_argument(
        "--max-rows",
        type=int,
        metavar="N",
        help=f"row-examination budget for the query; exceeding it exits "
             f"{EXIT_BUDGET_EXCEEDED} with a one-line JSON error",
    )
    p_query.set_defaults(func=_cmd_query)

    p_stats = sub.add_parser("stats", help="print index statistics")
    p_stats.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_stats.add_argument(
        "--metrics",
        action="store_true",
        help="run the storage/build/query/search pipelines over the corpus "
             "and dump the observability metrics snapshot instead",
    )
    p_stats.add_argument(
        "--metrics-format",
        "--format",
        dest="metrics_format",
        choices=("json", "jsonl", "text", "prom"),
        default="json",
        help="snapshot format for --metrics (default: json); prom = "
             "Prometheus text exposition, identical to the /metrics endpoint",
    )
    p_stats.add_argument(
        "--since",
        type=float,
        metavar="SECONDS",
        help="with --metrics: print windowed counter rates instead of "
             "lifetime totals (see --timeseries)",
    )
    p_stats.add_argument(
        "--timeseries",
        metavar="FILE",
        help="with --since: read samples from this JSONL ring (as written "
             "by serve-telemetry --timeseries) instead of sampling around "
             "a fresh workload run",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_formats = sub.add_parser("formats", help="list render formats")
    p_formats.set_defaults(func=_cmd_formats)

    p_bundle = sub.add_parser(
        "bundle", help="write the full front-matter bundle (4 indexes)"
    )
    p_bundle.add_argument("output_dir", help="directory for the index files")
    p_bundle.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_bundle.set_defaults(func=_cmd_bundle)

    p_report = sub.add_parser("report", help="render the Markdown corpus report")
    p_report.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_report.add_argument("--title", default="Corpus report")
    p_report.add_argument("--suppress", help="comma-separated keyword stopwords")
    p_report.add_argument("--output", help="write to file instead of stdout")
    p_report.set_defaults(func=_cmd_report)

    p_search = sub.add_parser("search", help="full-text title search (TF-IDF)")
    p_search.add_argument("query", help='words AND-ed; "quoted" = phrase')
    p_search.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_search.add_argument("--top", type=int, default=10, help="max hits (default 10)")
    p_search.set_defaults(func=_cmd_search)

    p_lint = sub.add_parser("lint", help="editorial checks on the built index")
    p_lint.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_lint.add_argument("--strict", action="store_true", help="exit 1 on any issue")
    p_lint.set_defaults(func=_cmd_lint)

    p_export = sub.add_parser("export", help="export records as BibTeX or CSV")
    p_export.add_argument("--to", choices=("bibtex", "csv"), default="bibtex")
    p_export.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_export.add_argument("--journal", default="", help="journal field for BibTeX")
    p_export.add_argument("--output", help="write to file instead of stdout")
    p_export.set_defaults(func=_cmd_export)

    p_fsck = sub.add_parser(
        "fsck", help="check/repair the integrity of a store directory"
    )
    p_fsck.add_argument("directory", help="store directory (WAL + snapshot)")
    p_fsck.add_argument(
        "--repair",
        action="store_true",
        help="repair what is safely repairable (truncate torn tails, "
             "remove crash artifacts)",
    )
    p_fsck.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_fsck.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="expected shard count for a sharded store root "
             "(cross-checked against shards.json; detection is automatic)",
    )
    p_fsck.set_defaults(func=_cmd_fsck)

    p_checkpoint = sub.add_parser(
        "checkpoint",
        help="snapshot a store directory and truncate its covered WAL segments",
    )
    p_checkpoint.add_argument("directory", help="store directory (WAL + snapshot)")
    p_checkpoint.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="expected shard count for a sharded store root "
             "(cross-checked against shards.json; detection is automatic)",
    )
    p_checkpoint_fmt = p_checkpoint.add_mutually_exclusive_group()
    p_checkpoint_fmt.add_argument(
        "--paged",
        dest="data_format",
        action="store_const",
        const="paged",
        help="write the paged B+ tree format (v3 manifest + store.pages "
             "file); migrates a memory-format store",
    )
    p_checkpoint_fmt.add_argument(
        "--memory",
        dest="data_format",
        action="store_const",
        const="memory",
        help="write the classic inline-records snapshot (v2); migrates a "
             "paged store back",
    )
    p_checkpoint.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress bar on stderr while the checkpoint "
             "streams (also visible on a daemon's /progressz)",
    )
    p_checkpoint.set_defaults(func=_cmd_checkpoint, data_format=None)

    p_scrub = sub.add_parser(
        "scrub",
        help="CRC-verify every page and WAL segment of a sharded store; "
             "quarantine damaged shards (and with --repair, heal them)",
    )
    p_scrub.add_argument("directory", help="sharded store root (shards.json)")
    p_scrub.add_argument(
        "--repair",
        action="store_true",
        help="self-heal quarantined shards: fsck --repair, re-verify, "
             "reopen (WAL replay), re-admit",
    )
    p_scrub.add_argument(
        "--rate-mb-s",
        type=float,
        metavar="MB",
        help="I/O rate limit in MiB/s (default: unmetered for a one-shot "
             "run; daemons should meter)",
    )
    p_scrub.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_scrub.set_defaults(func=_cmd_scrub)

    p_quarantine = sub.add_parser(
        "quarantine",
        help="pull one shard out of partial-mode query fan-out (persisted)",
    )
    p_quarantine.add_argument("directory", help="sharded store root (shards.json)")
    p_quarantine.add_argument("shard", type=int, help="shard index")
    p_quarantine.add_argument(
        "--reason", default="operator", help="recorded reason (default: operator)"
    )
    p_quarantine.set_defaults(func=_cmd_quarantine)

    p_readmit = sub.add_parser(
        "readmit",
        help="return a quarantined shard to service (reopens it from disk "
             "first so repaired files are picked up)",
    )
    p_readmit.add_argument("directory", help="sharded store root (shards.json)")
    p_readmit.add_argument("shard", type=int, help="shard index")
    p_readmit.add_argument(
        "--no-reopen",
        action="store_true",
        help="skip the close/reopen (keep serving the in-memory state)",
    )
    p_readmit.set_defaults(func=_cmd_readmit)

    p_serve = sub.add_parser(
        "serve-telemetry",
        help="HTTP telemetry daemon: /statusz /metrics /healthz /alertz "
             "/progressz /varz /tracez /logz /topz /profilez",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=9179, help="TCP port (default: 9179; 0 = ephemeral)"
    )
    p_serve.add_argument(
        "--store",
        metavar="DIR",
        help="store directory /healthz walks with fsck (liveness-only otherwise)",
    )
    p_serve.add_argument(
        "--seed-corpus",
        action="store_true",
        help="with --store: seed an empty store from the corpus and "
             "checkpoint it before serving (for smoke tests and demos)",
    )
    p_serve.add_argument("--corpus", help="JSON corpus path (default: bundled reference)")
    p_serve.add_argument(
        "--timeseries",
        metavar="FILE",
        help="record periodic metric samples to this JSONL ring while serving",
    )
    p_serve.add_argument(
        "--interval",
        type=float,
        default=10.0,
        help="metric sampling interval in seconds (default: 10)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="with --store --seed-corpus: seed an N-shard store root "
             "instead of a single store",
    )
    p_serve.add_argument(
        "--paged",
        action="store_true",
        help="with --store --seed-corpus: checkpoint the seed in the "
             "paged B+ tree format",
    )
    p_serve.add_argument(
        "--slo-rules",
        metavar="FILE",
        help="JSON SLO rule file for /alertz (default: the built-in "
             "query-availability / latency / checkpoint-staleness / "
             "wal-backlog / shard-quarantined rules)",
    )
    p_serve.add_argument(
        "--health-ttl",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="seconds an inline-fsck /healthz verdict is cached "
             "(default: 5; 0 disables the cache)",
    )
    p_serve.add_argument(
        "--scrub-interval",
        type=float,
        metavar="SECONDS",
        help="with a sharded --store: run a background scrubber sweep "
             "every SECONDS (its verdict then backs /healthz)",
    )
    p_serve.add_argument(
        "--scrub-repair",
        action="store_true",
        help="with --scrub-interval: auto-repair shards the scrubber "
             "quarantines (quarantine → fsck --repair → verify "
             "→ readmit)",
    )
    p_serve.set_defaults(func=_cmd_serve_telemetry)

    p_serve_query = sub.add_parser(
        "serve-query",
        help="HTTP query service with admission control and deadlines "
             "(telemetry endpoints included)",
    )
    p_serve_query.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    p_serve_query.add_argument(
        "--port", type=int, default=9179, help="TCP port (default: 9179; 0 = ephemeral)"
    )
    p_serve_query.add_argument(
        "--corpus", help="JSON corpus path (default: bundled reference)"
    )
    p_serve_query.add_argument(
        "--store",
        metavar="DIR",
        help="serve from a durable store directory (seeded from the corpus "
             "when empty); /healthz then fsck-walks it.  Default: in-memory",
    )
    p_serve_query.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="admission slots: queries executing at once (default: 8)",
    )
    p_serve_query.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="admission queue depth before shedding with 429 (default: 16)",
    )
    p_serve_query.add_argument(
        "--queue-timeout-ms",
        type=float,
        default=500.0,
        help="max milliseconds a query may wait for a slot (default: 500)",
    )
    p_serve_query.add_argument(
        "--default-timeout-ms",
        type=float,
        default=5000.0,
        help="per-query deadline when the request names none (default: 5000)",
    )
    p_serve_query.add_argument(
        "--default-max-rows",
        type=int,
        default=100_000,
        help="per-query row budget when the request names none "
             "(default: 100000)",
    )
    p_serve_query.add_argument(
        "--health-ttl",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="seconds an inline-fsck /healthz verdict is cached "
             "(default: 5; 0 disables the cache)",
    )
    p_serve_query.set_defaults(func=_cmd_serve_query)

    p_progress = sub.add_parser(
        "progress",
        help="in-flight and recently finished long operations from a "
             "running daemon's /progressz",
    )
    p_progress.add_argument(
        "--url",
        default="http://127.0.0.1:9179",
        help="base URL of a serve-telemetry/serve-query daemon "
             "(default: http://127.0.0.1:9179)",
    )
    p_progress.add_argument(
        "--interval",
        type=float,
        metavar="S",
        help="refresh every S seconds instead of one shot",
    )
    p_progress.add_argument(
        "--iterations",
        type=int,
        metavar="N",
        help="with --interval: stop after N refreshes (default: forever)",
    )
    p_progress.add_argument(
        "--json", action="store_true", help="emit the raw /progressz payload"
    )
    p_progress.set_defaults(func=_cmd_progress)

    p_alerts = sub.add_parser(
        "alerts",
        help="evaluate SLO burn-rate rules over sampled metric history; "
             "exit 1 when any rule is firing",
    )
    p_alerts.add_argument(
        "--rules",
        metavar="FILE",
        help="JSON SLO rule file (default: the built-in rules); see "
             "docs/operations.md for the format",
    )
    p_alerts.add_argument(
        "--timeseries",
        metavar="FILE",
        help="sample ring to evaluate (as written by serve-telemetry "
             "--timeseries)",
    )
    p_alerts.add_argument(
        "--url",
        metavar="URL",
        help="poll a running daemon's /alertz instead of evaluating locally",
    )
    p_alerts.add_argument(
        "--json", action="store_true", help="emit the evaluation as JSON"
    )
    p_alerts.set_defaults(func=_cmd_alerts)

    p_logs = sub.add_parser(
        "logs", help="tail structured log events (file or in-process demo run)"
    )
    p_logs.add_argument(
        "--file", metavar="FILE", help="read events from this JSONL file"
    )
    p_logs.add_argument(
        "--corpus",
        help="without --file: corpus for the demo workload (default: bundled)",
    )
    p_logs.add_argument(
        "--tail", type=int, metavar="N", help="show only the last N events"
    )
    p_logs.add_argument(
        "--level",
        choices=("debug", "info", "warn", "error"),
        help="minimum severity to show",
    )
    p_logs.add_argument("--event", help="event name (exact or dotted prefix)")
    p_logs.add_argument("--trace", metavar="ID", help="only events with this trace ID")
    p_logs.add_argument(
        "--json", action="store_true", help="emit raw JSON lines instead of text"
    )
    p_logs.set_defaults(func=_cmd_logs)

    p_top = sub.add_parser(
        "top",
        help="hottest query shapes: the workload fingerprint table "
             "(live from a daemon's /topz, or an in-process demo burst)",
    )
    p_top.add_argument(
        "--url",
        metavar="URL",
        help="base URL of a running serve-telemetry/serve-query daemon; "
             "without it a demo burst runs in-process",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        metavar="S",
        help="with --url: refresh every S seconds (live top; default: one shot)",
    )
    p_top.add_argument(
        "--iterations",
        type=int,
        metavar="N",
        help="with --interval: stop after N refreshes (default: forever)",
    )
    p_top.add_argument(
        "-n", type=int, default=20, help="rows to show (default: 20)"
    )
    p_top.add_argument(
        "--sort",
        default="calls",
        choices=("calls", "cpu_ns", "wall_ns", "rows_returned",
                 "rows_examined", "bytes_scanned"),
        help="sort column (default: calls)",
    )
    p_top.add_argument(
        "--corpus", help="without --url: corpus for the demo burst (default: bundled)"
    )
    p_top.add_argument(
        "--json", action="store_true", help="emit the table as JSON"
    )
    p_top.set_defaults(func=_cmd_top)

    p_profile = sub.add_parser(
        "profile",
        help="sample wall-clock stacks for N seconds; write "
             "flamegraph.pl-ready collapsed output",
    )
    p_profile.add_argument(
        "--seconds", type=float, default=5.0, metavar="N",
        help="sampling duration (default: 5)",
    )
    p_profile.add_argument(
        "--out", metavar="FILE",
        help="write collapsed stacks here (default: stdout); feed to "
             "flamegraph.pl to render an SVG",
    )
    p_profile.add_argument(
        "--hz", type=int, default=97, help="sampling rate (default: 97)"
    )
    p_profile.add_argument(
        "--url",
        metavar="URL",
        help="profile a running daemon via its /profilez endpoint instead "
             "of an in-process query burst",
    )
    p_profile.add_argument(
        "--corpus", help="without --url: corpus for the burst (default: bundled)"
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_workload = sub.add_parser(
        "workload-report",
        help="run a mixed query burst over a seeded store and write the "
             "full workload report (fingerprints, operators, key skew) as JSON",
    )
    p_workload.add_argument(
        "--corpus",
        help="JSON corpus to seed from (default: a synthetic corpus)",
    )
    p_workload.add_argument(
        "--synthetic", type=int, default=10_000, metavar="N",
        help="size of the synthetic corpus when no --corpus is given "
             "(default: 10000)",
    )
    p_workload.add_argument(
        "--seed", type=int, default=1234, help="synthetic corpus seed (default: 1234)"
    )
    p_workload.add_argument(
        "--out", metavar="FILE", help="write the JSON report here (default: stdout)"
    )
    p_workload.set_defaults(func=_cmd_workload_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BudgetExceeded as exc:
        # One structured line on stderr; distinct exit code for scripts.
        print(
            json.dumps(
                {
                    "error": "budget-exceeded",
                    "budget": exc.budget,
                    "limit": exc.limit,
                    "used": exc.used,
                    "rows_examined": exc.rows_examined,
                }
            ),
            file=sys.stderr,
        )
        return EXIT_BUDGET_EXCEEDED
    except QueryInterrupted as exc:
        print(
            json.dumps(
                {
                    "error": type(exc).__name__,
                    "detail": str(exc),
                    "rows_examined": exc.rows_examined,
                    "elapsed_s": round(exc.elapsed_s, 6),
                }
            ),
            file=sys.stderr,
        )
        return EXIT_QUERY_INTERRUPTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

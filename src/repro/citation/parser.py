"""Parsing citation strings.

Two spellings are accepted:

* columnar (the paper's right-hand column): ``95:691 (1993)``
* Bluebook-style: ``95 W. Va. L. Rev. 691 (1993)``

OCR slack handled: stray spaces around the colon, ``O``/``o`` for ``0`` and
``l``/``I`` for ``1`` inside numbers, and a missing closing parenthesis.
"""

from __future__ import annotations

import re

from repro.citation.model import Citation
from repro.errors import CitationParseError

_DIGIT_CONFUSIONS = str.maketrans({"O": "0", "o": "0", "l": "1", "I": "1", "|": "1"})

_COLUMNAR = re.compile(
    r"""^\s*
        (?P<volume>[0-9OolI|]{1,4})
        \s*:\s*
        (?P<page>[0-9OolI|]{1,5})
        \s*\(\s*(?P<year>[0-9OolI|]{4})\s*\)?
        \s*$""",
    re.VERBOSE,
)

_BLUEBOOK = re.compile(
    r"""^\s*
        (?P<volume>\d{1,4})
        \s+(?P<reporter>[A-Za-z][A-Za-z.&\s']*?)\s+
        (?P<page>\d{1,5})
        \s*\(\s*(?P<year>\d{4})\s*\)?
        \s*$""",
    re.VERBOSE,
)


def _to_int(token: str, field: str, text: str) -> int:
    repaired = token.translate(_DIGIT_CONFUSIONS)
    try:
        return int(repaired)
    except ValueError:
        raise CitationParseError(f"non-numeric {field}: {token!r}", text=text) from None


def parse_citation(text: str) -> Citation:
    """Parse ``text`` into a :class:`Citation`.

    >>> parse_citation("95:691 (1993)")
    Citation(volume=95, page=691, year=1993)
    >>> parse_citation("82 W. Va. L. Rev. 1241 (1980)")
    Citation(volume=82, page=1241, year=1980)
    >>> parse_citation("9l:973 (1989)")  # OCR 'l' for '1'
    Citation(volume=91, page=973, year=1989)

    Raises
    ------
    CitationParseError
        If neither spelling matches or a component is implausible.
    """
    match = _COLUMNAR.match(text)
    if match is None:
        match = _BLUEBOOK.match(text)
    if match is None:
        raise CitationParseError("unrecognized citation format", text=text)
    volume = _to_int(match["volume"], "volume", text)
    page = _to_int(match["page"], "page", text)
    year = _to_int(match["year"], "year", text)
    try:
        return Citation(volume=volume, page=page, year=year)
    except Exception as exc:  # ValidationError -> parse error at this boundary
        raise CitationParseError(str(exc), text=text) from exc


def try_parse_citation(text: str) -> Citation | None:
    """Like :func:`parse_citation` but returns ``None`` on failure."""
    try:
        return parse_citation(text)
    except CitationParseError:
        return None


_EMBEDDED = re.compile(r"\d{1,4}\s*:\s*\d{1,5}\s*\(\s*\d{4}\s*\)")


def find_citations(text: str) -> list[tuple[Citation, tuple[int, int]]]:
    """Find all columnar citations embedded in free text.

    Returns ``(citation, (start, end))`` pairs in document order.  Used by
    the raw-text ingest parser to locate the citation column.

    >>> [c.columnar() for c, _ in find_citations("see 95:1 (1992) and 95:663 (1993)")]
    ['95:1 (1992)', '95:663 (1993)']
    """
    found = []
    for match in _EMBEDDED.finditer(text):
        citation = try_parse_citation(match.group(0))
        if citation is not None:
            found.append((citation, match.span()))
    return found

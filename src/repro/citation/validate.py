"""Corpus-level citation validation.

Beyond per-citation field checks (done by the model), author indexes obey
corpus invariants the paper exhibits: within one reporter, years grow with
volume numbers (approximately one volume per year), and pages within a
volume stay within plausible bounds.  Violations usually indicate OCR damage
and are reported, not raised, so ingest can continue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.citation.model import Citation, Reporter


@dataclass(frozen=True, slots=True)
class CitationIssue:
    """One suspected problem with a citation."""

    citation: Citation
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.citation.columnar()}: {self.message}"


#: Largest plausible page number in a single annual volume.
MAX_PLAUSIBLE_PAGE = 5000

#: Slack (years) allowed between a volume's expected and printed year.
#: Law-review volumes straddle academic years, so +/-2 is normal.
YEAR_SLACK = 2


def validate_citation(
    citation: Citation, reporter: Reporter | None = None
) -> list[CitationIssue]:
    """Check one citation; returns a list of issues (empty when clean)."""
    issues: list[CitationIssue] = []
    if citation.page > MAX_PLAUSIBLE_PAGE:
        issues.append(
            CitationIssue(
                citation,
                "page-range",
                f"page {citation.page} exceeds plausible volume size",
            )
        )
    if reporter is not None:
        expected = reporter.expected_year(citation.volume)
        if expected is not None and abs(expected - citation.year) > YEAR_SLACK:
            issues.append(
                CitationIssue(
                    citation,
                    "volume-year",
                    f"volume {citation.volume} of {reporter.abbreviation} expects "
                    f"~{expected}, printed {citation.year}",
                )
            )
    return issues


def check_volume_year_consistency(
    citations: Iterable[Citation],
) -> list[CitationIssue]:
    """Cross-citation check: each volume must map to a narrow year band.

    Groups citations by volume; any volume whose printed years span more
    than ``YEAR_SLACK + 1`` years is flagged on every outlying citation
    (outlying = furthest from the volume's median year).
    """
    by_volume: dict[int, list[Citation]] = {}
    for citation in citations:
        by_volume.setdefault(citation.volume, []).append(citation)

    issues: list[CitationIssue] = []
    for volume, group in sorted(by_volume.items()):
        years = sorted(c.year for c in group)
        if years[-1] - years[0] <= YEAR_SLACK + 1:
            continue
        median = years[len(years) // 2]
        for citation in group:
            if abs(citation.year - median) > YEAR_SLACK:
                issues.append(
                    CitationIssue(
                        citation,
                        "volume-year-spread",
                        f"volume {volume} mostly prints ~{median}; "
                        f"{citation.year} is an outlier",
                    )
                )
    return issues


def monotone_volume_years(citations: Sequence[Citation]) -> bool:
    """True when median years are non-decreasing in volume order.

    This is the corpus-shape invariant the fidelity experiment asserts on
    the reference data.
    """
    by_volume: dict[int, list[int]] = {}
    for citation in citations:
        by_volume.setdefault(citation.volume, []).append(citation.year)
    medians = []
    for volume in sorted(by_volume):
        years = sorted(by_volume[volume])
        medians.append(years[len(years) // 2])
    return all(a <= b for a, b in zip(medians, medians[1:]))

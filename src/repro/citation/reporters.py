"""Reporter registry: resolving citation abbreviations to publications.

Bluebook-style citations name their reporter by abbreviation
(``W. Va. L. Rev.``); a registry maps the spellings encountered in scanned
text — with and without periods, with OCR case damage — back to one
canonical :class:`~repro.citation.model.Reporter`.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.citation.model import PROCEEDINGS, Reporter, WVLR

_NORMALIZE = re.compile(r"[.\s]+")


def _fold(abbreviation: str) -> str:
    """Abbreviation matching key: lower-case, periods/spaces collapsed.

    >>> _fold("W. Va. L. Rev.")
    'w va l rev'
    >>> _fold("W VA  L REV")
    'w va l rev'
    """
    return _NORMALIZE.sub(" ", abbreviation.casefold()).strip()


class ReporterRegistry:
    """Lookup of reporters by (folded) abbreviation or alias.

    >>> registry = ReporterRegistry.with_defaults()
    >>> registry.resolve("W. VA. L. REV.").name
    'West Virginia Law Review'
    >>> registry.resolve("Unknown J.") is None
    True
    """

    def __init__(self) -> None:
        self._by_key: dict[str, Reporter] = {}
        self._reporters: list[Reporter] = []

    @classmethod
    def with_defaults(cls) -> "ReporterRegistry":
        """Registry pre-loaded with the reporters this corpus cites."""
        registry = cls()
        registry.register(WVLR, aliases=("W Va L Rev", "West Virginia Law Review"))
        registry.register(PROCEEDINGS)
        return registry

    def register(self, reporter: Reporter, *, aliases: Iterable[str] = ()) -> None:
        """Add ``reporter`` under its abbreviation plus ``aliases``.

        Re-registering the same abbreviation for a *different* reporter
        raises ``ValueError`` — silent shadowing would corrupt citations.
        """
        keys = [_fold(reporter.abbreviation), *(_fold(a) for a in aliases)]
        for key in keys:
            existing = self._by_key.get(key)
            if existing is not None and existing != reporter:
                raise ValueError(
                    f"abbreviation {key!r} already registered for {existing.name}"
                )
        if reporter not in self._reporters:
            self._reporters.append(reporter)
        for key in keys:
            self._by_key[key] = reporter

    def resolve(self, abbreviation: str) -> Reporter | None:
        """The reporter for ``abbreviation``, or ``None``."""
        return self._by_key.get(_fold(abbreviation))

    def __contains__(self, abbreviation: str) -> bool:
        return _fold(abbreviation) in self._by_key

    def __iter__(self):
        return iter(self._reporters)

    def __len__(self) -> int:
        return len(self._reporters)

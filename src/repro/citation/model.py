"""Citation data model.

A :class:`Citation` is the ``volume:page (year)`` triple the paper prints in
its right-hand column, tied to a :class:`Reporter` (the publication being
cited, e.g. the West Virginia Law Review).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True, slots=True)
class Reporter:
    """A cited publication series.

    Attributes
    ----------
    name:
        Full name, e.g. ``"West Virginia Law Review"``.
    abbreviation:
        Bluebook-style abbreviation, e.g. ``"W. Va. L. Rev."``.
    first_volume_year:
        Year volume 1 appeared; used by volume/year consistency checks.
        ``None`` disables that check for this reporter.
    """

    name: str
    abbreviation: str
    first_volume_year: int | None = None

    def expected_year(self, volume: int) -> int | None:
        """Approximate publication year of ``volume`` (annual volumes)."""
        if self.first_volume_year is None:
            return None
        return self.first_volume_year + volume - 1


#: The reporter of the reference corpus.  Volume 69 of the West Virginia Law
#: Review carries 1966-67 dates, anchoring volume 1 to 1898 under annual
#: numbering (the check allows +/- 1 year of slack for split volumes).
WVLR = Reporter(
    name="West Virginia Law Review",
    abbreviation="W. Va. L. Rev.",
    first_volume_year=1898,
)

#: Generic proceedings reporter used by synthetic corpora.
PROCEEDINGS = Reporter(name="Proceedings", abbreviation="Proc.")


@dataclass(frozen=True, slots=True, order=True)
class Citation:
    """One ``volume:page (year)`` citation.

    Ordering is (volume, page, year), which matches publication order within
    a reporter and is what the index uses to order a single author's
    articles.
    """

    volume: int
    page: int
    year: int

    def __post_init__(self) -> None:
        if self.volume <= 0:
            raise ValidationError(f"volume must be positive, got {self.volume}", field="volume")
        if self.page <= 0:
            raise ValidationError(f"page must be positive, got {self.page}", field="page")
        if not 1800 <= self.year <= 2200:
            raise ValidationError(f"implausible year: {self.year}", field="year")

    def columnar(self) -> str:
        """The paper's column format: ``"95:691 (1993)"``."""
        return f"{self.volume}:{self.page} ({self.year})"

    def bluebook(self, reporter: Reporter) -> str:
        """Bluebook-ish full form: ``"95 W. Va. L. Rev. 691 (1993)"``."""
        return f"{self.volume} {reporter.abbreviation} {self.page} ({self.year})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.columnar()

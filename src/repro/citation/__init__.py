"""Citation handling: the ``volume:page (year)`` references of the artifact.

Each index row in the paper cites its article as ``95:691 (1993)`` in a
column headed by the reporter abbreviation (``W. VA. L. REV.``).  This
package models that citation form, parses both the columnar and the
Bluebook-style spellings, formats them back, and validates corpus-level
consistency (volume/year monotonicity).
"""

from repro.citation.model import Citation, Reporter, WVLR
from repro.citation.parser import parse_citation, try_parse_citation
from repro.citation.reporters import ReporterRegistry
from repro.citation.validate import (
    CitationIssue,
    check_volume_year_consistency,
    validate_citation,
)

__all__ = [
    "Citation",
    "Reporter",
    "WVLR",
    "parse_citation",
    "try_parse_citation",
    "ReporterRegistry",
    "CitationIssue",
    "validate_citation",
    "check_volume_year_consistency",
]

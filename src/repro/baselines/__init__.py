"""Baseline implementations the benchmarks compare against."""

from repro.baselines.naive import NaiveIndexBuilder, naive_build

__all__ = ["NaiveIndexBuilder", "naive_build"]

"""The naive baseline: raw string sort, no conventions, no dedup.

This is what a quick script would do with the same records: explode per
author and ``sort()`` on the raw inverted name.  It is measurably faster
(less key construction) and measurably *wrong* on the artifact's edge
cases — ``O'Brien``/``Oakes`` ordering, honorific placement, suffix order,
duplicate co-author rows — which E2/E8 quantify via
:func:`repro.core.diffing.diff_indexes`.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.builder import AuthorIndex
from repro.core.collation import DEFAULT_OPTIONS, naive_key
from repro.core.entry import IndexEntry, PublicationRecord, explode


class NaiveIndexBuilder:
    """Drop-in-shaped counterpart of :class:`AuthorIndexBuilder`."""

    def __init__(self) -> None:
        self._records: list[PublicationRecord] = []

    def add_record(self, record: PublicationRecord) -> "NaiveIndexBuilder":
        self._records.append(record)
        return self

    def add_records(self, records: Iterable[PublicationRecord]) -> "NaiveIndexBuilder":
        self._records.extend(records)
        return self

    def build(self) -> AuthorIndex:
        """Explode and raw-sort; no normalization, resolution, or dedup."""
        entries: list[IndexEntry] = [
            entry for record in self._records for entry in explode(record)
        ]
        entries.sort(key=naive_key)
        return AuthorIndex(entries, DEFAULT_OPTIONS)


def naive_build(records: Iterable[PublicationRecord]) -> AuthorIndex:
    """One-call convenience mirroring :func:`repro.core.builder.build_index`."""
    return NaiveIndexBuilder().add_records(records).build()

"""Thread-safe, zero-dependency metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` owns a set of named metric series.  Each series
is identified by a metric *name* plus an optional, sorted *label* set, so
``registry.counter("query.plan.chosen", access="seq-scan")`` and the same
name with ``access="index-lookup"`` are two independent series.

Design constraints (enforced by CI lint):

* standard library only — the registry is importable from every layer,
  including ``storage``, without dependency cycles or third-party code;
* monotonic clocks only — all timings use :func:`time.perf_counter`,
  never ``time.time`` (wall clocks step under NTP and DST);
* near-zero cost when disabled — every mutator starts with a single
  ``enabled`` flag check and returns immediately, so instrumented hot
  paths pay one attribute load and one branch;
* cheap when enabled — ``Counter.inc`` and ``Histogram.observe`` never
  take a lock on the hot path: they push onto a :class:`collections.deque`
  (whose ``append`` is a single atomic C call under the GIL) and the
  pending values are folded into the aggregate lazily, on read or when
  the backlog reaches a fixed threshold.  Folding pops each pending
  value exactly once under the series lock, so totals stay exact even
  under the thread-hammer tests;
* thread safety — each series carries its own small lock for folds and
  resets; hot paths never contend on a registry-wide lock.

Instrumented modules fetch their series once at import time::

    from repro.obs import metrics as _metrics
    _GETS = _metrics.counter("storage.store.get.count")

and call ``_GETS.inc()`` in the hot path.  Handles stay valid across
:meth:`MetricsRegistry.reset`, which zeroes series in place (it never
discards the objects), so cached module-level handles are safe.

Metric names form a public contract; the full catalogue lives in
``docs/observability.md``.
"""

from __future__ import annotations

import functools
import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIMING_BUCKETS",
    "get_default_registry",
    "counter",
    "gauge",
    "histogram",
    "timed",
    "set_enabled",
    "is_enabled",
    "reset",
    "snapshot",
]

#: Default histogram buckets for durations in seconds: 10 µs .. 10 s.
DEFAULT_TIMING_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Fold the pending deque into the aggregate once it reaches this many
#: entries, bounding memory between reads without a lock per mutation.
_FOLD_THRESHOLD = 1024


class _Enabled:
    """Shared mutable on/off flag; one per registry, referenced by every
    series so a single toggle flips all of them without a registry walk."""

    __slots__ = ("flag",)

    def __init__(self, flag: bool):
        self.flag = flag


class Counter:
    """Monotonically increasing counter.

    ``inc`` is lock-free: it appends to a pending deque (atomic under the
    GIL) and the backlog is folded into ``_base`` lazily — on read, or
    inline once it reaches :data:`_FOLD_THRESHOLD` entries.
    """

    __slots__ = ("name", "labels", "_base", "_pending", "_append", "_lock", "_enabled")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], enabled: _Enabled):
        self.name = name
        self.labels = labels
        self._base: int | float = 0
        self._pending: deque[int | float] = deque()
        self._append = self._pending.append
        self._lock = threading.Lock()
        self._enabled = enabled

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (>= 0) to the counter; no-op when disabled."""
        if not self._enabled.flag:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._append(amount)
        if len(self._pending) >= _FOLD_THRESHOLD:
            self._fold()

    def _fold(self) -> None:
        with self._lock:
            pending = self._pending
            base = self._base
            while pending:
                base += pending.popleft()
            self._base = base

    @property
    def value(self) -> int | float:
        self._fold()
        return self._base

    def _reset(self) -> None:
        with self._lock:
            self._pending.clear()
            self._base = 0

    def _render(self) -> int | float:
        return self.value


class Gauge:
    """A value that can go up and down (sizes, depths, in-flight counts)."""

    __slots__ = ("name", "labels", "_value", "_lock", "_enabled")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], enabled: _Enabled):
        self.name = name
        self.labels = labels
        self._value: int | float = 0
        self._lock = threading.Lock()
        self._enabled = enabled

    def set(self, value: int | float) -> None:
        if not self._enabled.flag:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        if not self._enabled.flag:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _render(self) -> int | float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Buckets are upper bounds (le semantics) plus an implicit ``+Inf``
    bucket, cumulative like Prometheus renders them.

    Like :class:`Counter`, ``observe`` is lock-free: observations land in
    a pending deque and are folded into the bucket/count/sum/min/max
    aggregate lazily, on read or at :data:`_FOLD_THRESHOLD` backlog.
    """

    __slots__ = (
        "name", "labels", "buckets", "_bucket_counts", "_count", "_sum",
        "_min", "_max", "_pending", "_append", "_lock", "_enabled",
    )

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        enabled: _Enabled,
        buckets: tuple[float, ...] = DEFAULT_TIMING_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._pending: deque[float] = deque()
        self._append = self._pending.append
        self._lock = threading.Lock()
        self._enabled = enabled

    def observe(self, value: float) -> None:
        """Record one observation; no-op when disabled."""
        if not self._enabled.flag:
            return
        self._append(value)
        if len(self._pending) >= _FOLD_THRESHOLD:
            self._fold()

    def _fold(self) -> None:
        with self._lock:
            pending = self._pending
            buckets = self.buckets
            counts = self._bucket_counts
            while pending:
                value = pending.popleft()
                counts[bisect_left(buckets, value)] += 1
                self._count += 1
                self._sum += value
                if self._min is None or value < self._min:
                    self._min = value
                if self._max is None or value > self._max:
                    self._max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed monotonic seconds."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        self._fold()
        return self._count

    @property
    def sum(self) -> float:
        self._fold()
        return self._sum

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative per-bucket counts keyed by upper bound (le)."""
        self._fold()
        out: dict[str, int] = {}
        running = 0
        with self._lock:
            raw = list(self._bucket_counts)
        for bound, n in zip(self.buckets, raw):
            running += n
            out[repr(bound)] = running
        out["+Inf"] = running + raw[-1]
        return out

    def _reset(self) -> None:
        with self._lock:
            self._pending.clear()
            self._bucket_counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def _render(self) -> dict[str, Any]:
        self._fold()
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "buckets": self.bucket_counts(),
        }


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


Metric = Counter | Gauge | Histogram


def series_key(name: str, labels: dict[str, Any]) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Canonical (name, sorted-label-items) identity of a series."""
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_series_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """``name{k=v,…}`` — the flat series key used in snapshots."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A set of named metric series with snapshot/reset/enable controls.

    >>> registry = MetricsRegistry()
    >>> registry.counter("requests").inc()
    >>> registry.counter("requests").value
    1
    >>> registry.disable()
    >>> registry.counter("requests").inc()   # near-no-op while disabled
    >>> registry.counter("requests").value
    1
    """

    def __init__(self, *, enabled: bool = True):
        self._enabled = _Enabled(enabled)
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], Metric] = {}
        self._lock = threading.Lock()

    # -- enable / disable ---------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled.flag

    def enable(self) -> None:
        self._enabled.flag = True

    def disable(self) -> None:
        self._enabled.flag = False

    # -- series access ------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series for ``name`` + ``labels`` (created on first use)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_TIMING_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = series_key(name, labels)
        with self._lock:
            existing = self._series.get(key)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"series {render_series_name(*key)!r} already registered "
                        f"as {type(existing).__name__}"
                    )
                return existing
            metric = Histogram(name, key[1], self._enabled, buckets=tuple(buckets))
            self._series[key] = metric
            return metric

    def _get_or_create(self, cls: type, name: str, labels: dict[str, Any]) -> Any:
        key = series_key(name, labels)
        with self._lock:
            existing = self._series.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"series {render_series_name(*key)!r} already registered "
                        f"as {type(existing).__name__}"
                    )
                return existing
            metric = cls(name, key[1], self._enabled)
            self._series[key] = metric
            return metric

    def series(self) -> Iterator[Metric]:
        """All registered series (stable registration order)."""
        with self._lock:
            return iter(list(self._series.values()))

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every series in place.

        Registrations (and therefore handles cached by instrumented
        modules) survive; only the recorded values are cleared.
        """
        for metric in self.series():
            metric._reset()

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time dump: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` keyed by flat series name."""
        out: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for metric in self.series():
            flat = render_series_name(metric.name, metric.labels)
            if isinstance(metric, Counter):
                out["counters"][flat] = metric._render()
            elif isinstance(metric, Gauge):
                out["gauges"][flat] = metric._render()
            else:
                out["histograms"][flat] = metric._render()
        return out

    # -- decorators ---------------------------------------------------------

    def timed(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_TIMING_BUCKETS,
        **labels: Any,
    ) -> Callable:
        """Decorator observing the wrapped function's duration (seconds,
        monotonic) into the histogram series ``name`` + ``labels``."""
        series = self.histogram(name, buckets=buckets, **labels)

        def decorate(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not series._enabled.flag:
                    return fn(*args, **kwargs)
                start = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    series.observe(time.perf_counter() - start)

            return wrapper

        return decorate


# -- process-global default registry ---------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry(enabled=True)


def get_default_registry() -> MetricsRegistry:
    """The process-global registry all built-in instrumentation reports to."""
    return _DEFAULT_REGISTRY


def counter(name: str, **labels: Any) -> Counter:
    """Counter series in the default registry."""
    return _DEFAULT_REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """Gauge series in the default registry."""
    return _DEFAULT_REGISTRY.gauge(name, **labels)


def histogram(
    name: str, *, buckets: tuple[float, ...] = DEFAULT_TIMING_BUCKETS, **labels: Any
) -> Histogram:
    """Histogram series in the default registry."""
    return _DEFAULT_REGISTRY.histogram(name, buckets=buckets, **labels)


def timed(
    name: str, *, buckets: tuple[float, ...] = DEFAULT_TIMING_BUCKETS, **labels: Any
) -> Callable:
    """``@timed`` against the default registry."""
    return _DEFAULT_REGISTRY.timed(name, buckets=buckets, **labels)


def set_enabled(flag: bool) -> None:
    """Enable or disable the default registry."""
    if flag:
        _DEFAULT_REGISTRY.enable()
    else:
        _DEFAULT_REGISTRY.disable()


def is_enabled() -> bool:
    return _DEFAULT_REGISTRY.enabled


def reset() -> None:
    """Zero every series in the default registry."""
    _DEFAULT_REGISTRY.reset()


def snapshot() -> dict[str, Any]:
    """Snapshot of the default registry."""
    return _DEFAULT_REGISTRY.snapshot()

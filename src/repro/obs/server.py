"""Stdlib telemetry daemon: /statusz /metrics /healthz /alertz /progressz and friends.

:class:`TelemetryServer` wraps a :class:`http.server.ThreadingHTTPServer`
exposing the process's observability state over HTTP — the backend of
``repro serve-telemetry`` and ``repro serve-query``.  Routes:

``/metrics``
    Prometheus text exposition of the default metrics registry
    (:func:`repro.obs.promexport.render_prometheus` — the exact renderer
    ``repro stats --metrics --metrics-format prom`` uses).
``/healthz``
    Store health.  When the server was given a ``store_dir``, runs the
    :func:`repro.storage.fsck.fsck` walker (read-only) over the snapshot
    and WAL chain and maps its exit code: 0 → ``ok`` (HTTP 200),
    1 → ``degraded`` (HTTP 200 — recoverable damage, the store still
    serves), 2 → ``fail`` (HTTP 503).  The fsck verdict is cached for
    ``health_ttl_s`` seconds (pollers should not trigger a full walk per
    request), and when a background :class:`repro.storage.scrub.Scrubber`
    is attached its last verdict (with its age) is served instead of
    running fsck inline at all.  Sharded roots additionally report
    per-shard health rows from the shard manifest; a quarantined or
    repairing shard downgrades ``ok`` to ``degraded``.  When a query
    service is attached and its circuit breaker is open (shed/timeout
    rate over threshold), ``ok`` downgrades to ``degraded`` and the
    breaker state is included.  Without a store the endpoint reports
    process liveness only.
``/varz``
    Raw JSON metrics snapshot (counters / gauges / histograms).
``/tracez``
    Recent finished span trees from the default tracer, JSON.
``/logz``
    Tail of the in-process structured log ring, JSON
    (``?n=``, ``?level=``, ``?event=``, ``?trace=`` filters).
``/topz``
    The workload fingerprint table (:mod:`repro.obs.workload`), JSON:
    hottest query shapes with per-operator CPU/rows/bytes breakdowns and
    the per-index key-usage histograms (``?n=``, ``?sort=`` — one of the
    table's sort keys).  The live backend of ``repro top``.
``/profilez``
    The process-wide sampling profiler (:mod:`repro.obs.profiling`).
    ``?action=start|stop|reset`` drives the lifecycle (``&hz=`` with
    start), the bare endpoint reports status, and ``?format=collapsed``
    returns accumulated samples as ``flamegraph.pl``-ready text.
``/progressz``
    In-flight and recently finished long-running operations
    (:mod:`repro.obs.progress`): checkpoints, bulk builds, fsck walks,
    sharded ingests — each with done/total, rate, and ETA.  JSON.
``/alertz``
    SLO evaluation results (:mod:`repro.obs.slo`) when the server was
    given an ``slo_engine``; otherwise an ``{"enabled": false}`` stub so
    pollers can distinguish "no alerting configured" from "all clear".
``/statusz``
    The human dashboard: one self-contained server-rendered HTML page
    (inline CSS, no JavaScript, no external assets) showing per-shard
    health, buffer-pool hit rates, WAL/checkpoint state, firing alerts,
    in-flight progress, and recent slow queries.  Auto-refreshes.
``/query``
    Present when the server was given a ``query_service``
    (:class:`repro.resilience.QueryService`): runs ``?q=`` through
    admission control and a deadline/budget guard (``?timeout_ms=``,
    ``?max_rows=``, ``?profile=1``).  Typed failures map to HTTP codes:
    shed → 429 with a ``Retry-After`` header, deadline → 504, budget →
    422, bad query → 400.  Against a sharded engine, ``?partial_ok=1``
    tolerates failing/quarantined shards: the response carries
    ``partial: true`` plus ``shards_failed`` and is sent as HTTP 206.

The server binds before :meth:`TelemetryServer.serve_forever` returns
control, so ``port=0`` (ephemeral) works for tests: construct, read
``.port``, then drive requests.  Every handled request increments
``obs.server.requests{path=…}``.

The fsck walker is imported lazily inside the health check —
``repro.storage`` itself instruments through ``repro.obs``, and a
module-level import here would complete that cycle.
"""

from __future__ import annotations

import json
import re
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    QueryCancelled,
    QueryError,
    QueryTimeout,
)
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.obs import profiling as _profiling
from repro.obs import progress as _progress
from repro.obs import tracing as _tracing
from repro.obs import workload as _workload
from repro.obs.promexport import render_prometheus

__all__ = ["TelemetryServer", "DEFAULT_PORT"]

#: Default TCP port for ``repro serve-telemetry``.
DEFAULT_PORT = 9179

#: Seconds :meth:`TelemetryServer.stop` waits for the serving thread.
_STOP_JOIN_TIMEOUT_S = 5.0

def _count_request(path: str) -> None:
    _metrics.counter("obs.server.requests", path=path).inc()


#: Default seconds a /healthz fsck verdict is served from cache.  An
#: inline fsck walks every page and WAL frame — fine once, pathological
#: when a load balancer polls every second.
DEFAULT_HEALTH_TTL_S = 5.0

#: ``(expires_monotonic, exit_code, report_dict)`` per store directory.
_health_cache: dict[str, tuple[float, int, dict[str, Any]]] = {}
_health_cache_lock = threading.Lock()


def _cached_fsck(store_dir: str, ttl_s: float) -> tuple[int, dict[str, Any], bool]:
    """fsck ``store_dir``, serving a cached verdict while it is fresh.

    Returns ``(exit_code, report_dict, was_cached)``.
    """
    now = time.monotonic()
    if ttl_s > 0:
        with _health_cache_lock:
            entry = _health_cache.get(store_dir)
        if entry is not None and now < entry[0]:
            return entry[1], entry[2], True
    # Lazy import: storage instruments via obs, so a module-level
    # import here would complete that cycle.
    from repro.storage.fsck import fsck, fsck_sharded, is_sharded_root

    if is_sharded_root(store_dir):
        report = fsck_sharded(store_dir)
    else:
        report = fsck(store_dir)
    code = report.exit_code()
    doc = report.to_dict()
    if ttl_s > 0:
        with _health_cache_lock:
            _health_cache[store_dir] = (now + ttl_s, code, doc)
    return code, doc, False


def _manifest_shard_health(store_dir: str) -> list[dict[str, Any]] | None:
    """Per-shard health rows from a sharded root's manifest, or ``None``.

    The health machine persists non-healthy shards into ``shards.json``;
    shards absent from that section are healthy.
    """
    try:
        doc = json.loads(
            (Path(store_dir) / "shards.json").read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError):
        return None
    count = doc.get("shard_count")
    if not isinstance(count, int) or count < 1:
        return None
    persisted = doc.get("health") or {}
    rows = []
    for i in range(count):
        entry = persisted.get(str(i)) if isinstance(persisted, dict) else None
        if isinstance(entry, dict):
            rows.append(
                {
                    "shard": i,
                    "state": entry.get("state", "healthy"),
                    "reason": entry.get("reason", ""),
                }
            )
        else:
            rows.append({"shard": i, "state": "healthy", "reason": ""})
    return rows


def _health_payload(
    store_dir: str | None,
    query_service: Any = None,
    *,
    ttl_s: float = DEFAULT_HEALTH_TTL_S,
    scrubber: Any = None,
) -> tuple[int, dict[str, Any]]:
    """(http_status, body) for /healthz."""
    if store_dir is None:
        body: dict[str, Any] = {"status": "ok", "store": None}
        http_status = 200
    else:
        verdict = scrubber.last_verdict() if scrubber is not None else None
        if verdict is not None:
            # A background scrubber already deep-verified the store; its
            # last verdict (stamped with its age) replaces an inline fsck.
            status = "ok" if verdict.get("clean") else "fail"
            body = {"status": status, "store": None, "scrub": verdict}
            http_status = 503 if not verdict.get("clean") else 200
        else:
            code, doc, cached = _cached_fsck(store_dir, ttl_s)
            status = {0: "ok", 1: "degraded", 2: "fail"}[code]
            body = {"status": status, "store": doc, "cached": cached}
            http_status = 503 if code == 2 else 200
        shard_health = _manifest_shard_health(store_dir)
        if shard_health is not None:
            body["shards"] = shard_health
            if any(r["state"] in ("quarantined", "repairing") for r in shard_health):
                if body["status"] == "ok":
                    # The store's bytes may be intact, but part of the
                    # keyspace is out of service: degraded, not down.
                    body["status"] = "degraded"
    if query_service is not None:
        breaker_state = query_service.breaker.state()
        body["breaker"] = breaker_state
        if breaker_state["open"] and body["status"] == "ok":
            # Overloaded but intact: still HTTP 200, status degraded —
            # a hint to load balancers, not a liveness failure.
            body["status"] = "degraded"
    return http_status, body


# -- /statusz rendering -------------------------------------------------------

#: Flat series name with a shard label: ``storage.bufferpool.hits{shard=3}``.
_SHARD_SERIES = re.compile(r"^(?P<name>[^{]+)\{shard=(?P<shard>\d+)\}$")

#: ``storage.shard.health`` gauge levels → state names (mirrors
#: ``repro.storage.health.HEALTH_LEVELS``; duplicated because the obs
#: layer must not import storage at module level).
_HEALTH_NAMES = {0: "healthy", 1: "degraded", 2: "quarantined", 3: "repairing"}

_STATUSZ_CSS = """
body { font-family: system-ui, sans-serif; margin: 1.5rem; color: #1a1a2e; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.4rem; }
table { border-collapse: collapse; margin: 0.4rem 0; }
th, td { border: 1px solid #c8c8d8; padding: 0.25rem 0.6rem;
         font-size: 0.85rem; text-align: right; }
th { background: #eef; } td.l, th.l { text-align: left; }
.ok { color: #1a7a2e; } .warn { color: #a06000; } .bad { color: #b02020; }
.muted { color: #777; font-size: 0.85rem; }
.bar { display: inline-block; width: 120px; height: 0.7rem;
       background: #e4e4f0; vertical-align: middle; }
.bar > span { display: block; height: 100%; background: #4a6fd0; }
"""


def _esc(value: Any) -> str:
    """Minimal HTML escaping (the stdlib ``html`` module is outside the
    obs import allowlist, and three replacements are all we need)."""
    return (
        str(value).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _shard_rows(snapshot: dict[str, Any]) -> list[dict[str, Any]]:
    """Per-shard series folded into one row per shard, sorted by shard id."""
    shards: dict[int, dict[str, float]] = {}
    for kind in ("counters", "gauges"):
        for flat, value in snapshot.get(kind, {}).items():
            match = _SHARD_SERIES.match(flat)
            if match:
                shard = int(match.group("shard"))
                shards.setdefault(shard, {})[match.group("name")] = value
    return [
        {"shard": shard, **series} for shard, series in sorted(shards.items())
    ]


def _hit_rate(hits: float, misses: float) -> str:
    total = hits + misses
    return f"{100.0 * hits / total:.1f}%" if total else "–"


def _statusz_html(
    *,
    store_dir: str | None,
    slo_engine: Any,
    query_service: Any,
) -> str:
    """The whole dashboard as one dependency-free HTML document."""
    snapshot = _metrics.snapshot()
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    now = datetime.now(timezone.utc).isoformat(timespec="seconds")
    out: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<meta http-equiv='refresh' content='5'>",
        "<title>repro /statusz</title>",
        f"<style>{_STATUSZ_CSS}</style></head><body>",
        "<h1>repro telemetry — /statusz</h1>",
        f"<p class='muted'>generated {_esc(now)}Z · "
        f"store: {_esc(store_dir) if store_dir else 'none (in-memory)'} · "
        "<a href='/metrics'>/metrics</a> <a href='/healthz'>/healthz</a> "
        "<a href='/alertz'>/alertz</a> <a href='/progressz'>/progressz</a> "
        "<a href='/varz'>/varz</a> <a href='/tracez'>/tracez</a> "
        "<a href='/logz'>/logz</a> <a href='/topz'>/topz</a></p>",
    ]

    # -- alerts --------------------------------------------------------------
    out.append("<h2>Alerts</h2>")
    if slo_engine is None:
        out.append(
            "<p class='muted'>SLO engine not attached — serve with "
            "<code>--timeseries</code> to enable burn-rate evaluation.</p>"
        )
    else:
        evaluation = slo_engine.evaluate()
        firing = evaluation["firing"]
        if firing:
            out.append(
                "<table><tr><th class='l'>rule</th><th>severity</th>"
                "<th class='l'>reason</th></tr>"
            )
            for state in firing:
                out.append(
                    f"<tr><td class='l bad'>{_esc(state['name'])}</td>"
                    f"<td>{_esc(state['severity'])}</td>"
                    f"<td class='l'>{_esc(state['reason'])}</td></tr>"
                )
            out.append("</table>")
        else:
            no_data = [s["name"] for s in evaluation["rules"] if s.get("no_data")]
            out.append(
                f"<p class='ok'>no alerts firing "
                f"({len(evaluation['rules'])} rules evaluated"
                + (f"; no data yet: {_esc(', '.join(no_data))}" if no_data else "")
                + ")</p>"
            )
    if query_service is not None:
        breaker = query_service.breaker.state()
        css = "bad" if breaker.get("open") else "ok"
        out.append(
            f"<p>circuit breaker: <span class='{css}'>"
            f"{'open' if breaker.get('open') else 'closed'}</span></p>"
        )

    # -- per-shard health ----------------------------------------------------
    out.append("<h2>Shards</h2>")
    shards = _shard_rows(snapshot)
    if shards:
        out.append(
            "<table><tr><th>shard</th><th>health</th><th>pool hits</th>"
            "<th>pool misses</th><th>hit rate</th><th>evictions</th>"
            "<th>tree searches</th><th>tree depth</th></tr>"
        )
        for row in shards:
            hits = row.get("storage.bufferpool.hits", 0)
            misses = row.get("storage.bufferpool.misses", 0)
            level = row.get("storage.shard.health")
            name = _HEALTH_NAMES.get(int(level) if level is not None else -1, "–")
            css = {"healthy": "ok", "degraded": "warn"}.get(name, "bad")
            health_cell = (
                f"<span class='{css}'>{name}</span>" if level is not None else "–"
            )
            out.append(
                f"<tr><td>{row['shard']}</td><td>{health_cell}</td>"
                f"<td>{hits:,.0f}</td>"
                f"<td>{misses:,.0f}</td><td>{_hit_rate(hits, misses)}</td>"
                f"<td>{row.get('storage.bufferpool.evictions', 0):,.0f}</td>"
                f"<td>{row.get('storage.paged_btree.searches', 0):,.0f}</td>"
                f"<td>{row.get('storage.paged_btree.depth', 0):,.0f}</td></tr>"
            )
        out.append("</table>")
    else:
        out.append(
            "<p class='muted'>no per-shard series recorded (single store, "
            "or no paged/sharded activity in this process yet)</p>"
        )
    global_hits = counters.get("storage.bufferpool.hits", 0)
    global_misses = counters.get("storage.bufferpool.misses", 0)
    if global_hits or global_misses:
        out.append(
            f"<p>unsharded buffer pool: {global_hits:,.0f} hits / "
            f"{global_misses:,.0f} misses "
            f"({_hit_rate(global_hits, global_misses)} hit rate), "
            f"{gauges.get('storage.bufferpool.pinned', 0):,.0f} pinned</p>"
        )

    # -- WAL / checkpoint ----------------------------------------------------
    appended = counters.get("storage.wal.append.bytes", 0)
    reclaimed = counters.get("storage.checkpoint.bytes_reclaimed", 0)
    out.append("<h2>Durability</h2>")
    out.append(
        "<table><tr><th class='l'>series</th><th>value</th></tr>"
        f"<tr><td class='l'>WAL appends</td>"
        f"<td>{counters.get('storage.wal.append.count', 0):,.0f}</td></tr>"
        f"<tr><td class='l'>WAL bytes appended</td><td>{appended:,.0f}</td></tr>"
        f"<tr><td class='l'>WAL fsyncs</td>"
        f"<td>{counters.get('storage.wal.fsync.count', 0):,.0f}</td></tr>"
        f"<tr><td class='l'>checkpoints</td>"
        f"<td>{counters.get('storage.checkpoint.count', 0):,.0f}</td></tr>"
        f"<tr><td class='l'>bytes reclaimed by checkpoints</td>"
        f"<td>{reclaimed:,.0f}</td></tr>"
        f"<tr><td class='l'>un-checkpointed WAL backlog (bytes)</td>"
        f"<td>{max(0, appended - reclaimed):,.0f}</td></tr>"
        "</table>"
    )

    # -- progress ------------------------------------------------------------
    out.append("<h2>Progress</h2>")
    progress = _progress.snapshot()
    if progress["active"]:
        out.append(
            "<table><tr><th class='l'>operation</th><th>done</th><th>total</th>"
            "<th class='l'>bar</th><th>rate/s</th><th>ETA</th></tr>"
        )
        for op in progress["active"]:
            pct = op["percent"]
            bar = (
                f"<span class='bar'><span style='width:{pct:.0f}%'></span></span>"
                if pct is not None
                else "<span class='muted'>?</span>"
            )
            eta = f"{op['eta_s']:.0f}s" if op["eta_s"] is not None else "–"
            out.append(
                f"<tr><td class='l'>{_esc(op['name'])}</td>"
                f"<td>{op['done']:,}</td>"
                f"<td>{op['total'] if op['total'] is not None else '?'}</td>"
                f"<td class='l'>{bar}</td><td>{op['rate_per_s']:,.0f}</td>"
                f"<td>{eta}</td></tr>"
            )
        out.append("</table>")
    else:
        out.append("<p class='muted'>no operations in flight</p>")
    if progress["recent"]:
        out.append("<p class='muted'>recently finished: ")
        out.append(", ".join(
            f"{_esc(op['name'])} ({op['done']:,} in {op['elapsed_s']}s"
            + ("" if op["ok"] else ", FAILED") + ")"
            for op in progress["recent"][:6]
        ))
        out.append("</p>")

    # -- slow queries --------------------------------------------------------
    out.append("<h2>Recent slow queries</h2>")
    slow = _logging.tail(10, event="query.slow")
    if slow:
        out.append(
            "<table><tr><th class='l'>ts</th><th class='l'>query</th>"
            "<th>seconds</th><th>rows</th></tr>"
        )
        for record in reversed(slow):
            out.append(
                f"<tr><td class='l'>{_esc(record.get('ts', ''))}</td>"
                f"<td class='l'>{_esc(record.get('query', ''))}</td>"
                f"<td>{record.get('seconds', 0)}</td>"
                f"<td>{record.get('rows', 0)}</td></tr>"
            )
        out.append("</table>")
    else:
        out.append("<p class='muted'>none in the log ring</p>")

    out.append("</body></html>")
    return "".join(out)


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes one request; server state lives on ``self.server``."""

    server: "TelemetryServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # Route access logs through the structured logger instead of stderr.
        _logging.debug("obs.server.request", detail=format % args)

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, body: Any) -> None:
        self._send(
            status,
            "application/json; charset=utf-8",
            json.dumps(body, indent=2, sort_keys=True, default=str) + "\n",
        )

    # -- routes -------------------------------------------------------------

    def _endpoints(self) -> list[str]:
        """Every route this server answers (the / index and 404 contract)."""
        endpoints = [
            "/statusz",
            "/metrics",
            "/healthz",
            "/alertz",
            "/progressz",
            "/varz",
            "/tracez",
            "/logz",
            "/topz",
            "/profilez",
        ]
        if self.server.query_service is not None:
            endpoints.append("/query")
        return endpoints

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        _count_request(path)
        try:
            if path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(_metrics.snapshot())
                    + _workload.render_prometheus_workload(),
                )
            elif path == "/healthz":
                status, body = _health_payload(
                    self.server.store_dir,
                    self.server.query_service,
                    ttl_s=self.server.health_ttl_s,
                    scrubber=self.server.scrubber,
                )
                self._send_json(status, body)
            elif path == "/query":
                self._query(parse_qs(parsed.query))
            elif path == "/varz":
                self._send_json(200, _metrics.snapshot())
            elif path == "/tracez":
                roots = _tracing.finished_spans()
                self._send_json(
                    200, {"spans": [root.to_dict() for root in roots]}
                )
            elif path == "/logz":
                self._send_json(200, self._logz(parse_qs(parsed.query)))
            elif path == "/progressz":
                self._send_json(200, _progress.snapshot())
            elif path == "/alertz":
                self._alertz()
            elif path == "/statusz":
                self._send(
                    200,
                    "text/html; charset=utf-8",
                    _statusz_html(
                        store_dir=self.server.store_dir,
                        slo_engine=self.server.slo_engine,
                        query_service=self.server.query_service,
                    ),
                )
            elif path == "/topz":
                self._topz(parse_qs(parsed.query))
            elif path == "/profilez":
                self._profilez(parse_qs(parsed.query))
            elif path == "/":
                self._send_json(
                    200,
                    {"service": "repro-telemetry", "endpoints": self._endpoints()},
                )
            else:
                self._send_json(
                    404,
                    {
                        "error": f"no such endpoint: {path}",
                        "endpoints": self._endpoints(),
                    },
                )
        except Exception as exc:  # pragma: no cover - defensive
            _logging.error("obs.server.error", path=path, error=repr(exc))
            self._send_json(500, {"error": repr(exc)})

    def _alertz(self) -> None:
        """SLO evaluation results, or an explicit disabled stub.

        The stub is HTTP 200 on purpose: "alerting is not configured" is
        an answer, not a server error, and pollers key off ``enabled``.
        """
        engine = self.server.slo_engine
        if engine is None:
            self._send_json(
                200,
                {
                    "enabled": False,
                    "reason": "no SLO engine attached "
                              "(serve-telemetry starts one when sampling runs)",
                    "rules": [],
                    "firing": [],
                },
            )
            return
        payload = engine.evaluate()
        payload["enabled"] = True
        self._send_json(200, payload)

    def _topz(self, params: dict[str, list[str]]) -> None:
        """The workload fingerprint table plus key-usage histograms."""

        def first(key: str) -> str | None:
            values = params.get(key)
            return values[0] if values else None

        sort_by = first("sort") or "calls"
        try:
            n = int(first("n") or 20)
        except ValueError as exc:
            self._send_json(400, {"error": f"bad parameter: {exc}"})
            return
        table = _workload.get_default_table()
        try:
            rows = table.top(n, sort_by=sort_by)
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(
            200,
            {
                "sort": sort_by,
                "tracked": len(table),
                "maxsize": table.maxsize,
                "evicted_fingerprints": table.evicted_fingerprints,
                "evicted_calls": table.evicted_calls,
                "fingerprints": rows,
                "key_usage": _workload.get_default_key_usage().snapshot(),
            },
        )

    def _profilez(self, params: dict[str, list[str]]) -> None:
        """Drive the process-wide sampling profiler over HTTP."""

        def first(key: str) -> str | None:
            values = params.get(key)
            return values[0] if values else None

        profiler = _profiling.get_default_profiler()
        action = first("action")
        if first("format") == "collapsed":
            self._send(200, "text/plain; charset=utf-8", profiler.render_collapsed())
            return
        if action == "start":
            try:
                hz = int(h) if (h := first("hz")) else None
            except ValueError as exc:
                self._send_json(400, {"error": f"bad parameter: {exc}"})
                return
            try:
                profiler.start(hz=hz)
            except RuntimeError as exc:
                self._send_json(409, {"error": str(exc), **profiler.status()})
                return
        elif action == "stop":
            profiler.stop()
        elif action == "reset":
            profiler.reset()
        elif action is not None:
            self._send_json(
                400, {"error": f"unknown action: {action} (start|stop|reset)"}
            )
            return
        self._send_json(200, profiler.status())

    def _query(self, params: dict[str, list[str]]) -> None:
        """Run ``?q=`` through the attached query service; map typed errors."""
        service = self.server.query_service
        if service is None:
            self._send_json(
                404, {"error": "no query service attached (use repro serve-query)"}
            )
            return

        def first(key: str) -> str | None:
            values = params.get(key)
            return values[0] if values else None

        q = first("q")
        if not q:
            self._send_json(400, {"error": "missing required parameter: q"})
            return
        try:
            timeout_ms = float(t) if (t := first("timeout_ms")) else None
            max_rows = int(m) if (m := first("max_rows")) else None
        except ValueError as exc:
            self._send_json(400, {"error": f"bad parameter: {exc}"})
            return
        profile = first("profile") in ("1", "true", "yes")
        partial_ok = first("partial_ok") in ("1", "true", "yes")
        try:
            body = service.execute_request(
                q,
                timeout_ms=timeout_ms,
                max_rows=max_rows,
                profile=profile,
                partial=partial_ok,
            )
        except AdmissionRejected as exc:
            payload = json.dumps(
                {
                    "error": "admission-rejected",
                    "reason": exc.reason,
                    "retry_after_s": exc.retry_after_s,
                },
                indent=2,
                sort_keys=True,
            ).encode("utf-8")
            self.send_response(429)
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Retry-After", str(max(1, round(exc.retry_after_s))))
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except QueryTimeout as exc:
            self._send_json(
                504,
                {
                    "error": "query-timeout",
                    "timeout_s": exc.timeout_s,
                    "rows_examined": exc.rows_examined,
                    "elapsed_s": round(exc.elapsed_s, 6),
                },
            )
        except QueryCancelled as exc:
            self._send_json(
                499,  # client closed request (nginx convention)
                {"error": "query-cancelled", "rows_examined": exc.rows_examined},
            )
        except BudgetExceeded as exc:
            self._send_json(
                422,
                {
                    "error": "budget-exceeded",
                    "budget": exc.budget,
                    "limit": exc.limit,
                    "used": exc.used,
                },
            )
        except QueryError as exc:
            self._send_json(400, {"error": "bad-query", "detail": str(exc)})
        else:
            # A degraded partial result is still a success, but the 206
            # marks it as incomplete for clients that only read status.
            self._send_json(206 if body.get("partial") else 200, body)

    @staticmethod
    def _logz(query: dict[str, list[str]]) -> dict[str, Any]:
        def first(key: str) -> str | None:
            values = query.get(key)
            return values[0] if values else None

        n_raw = first("n")
        records = _logging.tail(
            int(n_raw) if n_raw else None,
            level=first("level"),
            event=first("event"),
            trace_id=first("trace"),
        )
        return {"records": records}


class TelemetryServer:
    """Owns the HTTP server; optionally serves on a background thread.

    >>> server = TelemetryServer(port=0)      # ephemeral port
    >>> server.start()                        # background thread
    >>> server.port > 0
    True
    >>> server.stop()
    True
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        store_dir: str | None = None,
        query_service: Any = None,
        slo_engine: Any = None,
        scrubber: Any = None,
        health_ttl_s: float = DEFAULT_HEALTH_TTL_S,
    ):
        self.store_dir = str(store_dir) if store_dir is not None else None
        #: Optional :class:`repro.resilience.QueryService` behind /query
        #: (duck-typed here so the obs layer stays dependency-light).
        self.query_service = query_service
        #: Optional :class:`repro.obs.slo.SLOEngine` behind /alertz and the
        #: /statusz alerts section (duck-typed: anything with .evaluate()).
        self.slo_engine = slo_engine
        #: Optional :class:`repro.storage.scrub.Scrubber` (duck-typed:
        #: anything with ``.last_verdict()``) — when it has a verdict,
        #: /healthz serves that instead of running fsck inline.
        self.scrubber = scrubber
        #: Seconds an inline-fsck /healthz verdict is cached (0 disables).
        self.health_ttl_s = health_ttl_s
        self._httpd = ThreadingHTTPServer((host, port), _TelemetryHandler)
        self._httpd.daemon_threads = True
        # Handlers reach server state through ``self.server``.
        self._httpd.store_dir = self.store_dir  # type: ignore[attr-defined]
        self._httpd.query_service = query_service  # type: ignore[attr-defined]
        self._httpd.slo_engine = slo_engine  # type: ignore[attr-defined]
        self._httpd.scrubber = scrubber  # type: ignore[attr-defined]
        self._httpd.health_ttl_s = health_ttl_s  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        _logging.info(
            "obs.server.start", host=self.host, port=self.port, store=self.store_dir
        )

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self._httpd.server_close()

    def stop(self) -> bool:
        """Shut down and join the serving thread.

        Returns ``True`` on a clean stop.  A thread that outlives the
        join timeout is propagated instead of silently leaked: a warning
        event (``obs.server.stop_timeout``) and
        ``obs.shutdown.join_timeout{component=server}`` record it, and
        ``False`` is returned so callers can fail loudly.
        """
        self._httpd.shutdown()
        leaked = False
        if self._thread is not None:
            self._thread.join(timeout=_STOP_JOIN_TIMEOUT_S)
            leaked = self._thread.is_alive()
            if leaked:
                _logging.warn(
                    "obs.server.stop_timeout",
                    thread=self._thread.name,
                    timeout_s=_STOP_JOIN_TIMEOUT_S,
                )
                _metrics.counter("obs.shutdown.join_timeout", component="server").inc()
            self._thread = None
        self._httpd.server_close()
        _logging.info("obs.server.stop", host=self.host, port=self.port, clean=not leaked)
        return not leaked

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

"""Stdlib telemetry daemon: /metrics, /healthz, /varz, /tracez, /logz.

:class:`TelemetryServer` wraps a :class:`http.server.ThreadingHTTPServer`
exposing the process's observability state over HTTP — the backend of
``repro serve-telemetry``.  Routes:

``/metrics``
    Prometheus text exposition of the default metrics registry
    (:func:`repro.obs.promexport.render_prometheus` — the exact renderer
    ``repro stats --metrics --metrics-format prom`` uses).
``/healthz``
    Store health.  When the server was given a ``store_dir``, runs the
    :func:`repro.storage.fsck.fsck` walker (read-only) over the snapshot
    and WAL chain and maps its exit code: 0 → ``ok`` (HTTP 200),
    1 → ``degraded`` (HTTP 200 — recoverable damage, the store still
    serves), 2 → ``fail`` (HTTP 503).  Without a store the endpoint
    reports process liveness only.
``/varz``
    Raw JSON metrics snapshot (counters / gauges / histograms).
``/tracez``
    Recent finished span trees from the default tracer, JSON.
``/logz``
    Tail of the in-process structured log ring, JSON
    (``?n=``, ``?level=``, ``?event=``, ``?trace=`` filters).

The server binds before :meth:`TelemetryServer.serve_forever` returns
control, so ``port=0`` (ephemeral) works for tests: construct, read
``.port``, then drive requests.  Every handled request increments
``obs.server.requests{path=…}``.

The fsck walker is imported lazily inside the health check —
``repro.storage`` itself instruments through ``repro.obs``, and a
module-level import here would complete that cycle.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.promexport import render_prometheus

__all__ = ["TelemetryServer", "DEFAULT_PORT"]

#: Default TCP port for ``repro serve-telemetry``.
DEFAULT_PORT = 9179

def _count_request(path: str) -> None:
    _metrics.counter("obs.server.requests", path=path).inc()


def _health_payload(store_dir: str | None) -> tuple[int, dict[str, Any]]:
    """(http_status, body) for /healthz."""
    if store_dir is None:
        return 200, {"status": "ok", "store": None}
    from repro.storage.fsck import fsck  # lazy: storage instruments via obs

    report = fsck(store_dir)
    code = report.exit_code()
    status = {0: "ok", 1: "degraded", 2: "fail"}[code]
    body = {"status": status, "store": report.to_dict()}
    return (503 if code == 2 else 200), body


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes one request; server state lives on ``self.server``."""

    server: "TelemetryServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # Route access logs through the structured logger instead of stderr.
        _logging.debug("obs.server.request", detail=format % args)

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, body: Any) -> None:
        self._send(
            status,
            "application/json; charset=utf-8",
            json.dumps(body, indent=2, sort_keys=True, default=str) + "\n",
        )

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        _count_request(path)
        try:
            if path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(_metrics.snapshot()),
                )
            elif path == "/healthz":
                status, body = _health_payload(self.server.store_dir)
                self._send_json(status, body)
            elif path == "/varz":
                self._send_json(200, _metrics.snapshot())
            elif path == "/tracez":
                roots = _tracing.finished_spans()
                self._send_json(
                    200, {"spans": [root.to_dict() for root in roots]}
                )
            elif path == "/logz":
                self._send_json(200, self._logz(parse_qs(parsed.query)))
            elif path == "/":
                self._send_json(
                    200,
                    {
                        "service": "repro-telemetry",
                        "endpoints": ["/metrics", "/healthz", "/varz", "/tracez", "/logz"],
                    },
                )
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
        except Exception as exc:  # pragma: no cover - defensive
            _logging.error("obs.server.error", path=path, error=repr(exc))
            self._send_json(500, {"error": repr(exc)})

    @staticmethod
    def _logz(query: dict[str, list[str]]) -> dict[str, Any]:
        def first(key: str) -> str | None:
            values = query.get(key)
            return values[0] if values else None

        n_raw = first("n")
        records = _logging.tail(
            int(n_raw) if n_raw else None,
            level=first("level"),
            event=first("event"),
            trace_id=first("trace"),
        )
        return {"records": records}


class TelemetryServer:
    """Owns the HTTP server; optionally serves on a background thread.

    >>> server = TelemetryServer(port=0)      # ephemeral port
    >>> server.start()                        # background thread
    >>> server.port > 0
    True
    >>> server.stop()
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        store_dir: str | None = None,
    ):
        self.store_dir = str(store_dir) if store_dir is not None else None
        self._httpd = ThreadingHTTPServer((host, port), _TelemetryHandler)
        self._httpd.daemon_threads = True
        # Handlers reach server state through ``self.server``.
        self._httpd.store_dir = self.store_dir  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        _logging.info(
            "obs.server.start", host=self.host, port=self.port, store=self.store_dir
        )

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self._httpd.server_close()

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        _logging.info("obs.server.stop", host=self.host, port=self.port)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

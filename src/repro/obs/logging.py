"""Structured JSON logging with trace correlation and a ring-buffer tail.

Every log event is one JSON object: a wall-clock timestamp, a severity
level, a dotted event name, the thread's current **trace id** (when one
is bound), and arbitrary key/value fields::

    {"ts": "2026-08-06T12:00:00.123Z", "level": "info",
     "event": "storage.checkpoint", "trace_id": "a1b2c3d4e5f60001",
     "records": 271, "segments_removed": 2}

A :class:`JsonLogger` keeps the most recent events in a bounded ring
buffer (readable via :meth:`JsonLogger.tail`, the ``repro logs`` CLI, and
the telemetry server's ``/logz``), and can mirror every event to a text
stream and/or a JSONL file sink.

Design constraints (shared with the rest of ``repro.obs``, CI-enforced):

* standard library only, importable from every layer;
* **durations** stay monotonic — the only wall clock here stamps event
  timestamps, which genuinely are wall-clock quantities (operators
  correlate them with external systems); rate-limiter bookkeeping uses
  :func:`time.perf_counter`;
* near-no-op when disabled — one flag check; below-level events cost one
  dict lookup and one compare;
* rate-limited emission — a per-event-name token bucket (default
  :data:`DEFAULT_RATE_LIMIT` events/second) bounds the cost of a hot
  loop logging in a tight cycle; drops are counted in
  ``obs.log.dropped`` so silence is visible.

Trace correlation
-----------------

:func:`trace` binds a trace id to the current thread for the duration of
a ``with`` block; every event logged inside (on that thread) carries it,
nested blocks inherit it, and instrumented layers stamp the same id onto
spans (``trace_id`` attribute) and slow-query-log entries — so one slow
query can be joined across its log lines, its span tree, and its slow-log
entry.  Trace ids are process-unique: a random per-process prefix plus an
atomic sequence number (no per-call ``os.urandom`` on the hot path).

Metric names (catalogued in ``docs/observability.md``):
``obs.log.emitted``, ``obs.log.dropped``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from datetime import datetime, timezone
from typing import Any, TextIO

from repro.obs import metrics as _metrics

__all__ = [
    "LEVELS",
    "DEFAULT_CAPACITY",
    "DEFAULT_RATE_LIMIT",
    "JsonLogger",
    "get_default_logger",
    "log",
    "debug",
    "info",
    "warn",
    "error",
    "tail",
    "trace",
    "current_trace_id",
    "new_trace_id",
    "set_enabled",
    "is_enabled",
    "reset",
    "read_jsonl",
    "format_event",
]

#: Severity names in escalating order of importance.
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}

#: Default number of events retained in a logger's ring buffer.
DEFAULT_CAPACITY = 1024

#: Default per-event-name emission budget (events/second); <= 0 disables
#: rate limiting entirely.
DEFAULT_RATE_LIMIT = 200.0

_EMITTED = _metrics.counter("obs.log.emitted")
_DROPPED = _metrics.counter("obs.log.dropped")


# -- trace-id context --------------------------------------------------------

#: Random per-process prefix + atomic sequence = unique, cheap trace ids.
_TRACE_PREFIX = os.urandom(4).hex()
_TRACE_SEQ = itertools.count(1)

_local = threading.local()


def new_trace_id() -> str:
    """A fresh process-unique trace id (16 hex chars)."""
    return f"{_TRACE_PREFIX}{next(_TRACE_SEQ):08x}"


def current_trace_id() -> str | None:
    """The trace id bound to this thread, or ``None`` outside any trace."""
    stack = getattr(_local, "trace_stack", None)
    return stack[-1] if stack else None


class trace:
    """Bind a trace id to this thread for the duration of the block.

    With no argument, reuses the enclosing trace's id when one is bound
    (so nested instrumented layers join the same trace) and mints a
    fresh id otherwise.  ``__enter__`` yields the bound id.

    A hand-rolled context manager rather than ``@contextmanager``: this
    sits on the per-query hot path and the generator protocol costs more
    than the work it wraps.

    >>> with trace() as tid:
    ...     assert current_trace_id() == tid
    ...     with trace() as inner:      # nested: same trace
    ...         assert inner == tid
    >>> current_trace_id() is None
    True
    """

    __slots__ = ("_tid",)

    def __init__(self, trace_id: str | None = None) -> None:
        self._tid = trace_id

    def __enter__(self) -> str:
        tid = self._tid or current_trace_id() or new_trace_id()
        stack = getattr(_local, "trace_stack", None)
        if stack is None:
            stack = []
            _local.trace_stack = stack
        stack.append(tid)
        return tid

    def __exit__(self, *_exc: object) -> None:
        _local.trace_stack.pop()


def _now_iso() -> str:
    """Wall-clock UTC timestamp, ISO-8601 with a ``Z`` suffix."""
    return (
        datetime.now(timezone.utc)
        .isoformat(timespec="milliseconds")
        .replace("+00:00", "Z")
    )


class JsonLogger:
    """Structured JSON logger: ring buffer + optional stream/file sinks.

    Parameters
    ----------
    capacity:
        Ring-buffer size (most recent events retained).
    level:
        Minimum severity emitted (``"debug"``/``"info"``/``"warn"``/
        ``"error"``).  Events below it cost one compare.
    rate_limit_per_s:
        Per-event-name token bucket budget; ``<= 0`` disables limiting.
    stream:
        Optional text stream mirrored with one JSON line per event.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        level: str = "info",
        rate_limit_per_s: float = DEFAULT_RATE_LIMIT,
        stream: TextIO | None = None,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(LEVELS)}")
        self.capacity = capacity
        self._level = LEVELS[level]
        self._level_name = level
        self.rate_limit_per_s = float(rate_limit_per_s)
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._stream = stream
        self._file: TextIO | None = None
        self._file_path: str | None = None
        #: event name -> [tokens, last_refill_perf_counter]
        self._buckets: dict[str, list[float]] = {}
        self._lock = threading.Lock()
        self._enabled = enabled

    # -- enable / disable / level -----------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def level(self) -> str:
        return self._level_name

    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(LEVELS)}")
        self._level = LEVELS[level]
        self._level_name = level

    # -- sinks -------------------------------------------------------------

    def attach_file(self, path: Any) -> None:
        """Mirror every emitted event to ``path`` as one JSON line each.

        The file opens in append mode and each line is flushed, so an
        external ``repro logs <path>`` (or ``tail -f``) sees events live.
        """
        with self._lock:
            if self._file is not None:
                self._file.close()
            self._file = open(path, "a", encoding="utf-8")
            self._file_path = str(path)

    def detach_file(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
                self._file_path = None

    @property
    def file_path(self) -> str | None:
        """Path of the attached JSONL sink, or ``None``."""
        return self._file_path

    # -- emission ----------------------------------------------------------

    def would_log(self, level: str) -> bool:
        """Whether an event at ``level`` would pass the enabled/level gates.

        Hot paths use this to skip marshalling keyword fields for events
        that :meth:`log` would discard anyway (rate limiting still applies
        at emission time and is not consulted here).
        """
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(LEVELS)}")
        return self._enabled and severity >= self._level

    def log(self, event: str, level: str = "info", **fields: Any) -> None:
        """Emit one structured event; no-op when disabled or below level."""
        if not self._enabled:
            return
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(LEVELS)}")
        if severity < self._level:
            return
        if not self._allow(event):
            _DROPPED.inc()
            return
        record: dict[str, Any] = {"ts": _now_iso(), "level": level, "event": event}
        tid = current_trace_id()
        if tid is not None:
            record["trace_id"] = tid
        if fields:
            record.update(fields)
        self._ring.append(record)
        _EMITTED.inc()
        if self._stream is not None or self._file is not None:
            line = json.dumps(record, ensure_ascii=False, default=str)
            with self._lock:
                if self._stream is not None:
                    self._stream.write(line + "\n")
                if self._file is not None:
                    self._file.write(line + "\n")
                    self._file.flush()

    def debug(self, event: str, **fields: Any) -> None:
        self.log(event, "debug", **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(event, "info", **fields)

    def warn(self, event: str, **fields: Any) -> None:
        self.log(event, "warn", **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(event, "error", **fields)

    def _allow(self, event: str) -> bool:
        """Token-bucket admission per event name (monotonic clock)."""
        limit = self.rate_limit_per_s
        if limit <= 0:
            return True
        now = time.perf_counter()
        with self._lock:
            bucket = self._buckets.get(event)
            if bucket is None:
                self._buckets[event] = [limit - 1.0, now]
                return True
            tokens = min(limit, bucket[0] + (now - bucket[1]) * limit)
            bucket[1] = now
            if tokens < 1.0:
                bucket[0] = tokens
                return False
            bucket[0] = tokens - 1.0
            return True

    # -- reading back ------------------------------------------------------

    def tail(
        self,
        n: int | None = None,
        *,
        level: str | None = None,
        event: str | None = None,
        trace_id: str | None = None,
    ) -> list[dict[str, Any]]:
        """The most recent events, oldest first.

        ``level`` is a *minimum* severity; ``event`` matches the event
        name exactly or as a dotted prefix (``"storage"`` matches
        ``"storage.checkpoint"``); ``trace_id`` matches exactly.  ``n``
        caps the result to the newest ``n`` events after filtering.
        """
        records = list(self._ring)
        if level is not None:
            if level not in LEVELS:
                raise ValueError(f"unknown level {level!r}")
            floor = LEVELS[level]
            records = [r for r in records if LEVELS.get(r.get("level", ""), 0) >= floor]
        if event is not None:
            prefix = event.rstrip(".")  # "query." filters like "query"
            records = [
                r
                for r in records
                if r.get("event") == prefix
                or str(r.get("event", "")).startswith(prefix + ".")
            ]
        if trace_id is not None:
            records = [r for r in records if r.get("trace_id") == trace_id]
        if n is not None and n >= 0:
            records = records[len(records) - min(n, len(records)):]
        return records

    def reset(self) -> None:
        """Drop the ring buffer and rate-limiter state (sinks stay attached)."""
        self._ring.clear()
        with self._lock:
            self._buckets.clear()

    def close(self) -> None:
        self.detach_file()


# -- reading and rendering persisted logs ------------------------------------


def read_jsonl(path: Any) -> list[dict[str, Any]]:
    """Parse a JSONL log file into event dicts (malformed lines skipped).

    Tolerating damage matters: the file may be mid-write when read, and a
    crash can leave a torn final line — both are normal for a tail tool.
    """
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                events.append(record)
    return events


def format_event(record: dict[str, Any]) -> str:
    """One aligned human-readable line for an event dict."""
    ts = record.get("ts", "-")
    level = str(record.get("level", "-")).upper()
    event = record.get("event", "-")
    tid = record.get("trace_id")
    extras = " ".join(
        f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}"
        for key, value in record.items()
        if key not in ("ts", "level", "event", "trace_id")
    )
    parts = [f"{ts}  {level:<5}  {event}"]
    if tid:
        parts.append(f"trace={tid}")
    if extras:
        parts.append(extras)
    return "  ".join(parts)


# -- process-global default logger -------------------------------------------

_DEFAULT_LOGGER = JsonLogger()


def get_default_logger() -> JsonLogger:
    """The process-global logger all built-in instrumentation reports to."""
    return _DEFAULT_LOGGER


def log(event: str, level: str = "info", **fields: Any) -> None:
    """Emit an event on the default logger."""
    _DEFAULT_LOGGER.log(event, level, **fields)


def would_log(level: str) -> bool:
    """Whether the default logger would emit at ``level`` (see :meth:`JsonLogger.would_log`)."""
    return _DEFAULT_LOGGER.would_log(level)


def debug(event: str, **fields: Any) -> None:
    _DEFAULT_LOGGER.log(event, "debug", **fields)


def info(event: str, **fields: Any) -> None:
    _DEFAULT_LOGGER.log(event, "info", **fields)


def warn(event: str, **fields: Any) -> None:
    _DEFAULT_LOGGER.log(event, "warn", **fields)


def error(event: str, **fields: Any) -> None:
    _DEFAULT_LOGGER.log(event, "error", **fields)


def tail(n: int | None = None, **filters: Any) -> list[dict[str, Any]]:
    """Tail of the default logger's ring buffer (see :meth:`JsonLogger.tail`)."""
    return _DEFAULT_LOGGER.tail(n, **filters)


def set_enabled(flag: bool) -> None:
    """Enable or disable the default logger."""
    if flag:
        _DEFAULT_LOGGER.enable()
    else:
        _DEFAULT_LOGGER.disable()


def is_enabled() -> bool:
    return _DEFAULT_LOGGER.enabled


def reset() -> None:
    """Drop the default logger's ring buffer and rate-limiter state."""
    _DEFAULT_LOGGER.reset()

"""Declarative SLOs with multi-window burn-rate alerting.

Metrics nobody watches are decoration.  This module closes the loop:
operators declare *service level objectives* as data (JSON rules, see
below), and :class:`SLOEngine` evaluates them over the sampled history
in :class:`~repro.obs.timeseries.TimeSeriesLog` — the same samples the
telemetry daemon's recorder already writes.  Results surface on the
daemon's ``/alertz`` endpoint, the ``/statusz`` dashboard, and the
``repro alerts`` CLI.

Two rule kinds cover the fleet basics:

``availability`` — an error-budget SLO over a (bad, total) counter
pair, alerted on **burn rate**: ``burn = (Δbad/Δtotal) / (1 -
objective)``, i.e. how many times faster than "exactly on objective"
the error budget is being spent.  Each window pair fires only when
*both* the long and the short window exceed the threshold — the long
window proves the problem is sustained, the short window proves it is
still happening (so alerts reset quickly once the bleeding stops)::

    {"name": "query-availability", "kind": "availability",
     "objective": 0.999,
     "total": "query.executions", "bad": "query.failures",
     "windows": [
       {"long_s": 3600,  "short_s": 300,  "burn": 14.4, "severity": "page"},
       {"long_s": 21600, "short_s": 1800, "burn": 6.0,  "severity": "ticket"}]}

``threshold`` — a bound on a derived value, held over a window.  The
``source`` selects the derivation: ``gauge`` (latest gauge value),
``gauge_max`` (max of the latest values across a labelled gauge family,
e.g. the worst ``storage.shard.health{shard=…}`` level in the fleet),
``rate`` (Δcounter per second over ``window_s``), ``ratio``
(Δnumerator/Δdenominator over ``window_s`` — e.g. mean query latency
from a histogram's sampled ``.sum``/``.count``), ``counter_gap``
(latest A minus latest B — e.g. WAL bytes appended minus bytes
reclaimed), or ``staleness`` (seconds since the counter last moved —
e.g. time since the last checkpoint)::

    {"name": "checkpoint-staleness", "kind": "threshold",
     "source": "staleness", "metric": "storage.checkpoint.count",
     "op": ">", "bound": 3600, "severity": "ticket"}

A rule without enough samples to evaluate reports ``no_data`` and does
**not** fire — silence is not evidence of health, but it is not
evidence of an outage either; the dashboard renders no-data states
distinctly so a dead recorder is visible.

Standard library only, like the rest of ``repro.obs``.  Metric names
(catalogued in ``docs/observability.md``): ``obs.slo.evaluations``,
``obs.slo.firing``.
"""

from __future__ import annotations

import json
import threading
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.obs.timeseries import TimeSeriesLog

__all__ = [
    "SLOEngine",
    "load_rules",
    "validate_rules",
    "DEFAULT_RULES",
    "SEVERITIES",
]

#: Escalating alert severities (rules may use any of these).
SEVERITIES = ("info", "ticket", "page")

_EVALUATIONS = _metrics.counter("obs.slo.evaluations")
_FIRING = _metrics.gauge("obs.slo.firing")

_THRESHOLD_SOURCES = (
    "gauge",
    "gauge_max",
    "rate",
    "ratio",
    "counter_gap",
    "staleness",
)
_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

#: Burn thresholds/windows follow the multiwindow, multi-burn-rate
#: alerting recipe: a fast burn pages (budget gone in ~2 days at 99.9%),
#: a slow burn files a ticket.
DEFAULT_RULES: list[dict[str, Any]] = [
    {
        "name": "query-availability",
        "kind": "availability",
        "objective": 0.999,
        "total": "query.executions",
        "bad": "query.failures",
        "windows": [
            {"long_s": 3600, "short_s": 300, "burn": 14.4, "severity": "page"},
            {"long_s": 21600, "short_s": 1800, "burn": 6.0, "severity": "ticket"},
        ],
    },
    {
        "name": "query-mean-latency",
        "kind": "threshold",
        "source": "ratio",
        "numerator": "query.seconds.sum",
        "denominator": "query.seconds.count",
        "op": ">",
        "bound": 0.250,
        "window_s": 300,
        "severity": "ticket",
    },
    {
        "name": "checkpoint-staleness",
        "kind": "threshold",
        "source": "staleness",
        "metric": "storage.checkpoint.count",
        "op": ">",
        "bound": 3600,
        "severity": "ticket",
    },
    {
        # Health levels: 0 healthy, 1 degraded, 2 quarantined,
        # 3 repairing (see repro.storage.health.HEALTH_LEVELS).  A
        # quarantined shard means reads are already degraded — page.
        "name": "shard-quarantined",
        "kind": "threshold",
        "source": "gauge_max",
        "metric": "storage.shard.health",
        "op": ">=",
        "bound": 2,
        "severity": "page",
    },
    {
        "name": "wal-backlog",
        "kind": "threshold",
        "source": "counter_gap",
        "metric": "storage.wal.append.bytes",
        "minus": "storage.checkpoint.bytes_reclaimed",
        "op": ">",
        "bound": 256 << 20,
        "severity": "ticket",
    },
]


def _now() -> tuple[str, float]:
    now = datetime.now(timezone.utc)
    iso = now.isoformat(timespec="milliseconds").replace("+00:00", "Z")
    return iso, now.timestamp()


def validate_rules(rules: Any) -> list[dict[str, Any]]:
    """Check a parsed rules document; returns the rule list.

    Accepts either a bare list or ``{"slos": [...]}``.  Raises
    ``ValueError`` naming the offending rule and field — rule files are
    operator-written, so errors must say *what* is wrong, not just fail.
    """
    if isinstance(rules, dict):
        rules = rules.get("slos")
    if not isinstance(rules, list) or not rules:
        raise ValueError("SLO rules must be a non-empty list (or {'slos': [...]})")
    seen: set[str] = set()
    for i, rule in enumerate(rules):
        where = f"rule #{i}"
        if not isinstance(rule, dict):
            raise ValueError(f"{where}: expected an object, got {type(rule).__name__}")
        name = rule.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: missing 'name'")
        where = f"rule {name!r}"
        if name in seen:
            raise ValueError(f"{where}: duplicate rule name")
        seen.add(name)
        kind = rule.get("kind")
        if kind == "availability":
            objective = rule.get("objective")
            if not isinstance(objective, (int, float)) or not 0 < objective < 1:
                raise ValueError(f"{where}: 'objective' must be in (0, 1)")
            for field in ("total", "bad"):
                if not isinstance(rule.get(field), str):
                    raise ValueError(f"{where}: missing counter name {field!r}")
            windows = rule.get("windows")
            if not isinstance(windows, list) or not windows:
                raise ValueError(f"{where}: 'windows' must be a non-empty list")
            for window in windows:
                for field in ("long_s", "short_s", "burn"):
                    value = window.get(field) if isinstance(window, dict) else None
                    if not isinstance(value, (int, float)) or value <= 0:
                        raise ValueError(f"{where}: window needs positive {field!r}")
                if window.get("severity", "ticket") not in SEVERITIES:
                    raise ValueError(
                        f"{where}: severity must be one of {SEVERITIES}"
                    )
        elif kind == "threshold":
            source = rule.get("source")
            if source not in _THRESHOLD_SOURCES:
                raise ValueError(
                    f"{where}: 'source' must be one of {_THRESHOLD_SOURCES}"
                )
            if rule.get("op", ">") not in _OPS:
                raise ValueError(f"{where}: 'op' must be one of {sorted(_OPS)}")
            if not isinstance(rule.get("bound"), (int, float)):
                raise ValueError(f"{where}: missing numeric 'bound'")
            if source == "ratio":
                for field in ("numerator", "denominator"):
                    if not isinstance(rule.get(field), str):
                        raise ValueError(f"{where}: ratio needs {field!r}")
            elif source == "counter_gap":
                for field in ("metric", "minus"):
                    if not isinstance(rule.get(field), str):
                        raise ValueError(f"{where}: counter_gap needs {field!r}")
            elif not isinstance(rule.get("metric"), str):
                raise ValueError(f"{where}: missing 'metric'")
            if source in ("rate", "ratio") and not isinstance(
                rule.get("window_s"), (int, float)
            ):
                raise ValueError(f"{where}: source {source!r} needs 'window_s'")
            if rule.get("severity", "ticket") not in SEVERITIES:
                raise ValueError(f"{where}: severity must be one of {SEVERITIES}")
        else:
            raise ValueError(
                f"{where}: 'kind' must be 'availability' or 'threshold'"
            )
    return rules


def load_rules(path: Path | str) -> list[dict[str, Any]]:
    """Read and validate a JSON rules file."""
    with open(path, encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON in SLO rules file {path}: {exc}") from exc
    return validate_rules(doc)


def _delta(window: list[dict[str, Any]], name: str) -> float | None:
    """Counter delta across a sample window, Prometheus reset rule.

    ``None`` when the window has fewer than two samples or the counter
    never appears (counter-absent and counter-zero are different facts).
    """
    if len(window) < 2:
        return None
    first, last = window[0], window[-1]
    end = last.get("counters", {}).get(name)
    if end is None:
        return None
    start = first.get("counters", {}).get(name, 0)
    delta = end - start
    return float(end) if delta < 0 else float(delta)


class SLOEngine:
    """Evaluates SLO rules over a :class:`TimeSeriesLog`.

    Stateless per evaluation except for edge detection: transitions
    into/out of firing emit ``obs.slo.firing`` / ``obs.slo.resolved``
    log events, so the structured log carries alert history even when
    nobody polls ``/alertz``.
    """

    def __init__(
        self,
        log: TimeSeriesLog,
        rules: list[dict[str, Any]] | None = None,
    ):
        self.log = log
        self.rules = validate_rules(rules if rules is not None else DEFAULT_RULES)
        self._was_firing: set[str] = set()
        self._lock = threading.Lock()

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, *, now_epoch: float | None = None) -> dict[str, Any]:
        """Evaluate every rule; returns the ``/alertz`` payload shape:
        ``{"generated_ts", "rules": [state, ...], "firing": [...]}``."""
        iso, epoch = _now()
        if now_epoch is None:
            now_epoch = epoch
        states = []
        for rule in self.rules:
            if rule["kind"] == "availability":
                states.append(self._eval_availability(rule, now_epoch))
            else:
                states.append(self._eval_threshold(rule, now_epoch))
        firing = [s for s in states if s["firing"]]
        _EVALUATIONS.inc()
        _FIRING.set(len(firing))
        self._log_transitions(states)
        return {"generated_ts": iso, "rules": states, "firing": firing}

    def firing(self, *, now_epoch: float | None = None) -> list[dict[str, Any]]:
        """Just the rules currently firing."""
        return self.evaluate(now_epoch=now_epoch)["firing"]

    def _log_transitions(self, states: list[dict[str, Any]]) -> None:
        with self._lock:
            now_firing = {s["name"] for s in states if s["firing"]}
            started = now_firing - self._was_firing
            resolved = self._was_firing - now_firing
            self._was_firing = now_firing
        for state in states:
            if state["name"] in started:
                _logging.warn(
                    "obs.slo.firing",
                    rule=state["name"],
                    severity=state["severity"],
                    reason=state["reason"],
                )
        for name in resolved:
            _logging.info("obs.slo.resolved", rule=name)

    # -- availability (burn rate) -------------------------------------------

    def _eval_availability(
        self, rule: dict[str, Any], now_epoch: float
    ) -> dict[str, Any]:
        budget = 1.0 - float(rule["objective"])
        window_states = []
        firing_severity: str | None = None
        no_data = True
        for window in rule["windows"]:
            burns = {}
            for arm, seconds in (("long", window["long_s"]), ("short", window["short_s"])):
                samples = self.log.window(seconds, now_epoch=now_epoch)
                bad = _delta(samples, rule["bad"])
                total = _delta(samples, rule["total"])
                if bad is None or total is None or total <= 0:
                    burns[arm] = None
                else:
                    burns[arm] = (bad / total) / budget
            fires = (
                burns["long"] is not None
                and burns["short"] is not None
                and burns["long"] >= window["burn"]
                and burns["short"] >= window["burn"]
            )
            if burns["long"] is not None or burns["short"] is not None:
                no_data = False
            severity = window.get("severity", "ticket")
            window_states.append(
                {
                    "long_s": window["long_s"],
                    "short_s": window["short_s"],
                    "threshold": window["burn"],
                    "burn_long": round(burns["long"], 3) if burns["long"] is not None else None,
                    "burn_short": round(burns["short"], 3) if burns["short"] is not None else None,
                    "severity": severity,
                    "firing": fires,
                }
            )
            if fires and (
                firing_severity is None
                or SEVERITIES.index(severity) > SEVERITIES.index(firing_severity)
            ):
                firing_severity = severity
        firing = firing_severity is not None
        if firing:
            worst = max(
                (w for w in window_states if w["firing"]),
                key=lambda w: (w["burn_long"] or 0),
            )
            reason = (
                f"burn rate {worst['burn_long']:.1f}x over {worst['long_s']:.0f}s "
                f"(threshold {worst['threshold']}x, objective {rule['objective']})"
            )
        elif no_data:
            reason = "no data"
        else:
            reason = "within budget"
        return {
            "name": rule["name"],
            "kind": "availability",
            "objective": rule["objective"],
            "severity": firing_severity or rule["windows"][0].get("severity", "ticket"),
            "firing": firing,
            "no_data": no_data,
            "windows": window_states,
            "reason": reason,
        }

    # -- threshold ------------------------------------------------------------

    def _eval_threshold(
        self, rule: dict[str, Any], now_epoch: float
    ) -> dict[str, Any]:
        source = rule["source"]
        value: float | None
        detail = ""
        if source == "gauge":
            value = self._latest_gauge(rule["metric"])
            detail = rule["metric"]
        elif source == "gauge_max":
            value = self._latest_gauge_max(rule["metric"])
            detail = f"max({rule['metric']}{{…}})"
        elif source == "rate":
            samples = self.log.window(rule["window_s"], now_epoch=now_epoch)
            delta = _delta(samples, rule["metric"])
            elapsed = (
                float(samples[-1]["epoch"]) - float(samples[0]["epoch"])
                if len(samples) >= 2
                else 0.0
            )
            value = delta / elapsed if delta is not None and elapsed > 0 else None
            detail = f"rate({rule['metric']})/{rule['window_s']:.0f}s"
        elif source == "ratio":
            samples = self.log.window(rule["window_s"], now_epoch=now_epoch)
            num = _delta(samples, rule["numerator"])
            den = _delta(samples, rule["denominator"])
            value = num / den if num is not None and den else None
            detail = f"{rule['numerator']}/{rule['denominator']}"
        elif source == "counter_gap":
            a = self._latest_counter(rule["metric"])
            b = self._latest_counter(rule["minus"])
            value = a - b if a is not None and b is not None else None
            detail = f"{rule['metric']} - {rule['minus']}"
        else:  # staleness
            value = self._staleness(rule["metric"], now_epoch)
            detail = f"seconds since {rule['metric']} moved"
        op = rule.get("op", ">")
        firing = value is not None and _OPS[op](value, rule["bound"])
        if firing:
            reason = f"{detail} = {value:.3f} {op} {rule['bound']}"
        elif value is None:
            reason = "no data"
        else:
            reason = f"{detail} = {value:.3f} within bound"
        return {
            "name": rule["name"],
            "kind": "threshold",
            "source": source,
            "severity": rule.get("severity", "ticket"),
            "firing": firing,
            "no_data": value is None,
            "value": round(value, 6) if value is not None else None,
            "op": op,
            "bound": rule["bound"],
            "reason": reason,
        }

    def _latest_gauge(self, name: str) -> float | None:
        samples = self.log.samples()
        if not samples:
            return None
        value = samples[-1].get("gauges", {}).get(name)
        return float(value) if value is not None else None

    def _latest_gauge_max(self, name: str) -> float | None:
        """Max latest value across a labelled gauge family.

        Matches the flat name exactly plus every labelled series
        (``name{…}``), so one rule covers a per-shard family without
        knowing the shard count up front.
        """
        samples = self.log.samples()
        if not samples:
            return None
        prefix = name + "{"
        values = [
            float(v)
            for key, v in samples[-1].get("gauges", {}).items()
            if key == name or key.startswith(prefix)
        ]
        return max(values) if values else None

    def _latest_counter(self, name: str) -> float | None:
        samples = self.log.samples()
        if not samples:
            return None
        value = samples[-1].get("counters", {}).get(name)
        return float(value) if value is not None else None

    def _staleness(self, name: str, now_epoch: float) -> float | None:
        """Seconds since ``name`` last changed value.

        ``None`` (no data) when the counter is absent, was never nonzero
        in retained history (the op never runs here — e.g. a pure-query
        process that never checkpoints), or history is a single sample.
        """
        samples = self.log.samples()
        values = [
            (s["epoch"], s.get("counters", {}).get(name))
            for s in samples
            if name in s.get("counters", {})
        ]
        if len(values) < 2 or not any(v for _, v in values):
            return None
        last_change = values[0][0]
        for (_, prev), (epoch, cur) in zip(values, values[1:]):
            if cur != prev:
                last_change = epoch
        return max(0.0, now_epoch - last_change)

"""Nestable spans with ring-buffer retention.

A :class:`Span` is a context manager recording a name, wall time (via the
monotonic :func:`time.perf_counter`), key/value attributes, and child
spans.  A :class:`Tracer` maintains a per-thread span stack so nesting is
automatic::

    with tracer.span("build.index", records=42):
        with tracer.span("build.collate"):
            ...

Finished *root* spans land in a bounded ring buffer (oldest evicted
first), so a long-lived process keeps the most recent traces without
unbounded growth.  A disabled tracer hands out a shared no-op span and
touches no per-thread state — the hot-path cost is one flag check.

Cross-thread propagation
------------------------

The span stack is per-thread, so work handed to a pool thread would
normally start a *new* root there — detaching per-shard work from its
query's trace and littering the ring with orphan roots.
:class:`TraceContext` fixes that: ``TraceContext.capture()`` on the
submitting thread grabs the current trace id and span, and
``ctx.attach()`` on the worker re-binds both — the captured span is
pushed as a **foreign frame** (new spans nest under it; it is never
finished or retained by the worker), and the trace id is re-bound so
the worker's log lines join the query's trace::

    ctx = TraceContext.capture()
    def worker():
        with ctx.attach():
            with span("query.shard", shard=3):   # child of the query root
                ...
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "TraceContext",
    "get_default_tracer",
    "span",
    "set_enabled",
    "is_enabled",
    "reset",
    "finished_spans",
]

#: Default number of finished root spans retained by a tracer.
DEFAULT_CAPACITY = 256


class Span:
    """One timed operation with attributes and child spans.

    Spans are created by :meth:`Tracer.span`; use ``set_attribute`` to
    attach data discovered mid-flight (row counts, chosen access path).
    """

    __slots__ = ("name", "attributes", "children", "_start", "_end")

    def __init__(self, name: str, attributes: dict[str, Any]):
        self.name = name
        self.attributes = attributes
        self.children: list["Span"] = []
        self._start = time.perf_counter()
        self._end: float | None = None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def finished(self) -> bool:
        return self._end is not None

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view: name, duration, attributes, children."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def tree(self) -> str:
        """Indented one-line-per-span rendering of this span's subtree."""
        lines: list[str] = []
        self._tree_lines(lines, 0)
        return "\n".join(lines)

    def _tree_lines(self, lines: list[str], depth: int) -> None:
        attrs = " ".join(f"{k}={v!r}" for k, v in self.attributes.items())
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{'  ' * depth}{self.name}  {self.duration_s * 1e3:.3f}ms{suffix}")
        for child in self.children:
            child._tree_lines(lines, depth + 1)

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, children={len(self.children)})"


class _SpanHandle:
    """Context manager binding a live span to its tracer's thread stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._span._end = time.perf_counter()
        self._tracer._pop(self._span)


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = "<disabled>"
    attributes: dict[str, Any] = {}
    children: list[Span] = []
    duration_s = 0.0
    finished = True

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees; retains the last ``capacity`` finished roots.

    >>> tracer = Tracer(capacity=8)
    >>> with tracer.span("outer", kind="demo") as outer:
    ...     with tracer.span("inner"):
    ...         pass
    >>> root = tracer.finished_spans()[-1]
    >>> root.name, [c.name for c in root.children]
    ('outer', ['inner'])
    """

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._enabled = enabled
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- enable / disable ---------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- span creation ------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Any:
        """Open a span as a context manager; nests under the thread's
        current span, or starts a new root."""
        if not self._enabled:
            return _NULL_SPAN
        return _SpanHandle(self, Span(name, dict(attributes)))

    def current_span(self) -> Span | None:
        """The innermost open span on this thread (None outside any span)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if not stack:  # pragma: no cover - defensive
            return
        # Pop through any spans abandoned by exceptions until ours is off.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack:
            with self._lock:
                self._finished.append(span)

    # -- foreign frames (cross-thread propagation) --------------------------

    def _push_foreign(self, span: Span) -> None:
        """Adopt another thread's open span as this thread's stack base.

        Unlike :meth:`_push`, the span is *not* linked as a child of
        anything here — it already lives in its owner's tree.  New spans
        opened on this thread nest under it via the normal push path.
        """
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop_foreign(self, span: Span) -> None:
        """Remove a foreign frame without finishing or retaining it.

        The owning thread's ``__exit__`` sets ``_end`` and files the root
        in the ring; doing either here would double-finish the span or
        record an orphan root per pool thread.
        """
        stack = getattr(self._local, "stack", None)
        while stack:
            if stack.pop() is span:
                break

    # -- retention ----------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """Finished root spans, oldest first (bounded by ``capacity``)."""
        with self._lock:
            return list(self._finished)

    def last_root(self) -> Span | None:
        with self._lock:
            return self._finished[-1] if self._finished else None

    def reset(self) -> None:
        """Drop all retained spans (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()


class TraceContext:
    """Capturable trace state: one trace id + one parent span.

    Capture on the thread that owns the trace, attach on each worker
    thread the work fans out to — every span/log line the worker emits
    then joins the originating trace instead of starting a detached one.
    Capturing outside any trace/span yields a context whose ``attach``
    is a no-op, so call sites need no conditionals.

    Instances are immutable and may be attached concurrently by any
    number of worker threads (child-list appends are GIL-atomic).
    """

    __slots__ = ("trace_id", "parent_span", "_tracer")

    def __init__(
        self,
        trace_id: str | None,
        parent_span: Span | None,
        tracer: "Tracer | None" = None,
    ):
        self.trace_id = trace_id
        self.parent_span = parent_span
        self._tracer = tracer if tracer is not None else _DEFAULT_TRACER

    @classmethod
    def capture(cls, tracer: "Tracer | None" = None) -> "TraceContext":
        """Snapshot the calling thread's trace id and innermost open span."""
        from repro.obs import logging as _logging

        tracer = tracer if tracer is not None else _DEFAULT_TRACER
        parent = tracer.current_span() if tracer.enabled else None
        return cls(_logging.current_trace_id(), parent, tracer)

    @contextmanager
    def attach(self) -> Iterator["TraceContext"]:
        """Re-bind the captured trace id and parent span on this thread."""
        from repro.obs import logging as _logging

        parent = self.parent_span
        adopt = (
            parent is not None
            and self._tracer.enabled
            and self._tracer.current_span() is not parent
        )
        if adopt:
            self._tracer._push_foreign(parent)
        try:
            if self.trace_id is not None:
                with _logging.trace(self.trace_id):
                    yield self
            else:
                yield self
        finally:
            if adopt:
                self._tracer._pop_foreign(parent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parent = self.parent_span.name if self.parent_span is not None else None
        return f"TraceContext(trace_id={self.trace_id!r}, parent={parent!r})"


# -- process-global default tracer ------------------------------------------

_DEFAULT_TRACER = Tracer()


def get_default_tracer() -> Tracer:
    """The process-global tracer all built-in instrumentation reports to."""
    return _DEFAULT_TRACER


def span(name: str, **attributes: Any) -> Any:
    """Open a span on the default tracer."""
    return _DEFAULT_TRACER.span(name, **attributes)


def set_enabled(flag: bool) -> None:
    if flag:
        _DEFAULT_TRACER.enable()
    else:
        _DEFAULT_TRACER.disable()


def is_enabled() -> bool:
    return _DEFAULT_TRACER.enabled


def reset() -> None:
    _DEFAULT_TRACER.reset()


def finished_spans() -> list[Span]:
    """Finished root spans on the default tracer."""
    return _DEFAULT_TRACER.finished_spans()


def last_root() -> Span | None:
    """Most recently finished root span on the default tracer."""
    return _DEFAULT_TRACER.last_root()

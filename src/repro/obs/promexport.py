"""Prometheus text-exposition rendering of a metrics snapshot.

One function, :func:`render_prometheus`, turns the
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict into the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
0.0.4) — the same renderer backs the telemetry server's ``/metrics``
endpoint and ``repro stats --metrics --metrics-format prom``, so the CLI
and HTTP surfaces can never drift apart.

Mapping rules:

* dotted names sanitize to underscores under a ``repro_`` namespace
  (``storage.wal.fsync.count`` → ``repro_storage_wal_fsync_count``);
* counters gain the conventional ``_total`` suffix;
* gauges render as-is;
* histograms render as cumulative ``_bucket{le="…"}`` series plus
  ``_sum`` and ``_count`` (the snapshot's buckets are already cumulative
  with an explicit ``+Inf``);
* labels are sorted, values escaped per the exposition spec
  (backslash, double-quote, newline).

Every series carries one ``# HELP``/``# TYPE`` header per metric name,
series of the same name (different label sets) grouped under it, names
sorted — so two renders of the same snapshot are byte-identical.
"""

from __future__ import annotations

import re
from typing import Any

from repro.obs.export import parse_series_name

__all__ = ["render_prometheus", "prometheus_name", "escape_label_value"]

#: Default metric-name namespace prefixed to every series.
NAMESPACE = "repro"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, *, namespace: str = NAMESPACE) -> str:
    """Sanitize a dotted series name into a legal Prometheus metric name."""
    flat = _INVALID_NAME_CHARS.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if flat and flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def _label_name(name: str) -> str:
    clean = _INVALID_LABEL_CHARS.sub("_", name)
    if clean and clean[0].isdigit():
        clean = f"_{clean}"
    return clean


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = sorted(labels.items()) + list(extra)
    if not items:
        return ""
    inner = ",".join(
        f'{_label_name(key)}="{escape_label_value(str(value))}"' for key, value in items
    )
    return f"{{{inner}}}"


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _group_by_name(
    flat_series: dict[str, Any],
) -> dict[str, list[tuple[dict[str, str], Any]]]:
    """Group a snapshot section by base metric name, names sorted."""
    grouped: dict[str, list[tuple[dict[str, str], Any]]] = {}
    for flat in sorted(flat_series):
        name, labels = parse_series_name(flat)
        grouped.setdefault(name, []).append((labels, flat_series[flat]))
    return grouped


def render_prometheus(
    snapshot: dict[str, Any], *, namespace: str = NAMESPACE
) -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    The output ends with a trailing newline, as the format requires.
    """
    lines: list[str] = []

    for name, series in _group_by_name(snapshot.get("counters", {})).items():
        metric = prometheus_name(name, namespace=namespace) + "_total"
        lines.append(f"# HELP {metric} Counter {name} (repro.obs)")
        lines.append(f"# TYPE {metric} counter")
        for labels, value in series:
            lines.append(f"{metric}{_render_labels(labels)} {_format_value(value)}")

    for name, series in _group_by_name(snapshot.get("gauges", {})).items():
        metric = prometheus_name(name, namespace=namespace)
        lines.append(f"# HELP {metric} Gauge {name} (repro.obs)")
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in series:
            lines.append(f"{metric}{_render_labels(labels)} {_format_value(value)}")

    for name, series in _group_by_name(snapshot.get("histograms", {})).items():
        metric = prometheus_name(name, namespace=namespace)
        lines.append(f"# HELP {metric} Histogram {name} (repro.obs)")
        lines.append(f"# TYPE {metric} histogram")
        for labels, payload in series:
            buckets: dict[str, int] = payload.get("buckets", {})
            for bound, cumulative in buckets.items():
                le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
                lines.append(
                    f"{metric}_bucket{_render_labels(labels, (('le', le),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{metric}_sum{_render_labels(labels)} "
                f"{_format_value(payload.get('sum', 0.0))}"
            )
            lines.append(
                f"{metric}_count{_render_labels(labels)} {payload.get('count', 0)}"
            )

    return "\n".join(lines) + "\n" if lines else ""

"""Progress tracking for long-running operations.

Checkpoints, paged bulk builds, fsck deep-verify walks, format
migrations, and sharded bulk writes are all O(dataset) — at corpus
scale they run for seconds to minutes with nothing to show for it.
This module gives each of them a :class:`ProgressTracker`: a
thread-safe done/total counter with a monotonic-clock rate and ETA,
registered in a process-global :class:`ProgressRegistry` so in-flight
work is observable from the outside (the telemetry daemon's
``/progressz``, ``repro progress``) while the operation itself can
render a live stderr bar (:class:`ProgressBar`, CLI ``--progress``).

Usage — the tracker is a context manager; exit finishes it and moves
it from the registry's *active* set to its bounded *recent* ring::

    from repro.obs import progress

    with progress.start("storage.checkpoint", total=len(records)) as op:
        for record in records:
            ...
            op.tick()

Design constraints (shared with the rest of ``repro.obs``):

* standard library only; importable from the storage layer;
* rates/ETAs use :func:`time.perf_counter` (monotonic) — the only wall
  clock stamps ``started_ts`` for operator display;
* cheap on the hot path: one lock + integer add per ``tick`` (batch
  ticks with ``tick(n)`` in tight loops), listeners rate-limit
  themselves;
* bounded: completed operations land in a fixed-size ring, so a
  long-lived process never grows without bound.

Metric names (catalogued in ``docs/observability.md``):
``obs.progress.operations``.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from datetime import datetime, timezone
from typing import Any, Callable, TextIO

from repro.obs import metrics as _metrics

__all__ = [
    "ProgressTracker",
    "ProgressRegistry",
    "ProgressBar",
    "get_default_registry",
    "start",
    "snapshot",
    "reset",
]

_OPERATIONS = _metrics.counter("obs.progress.operations")

#: Completed operations retained by a registry for ``/progressz``.
DEFAULT_KEEP = 32


def _now_iso() -> str:
    return (
        datetime.now(timezone.utc)
        .isoformat(timespec="milliseconds")
        .replace("+00:00", "Z")
    )


class ProgressTracker:
    """Thread-safe done/total counter for one long-running operation.

    ``total`` may be ``None`` (unknown — e.g. a WAL replay of unknown
    length); rate still reports, percentage and ETA come back ``None``.
    Multiple worker threads may ``tick`` the same tracker concurrently
    (sharded fan-out ticks one tracker from every shard worker).
    """

    def __init__(
        self,
        name: str,
        total: int | None = None,
        *,
        registry: "ProgressRegistry | None" = None,
        **attrs: Any,
    ):
        self.name = name
        self.attrs = attrs
        self._total = total
        self._done = 0
        self._started = time.perf_counter()
        self._started_ts = _now_iso()
        self._finished: float | None = None
        self._ok = True
        self._registry = registry
        self._listeners: list[Callable[["ProgressTracker"], None]] = []
        self._lock = threading.Lock()

    # -- mutation ------------------------------------------------------------

    def tick(self, n: int = 1) -> None:
        """Advance ``done`` by ``n`` and notify listeners."""
        with self._lock:
            self._done += n
            listeners = self._listeners
        for listener in listeners:
            listener(self)

    def set_total(self, total: int | None) -> None:
        """(Re)set the expected total — for work sized mid-flight."""
        with self._lock:
            self._total = total

    def subscribe(self, listener: Callable[["ProgressTracker"], None]) -> None:
        """Call ``listener(tracker)`` on every tick and on finish."""
        with self._lock:
            self._listeners = self._listeners + [listener]

    def finish(self, ok: bool = True) -> None:
        """Mark the operation complete (idempotent) and deregister it."""
        with self._lock:
            if self._finished is not None:
                return
            self._finished = time.perf_counter()
            self._ok = ok
            listeners = self._listeners
        _OPERATIONS.inc()
        if self._registry is not None:
            self._registry._retire(self)
        for listener in listeners:
            listener(self)

    def __enter__(self) -> "ProgressTracker":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.finish(ok=exc_type is None)

    # -- introspection -------------------------------------------------------

    @property
    def done(self) -> int:
        return self._done

    @property
    def total(self) -> int | None:
        return self._total

    @property
    def finished(self) -> bool:
        return self._finished is not None

    def elapsed_s(self) -> float:
        end = self._finished if self._finished is not None else time.perf_counter()
        return end - self._started

    def rate_per_s(self) -> float:
        elapsed = self.elapsed_s()
        return self._done / elapsed if elapsed > 0 else 0.0

    def eta_s(self) -> float | None:
        """Seconds until done at the observed rate (None when unknowable)."""
        with self._lock:
            total, done = self._total, self._done
        if total is None or self._finished is not None:
            return None
        rate = self.rate_per_s()
        if rate <= 0:
            return None
        return max(0.0, (total - done) / rate)

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly view for ``/progressz`` and ``repro progress``."""
        with self._lock:
            total, done = self._total, self._done
        pct = (100.0 * done / total) if total else None
        eta = self.eta_s()
        doc: dict[str, Any] = {
            "name": self.name,
            "started_ts": self._started_ts,
            "done": done,
            "total": total,
            "percent": round(pct, 1) if pct is not None else None,
            "elapsed_s": round(self.elapsed_s(), 3),
            "rate_per_s": round(self.rate_per_s(), 1),
            "eta_s": round(eta, 1) if eta is not None else None,
            "finished": self._finished is not None,
            "ok": self._ok,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProgressTracker({self.name!r}, {self._done}/{self._total})"


class ProgressRegistry:
    """Process-global index of in-flight and recently finished trackers."""

    def __init__(self, *, keep: int = DEFAULT_KEEP):
        self._active: dict[int, ProgressTracker] = {}
        self._recent: deque[dict[str, Any]] = deque(maxlen=keep)
        self._lock = threading.Lock()

    def start(
        self, name: str, total: int | None = None, **attrs: Any
    ) -> ProgressTracker:
        """Create, register, and return a tracker for one operation."""
        tracker = ProgressTracker(name, total, registry=self, **attrs)
        with self._lock:
            self._active[id(tracker)] = tracker
        return tracker

    def _retire(self, tracker: ProgressTracker) -> None:
        with self._lock:
            self._active.pop(id(tracker), None)
            self._recent.append(tracker.snapshot())

    def active(self) -> list[ProgressTracker]:
        """In-flight trackers, oldest started first."""
        with self._lock:
            return sorted(self._active.values(), key=lambda t: t._started)

    def snapshot(self) -> dict[str, Any]:
        """``{"active": [...], "recent": [...]}``, recent newest-first."""
        with self._lock:
            active = sorted(self._active.values(), key=lambda t: t._started)
            recent = list(self._recent)
        return {
            "active": [tracker.snapshot() for tracker in active],
            "recent": recent[::-1],
        }

    def reset(self) -> None:
        """Forget all trackers (live operations keep their handles)."""
        with self._lock:
            self._active.clear()
            self._recent.clear()


class ProgressBar:
    """Live single-line stderr rendering of one tracker.

    Subscribe it to a tracker (``tracker.subscribe(bar)``); it re-renders
    at most every ``min_interval_s`` (monotonic clock) and prints a final
    newline-terminated line when the tracker finishes.  Rendering is a
    plain ``\\r`` rewrite — safe for any terminal, harmless in a pipe.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        width: int = 30,
        min_interval_s: float = 0.1,
    ):
        self._stream = stream if stream is not None else sys.stderr
        self._width = width
        self._min_interval = min_interval_s
        self._last_render = 0.0
        self._lock = threading.Lock()

    def __call__(self, tracker: ProgressTracker) -> None:
        now = time.perf_counter()
        final = tracker.finished
        with self._lock:
            if not final and now - self._last_render < self._min_interval:
                return
            self._last_render = now
            self._stream.write("\r" + self.render(tracker))
            if final:
                self._stream.write("\n")
            self._stream.flush()

    def render(self, tracker: ProgressTracker) -> str:
        snap = tracker.snapshot()
        done, total = snap["done"], snap["total"]
        rate = snap["rate_per_s"]
        if total:
            filled = min(self._width, int(self._width * done / total))
            bar = "#" * filled + "-" * (self._width - filled)
            pct = snap["percent"] or 0.0
            line = f"{tracker.name}  [{bar}] {done}/{total} ({pct:.0f}%)  {rate:,.0f}/s"
            eta = snap["eta_s"]
            if eta is not None:
                line += f"  ETA {eta:.0f}s"
        else:
            line = f"{tracker.name}  {done} done  {rate:,.0f}/s"
        if tracker.finished:
            line += f"  done in {snap['elapsed_s']:.2f}s"
        return line


# -- process-global default registry -----------------------------------------

_DEFAULT_REGISTRY = ProgressRegistry()


def get_default_registry() -> ProgressRegistry:
    """The process-global registry all built-in operations report to."""
    return _DEFAULT_REGISTRY


def start(name: str, total: int | None = None, **attrs: Any) -> ProgressTracker:
    """Register a tracker on the default registry."""
    return _DEFAULT_REGISTRY.start(name, total, **attrs)


def snapshot() -> dict[str, Any]:
    """Snapshot of the default registry (``/progressz`` payload)."""
    return _DEFAULT_REGISTRY.snapshot()


def reset() -> None:
    """Forget all trackers on the default registry."""
    return _DEFAULT_REGISTRY.reset()

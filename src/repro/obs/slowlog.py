"""Slow-query log: JSONL capture of queries over a latency threshold.

A :class:`SlowQueryLog` records every query whose end-to-end execution
time reaches ``threshold_s``.  Each entry is one JSON object carrying
everything needed to diagnose the query after the fact::

    {"ts": "2026-08-06T12:00:00.123Z", "trace_id": "a1b2c3d4e5f60001",
     "fingerprint": "9c0f3ad81b2e",
     "query": "year >= 1900 ORDER BY year",
     "plan": "INDEX RANGE (btree) year in [1900, +inf)\\nORDER BY year ASC",
     "plan_cached": true, "rows": 271, "seconds": 0.1834,
     "profile": {"op": "sort", ...}}

``trace_id`` is the id bound when the query ran (see
:mod:`repro.obs.logging`), so the entry joins the query's span tree and
its log lines.  ``profile`` is the EXPLAIN ANALYZE operator tree; when
the slow query ran unprofiled, :class:`~repro.query.executor.QueryEngine`
re-executes its plan profiled to attach one (the entry is then marked
``"profile_reexecuted": true`` — the extra cost is paid only for queries
already over the threshold, the same trade MySQL's slow log makes with
auto-EXPLAIN).

Entries land in an in-memory ring (:meth:`SlowQueryLog.entries`) and,
when the log has a ``path``, in a JSONL file with size-based rotation:
when the file would exceed ``max_bytes``, it is rotated to ``<path>.1``
(existing rotations shift up, the oldest beyond ``keep`` is deleted) and
a fresh file starts.  Every recorded entry also emits a ``query.slow``
WARN log event so slow queries surface in the ordinary log stream.

Metric names (catalogued in ``docs/observability.md``):
``query.slowlog.count``, ``query.slowlog.rotations``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.obs import logging as _logging
from repro.obs import metrics as _metrics

__all__ = ["SlowQueryLog", "DEFAULT_THRESHOLD_S", "read_slow_log"]

#: Default latency threshold: 100 ms.
DEFAULT_THRESHOLD_S = 0.100

#: Default rotation size (bytes) and retained rotation count.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024
DEFAULT_KEEP = 3

_SLOW_COUNT = _metrics.counter("query.slowlog.count")
_SLOW_ROTATIONS = _metrics.counter("query.slowlog.rotations")


def _now_iso() -> str:
    return (
        datetime.now(timezone.utc)
        .isoformat(timespec="milliseconds")
        .replace("+00:00", "Z")
    )


class SlowQueryLog:
    """Capture queries at or over a latency threshold.

    Parameters
    ----------
    path:
        JSONL file to persist entries to; ``None`` keeps entries only in
        the in-memory ring.
    threshold_s:
        Executions taking at least this many seconds are recorded.
    max_bytes / keep:
        Rotation policy for the JSONL file (see module docstring).
    capacity:
        In-memory ring size.
    profile_on_slow:
        Whether the query engine should re-execute an unprofiled slow
        query with profiling to attach its operator tree.
    """

    def __init__(
        self,
        path: Path | str | None = None,
        *,
        threshold_s: float = DEFAULT_THRESHOLD_S,
        max_bytes: int = DEFAULT_MAX_BYTES,
        keep: int = DEFAULT_KEEP,
        capacity: int = 128,
        profile_on_slow: bool = True,
    ):
        if threshold_s < 0:
            raise ValueError(f"threshold_s must be >= 0, got {threshold_s}")
        if max_bytes < 1 or keep < 1 or capacity < 1:
            raise ValueError("max_bytes, keep, and capacity must all be >= 1")
        self.path = Path(path) if path is not None else None
        self.threshold_s = float(threshold_s)
        self.max_bytes = int(max_bytes)
        self.keep = int(keep)
        self.profile_on_slow = profile_on_slow
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def record(
        self,
        *,
        query: str,
        plan: str,
        plan_cached: bool,
        rows: int,
        seconds: float,
        profile: Any = None,
        reexecuted: bool = False,
        trace_id: str | None = None,
        fingerprint: str | None = None,
    ) -> dict[str, Any]:
        """Record one slow execution; returns the entry dict.

        ``profile`` is either ``None``, an operator-tree dict, or any
        object with a ``to_dict()`` (a ``QueryProfile``/``OpProfile``).
        ``fingerprint`` is the workload fingerprint of the query shape
        (see :mod:`repro.query.fingerprint`), joining the entry to the
        aggregate row in ``repro top`` / ``/topz``.  The caller is
        responsible for the threshold check — the log records whatever
        it is handed.
        """
        entry: dict[str, Any] = {
            "ts": _now_iso(),
            "trace_id": trace_id or _logging.current_trace_id(),
            "query": query,
            "plan": plan,
            "plan_cached": bool(plan_cached),
            "rows": int(rows),
            "seconds": round(float(seconds), 6),
        }
        if fingerprint is not None:
            entry["fingerprint"] = fingerprint
        if profile is not None:
            entry["profile"] = profile.to_dict() if hasattr(profile, "to_dict") else profile
        if reexecuted:
            entry["profile_reexecuted"] = True
        self._ring.append(entry)
        _SLOW_COUNT.inc()
        _logging.warn(
            "query.slow",
            query=query,
            seconds=entry["seconds"],
            rows=entry["rows"],
            plan_cached=entry["plan_cached"],
            threshold_s=self.threshold_s,
        )
        if self.path is not None:
            line = json.dumps(entry, ensure_ascii=False, default=str) + "\n"
            with self._lock:
                self._rotate_if_needed(len(line.encode("utf-8")))
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line)
        return entry

    def entries(self) -> list[dict[str, Any]]:
        """Recorded entries in the in-memory ring, oldest first."""
        return list(self._ring)

    def reset(self) -> None:
        """Drop the in-memory ring (persisted files are untouched)."""
        self._ring.clear()

    # -- rotation ----------------------------------------------------------

    def rotated_path(self, n: int) -> Path:
        """Path of the ``n``-th rotation (1 = most recent)."""
        assert self.path is not None
        return self.path.with_name(f"{self.path.name}.{n}")

    def _rotate_if_needed(self, incoming_bytes: int) -> None:
        assert self.path is not None
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0 or size + incoming_bytes <= self.max_bytes:
            return
        # Shift existing rotations up; the one beyond ``keep`` falls off.
        oldest = self.rotated_path(self.keep)
        if oldest.exists():
            oldest.unlink()
        for n in range(self.keep - 1, 0, -1):
            src = self.rotated_path(n)
            if src.exists():
                os.replace(src, self.rotated_path(n + 1))
        os.replace(self.path, self.rotated_path(1))
        _SLOW_ROTATIONS.inc()


def read_slow_log(path: Path | str) -> list[dict[str, Any]]:
    """Parse a slow-log JSONL file (malformed/torn lines skipped)."""
    return _logging.read_jsonl(path)

"""repro.obs — zero-dependency observability: metrics, spans, logs, serving.

The measurement substrate for every hot path in the engine, plus the
serving layer that makes it operable from outside the process:

``metrics``
    :class:`MetricsRegistry` of counters / gauges / fixed-bucket
    histograms, a process-global default registry, and a ``@timed``
    decorator.  Instrumented modules cache series handles at import time;
    a disabled registry reduces every hook to one flag check.
``tracing``
    Nestable :class:`Span` context managers collected by a
    :class:`Tracer` with ring-buffer retention of finished root spans.
``logging``
    Structured JSON log events with severity levels, per-event rate
    limiting, and thread-local trace-ID correlation (``obs.trace()``)
    joining log lines to spans and slow-log entries.
``slowlog``
    JSONL slow-query log (query text, plan, ``plan_cached``, rows,
    EXPLAIN ANALYZE profile) with size-based rotation.
``export`` / ``promexport``
    Snapshot renderers: plain text, JSON, JSON-lines, and Prometheus
    text exposition (one renderer behind both the CLI and ``/metrics``).
``server``
    Stdlib HTTP telemetry daemon (``repro serve-telemetry``) serving
    ``/metrics``, ``/healthz``, ``/varz``, ``/tracez``, ``/logz``.
``timeseries``
    Fixed-interval on-disk metric snapshots for windowed rates
    (``repro stats --metrics --since``).

Quick use::

    from repro import obs

    obs.counter("my.counter").inc()
    with obs.trace() as trace_id:
        with obs.span("my.phase", items=10):
            obs.log_event("my.event", items=10)
    print(obs.export.render_text(obs.metrics_snapshot()))

``obs.set_enabled(False)`` turns metrics, tracing, and logging off
process-wide (each can also be toggled individually via its own module).
The full metric-name and span catalogue — a public contract — is
documented in ``docs/observability.md``; operating the serving layer is
covered in ``docs/operations.md``.
"""

from __future__ import annotations

from typing import Any

from repro.obs import (
    export,
    logging,
    metrics,
    profiling,
    progress,
    promexport,
    slo,
    slowlog,
    timeseries,
    tracing,
    workload,
)
from repro.obs.logging import JsonLogger, current_trace_id, new_trace_id, trace
from repro.obs.logging import log as log_event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_default_registry,
    histogram,
    timed,
)
from repro.obs.profiling import SamplingProfiler, get_default_profiler
from repro.obs.promexport import render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.workload import (
    KeyUsageTable,
    WorkloadTable,
    get_default_key_usage,
    get_default_table,
    render_prometheus_workload,
)
from repro.obs.progress import ProgressBar, ProgressRegistry, ProgressTracker
from repro.obs.slo import SLOEngine
from repro.obs.timeseries import TimeSeriesLog, TimeSeriesRecorder
from repro.obs.tracing import (
    Span,
    TraceContext,
    Tracer,
    finished_spans,
    get_default_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "JsonLogger",
    "ProgressBar",
    "ProgressRegistry",
    "ProgressTracker",
    "SLOEngine",
    "SamplingProfiler",
    "SlowQueryLog",
    "WorkloadTable",
    "KeyUsageTable",
    "TimeSeriesLog",
    "TimeSeriesRecorder",
    "counter",
    "gauge",
    "histogram",
    "timed",
    "span",
    "trace",
    "log_event",
    "new_trace_id",
    "current_trace_id",
    "render_prometheus",
    "render_prometheus_workload",
    "get_default_registry",
    "get_default_tracer",
    "get_default_profiler",
    "get_default_table",
    "get_default_key_usage",
    "finished_spans",
    "metrics_snapshot",
    "set_enabled",
    "is_enabled",
    "reset",
    "export",
    "metrics",
    "tracing",
    "logging",
    "slowlog",
    "promexport",
    "profiling",
    "progress",
    "slo",
    "timeseries",
    "workload",
]


def metrics_snapshot() -> dict[str, Any]:
    """Snapshot of the default metrics registry."""
    return metrics.snapshot()


def set_enabled(flag: bool) -> None:
    """Enable/disable default metrics registry, tracer, logger, and the
    workload-attribution tables (the sampling profiler has its own
    explicit start/stop lifecycle and is not touched)."""
    metrics.set_enabled(flag)
    tracing.set_enabled(flag)
    logging.set_enabled(flag)
    workload.set_enabled(flag)


def is_enabled() -> bool:
    """True when any of the default registry / tracer / logger is enabled."""
    return metrics.is_enabled() or tracing.is_enabled() or logging.is_enabled()


def reset() -> None:
    """Zero default-registry series, drop retained spans, log records,
    progress trackers, and workload-attribution aggregates."""
    metrics.reset()
    tracing.reset()
    logging.reset()
    progress.reset()
    workload.reset()

"""repro.obs — zero-dependency observability: metrics, spans, exports.

The measurement substrate for every hot path in the engine.  Three parts:

``metrics``
    :class:`MetricsRegistry` of counters / gauges / fixed-bucket
    histograms, a process-global default registry, and a ``@timed``
    decorator.  Instrumented modules cache series handles at import time;
    a disabled registry reduces every hook to one flag check.
``tracing``
    Nestable :class:`Span` context managers collected by a
    :class:`Tracer` with ring-buffer retention of finished root spans.
``export``
    Snapshot renderers: plain text, JSON, and JSON-lines (for diffing
    metric dumps across runs).

Quick use::

    from repro import obs

    obs.counter("my.counter").inc()
    with obs.span("my.phase", items=10):
        ...
    print(obs.export.render_text(obs.metrics_snapshot()))

``obs.set_enabled(False)`` turns both metrics and tracing off process-wide
(each can also be toggled individually via its own module).  The full
metric-name and span catalogue — a public contract — is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any

from repro.obs import export, metrics, tracing
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_default_registry,
    histogram,
    timed,
)
from repro.obs.tracing import Span, Tracer, finished_spans, get_default_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "counter",
    "gauge",
    "histogram",
    "timed",
    "span",
    "get_default_registry",
    "get_default_tracer",
    "finished_spans",
    "metrics_snapshot",
    "set_enabled",
    "is_enabled",
    "reset",
    "export",
    "metrics",
    "tracing",
]


def metrics_snapshot() -> dict[str, Any]:
    """Snapshot of the default metrics registry."""
    return metrics.snapshot()


def set_enabled(flag: bool) -> None:
    """Enable/disable both default metrics registry and default tracer."""
    metrics.set_enabled(flag)
    tracing.set_enabled(flag)


def is_enabled() -> bool:
    """True when either the default registry or tracer is enabled."""
    return metrics.is_enabled() or tracing.is_enabled()


def reset() -> None:
    """Zero all default-registry series and drop retained spans."""
    metrics.reset()
    tracing.reset()

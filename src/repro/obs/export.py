"""Render metric snapshots and span trees for humans and tooling.

Three formats over the same :meth:`MetricsRegistry.snapshot` dict:

* ``render_text`` — aligned plain text for terminals;
* ``render_json`` — one JSON document (the ``repro stats --metrics``
  output; its shape is a public contract, see ``docs/observability.md``);
* ``render_jsonl`` — one JSON object per series per line, convenient for
  diffing two runs with line-oriented tools (``diff``, ``grep``, ``jq``).

Span trees export via :func:`spans_to_dicts` / :meth:`Span.tree`.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable

from repro.obs.tracing import Span

__all__ = [
    "render_text",
    "render_json",
    "render_jsonl",
    "parse_series_name",
    "spans_to_dicts",
]

_SERIES = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def parse_series_name(flat: str) -> tuple[str, dict[str, str]]:
    """Split a flat series key ``name{k=v,…}`` back into (name, labels)."""
    match = _SERIES.match(flat)
    if match is None:  # pragma: no cover - snapshot keys are well-formed
        return flat, {}
    raw = match.group("labels")
    labels: dict[str, str] = {}
    if raw:
        for part in raw.split(","):
            key, _, value = part.partition("=")
            labels[key] = value
    return match.group("name"), labels


def render_text(snapshot: dict[str, Any]) -> str:
    """Aligned, sectioned plain-text rendering of a metrics snapshot."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    width = max(
        (len(name) for name in [*counters, *gauges, *histograms]), default=0
    )
    if counters:
        lines.append("# counters")
        for name in sorted(counters):
            lines.append(f"{name:<{width}}  {counters[name]}")
    if gauges:
        lines.append("# gauges")
        for name in sorted(gauges):
            lines.append(f"{name:<{width}}  {gauges[name]}")
    if histograms:
        lines.append("# histograms")
        for name in sorted(histograms):
            h = histograms[name]
            mean = (h["sum"] / h["count"]) if h["count"] else 0.0
            lines.append(
                f"{name:<{width}}  count={h['count']} sum={h['sum']:.6f} "
                f"min={h['min'] if h['min'] is not None else '-'} "
                f"max={h['max'] if h['max'] is not None else '-'} "
                f"mean={mean:.6f}"
            )
    return "\n".join(lines)


def render_json(snapshot: dict[str, Any], *, indent: int | None = 2) -> str:
    """The snapshot as one JSON document (stable key order)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, ensure_ascii=False)


def render_jsonl(snapshot: dict[str, Any]) -> str:
    """One JSON object per series per line, sorted by (type, name).

    Each line is ``{"type": ..., "name": ..., "labels": {...}, ...}`` —
    value fields differ by type (``value`` for counters/gauges, the
    histogram summary fields for histograms).  Line-stable across runs of
    the same workload, so two dumps diff cleanly.
    """
    lines: list[str] = []
    for kind in ("counters", "gauges", "histograms"):
        for flat in sorted(snapshot.get(kind, {})):
            name, labels = parse_series_name(flat)
            row: dict[str, Any] = {
                "type": kind[:-1],
                "name": name,
                "labels": labels,
            }
            payload = snapshot[kind][flat]
            if kind == "histograms":
                row.update(payload)
            else:
                row["value"] = payload
            lines.append(json.dumps(row, sort_keys=True, ensure_ascii=False))
    return "\n".join(lines)


def spans_to_dicts(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """JSON-friendly view of a collection of span trees."""
    return [span.to_dict() for span in spans]

"""On-disk metric time series: fixed-interval snapshots, windowed rates.

The metrics registry only knows lifetime totals; answering "how many
queries per second *over the last minute*" needs history.  A
:class:`TimeSeriesLog` keeps that history as a bounded ring of snapshot
*samples* — each sample is the flat counter/gauge state at one instant —
persisted as JSONL so the history survives the process and can be read
by a later ``repro stats --metrics --since 60``.

Rates come from differencing: :meth:`TimeSeriesLog.rates` picks the
oldest sample inside the window and the newest overall, and reports
``(newest - oldest) / elapsed`` per counter.  A negative delta means the
counter restarted with the process (registries are in-memory); the delta
is then taken from zero, the same reset rule Prometheus applies.

:class:`TimeSeriesRecorder` drives sampling on a daemon thread at a
fixed interval — the telemetry daemon starts one so ``/metrics`` scrapes
and on-disk history stay in lockstep.

Wall-clock timestamps (``epoch``) are sampling metadata, not measured
durations — elapsed time *between* samples is the quantity rates are
defined over, exactly as in any scrape-based system.

Metric names (catalogued in ``docs/observability.md``):
``obs.timeseries.samples``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.obs import logging as _logging
from repro.obs import metrics as _metrics

__all__ = [
    "TimeSeriesLog",
    "TimeSeriesRecorder",
    "DEFAULT_INTERVAL_S",
    "DEFAULT_CAPACITY",
]

#: Default sampling interval (seconds) and retained sample count.
#: 10 s × 360 samples = one hour of history.
DEFAULT_INTERVAL_S = 10.0
DEFAULT_CAPACITY = 360

_SAMPLES = _metrics.counter("obs.timeseries.samples")


def _now() -> tuple[str, float]:
    """(ISO-8601 string, epoch seconds) for one sampling instant."""
    now = datetime.now(timezone.utc)
    iso = now.isoformat(timespec="milliseconds").replace("+00:00", "Z")
    return iso, now.timestamp()


class TimeSeriesLog:
    """Bounded ring of metric snapshots with optional JSONL persistence.

    Parameters
    ----------
    path:
        JSONL file for samples; ``None`` keeps the ring in memory only.
        An existing file is loaded on construction (last ``capacity``
        samples), so history accumulates across runs.
    capacity:
        Samples retained.  The file is compacted back down to
        ``capacity`` lines whenever it grows past twice that.
    """

    def __init__(
        self,
        path: Path | str | None = None,
        *,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.path = Path(path) if path is not None else None
        self.capacity = int(capacity)
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._file_lines = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        if not self.path.exists():
            return
        lines = 0
        with open(self.path, "r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    self._ring.append(json.loads(raw))
                except (json.JSONDecodeError, ValueError):
                    continue  # torn tail line
                lines += 1
        self._file_lines = lines

    # -- sampling -----------------------------------------------------------

    def sample(self, snapshot: dict[str, Any] | None = None) -> dict[str, Any]:
        """Record one sample (of ``snapshot`` or the default registry).

        Histograms are folded into the counter namespace as two monotone
        series each — ``<name>.count`` and ``<name>.sum`` — so windowed
        math (mean latency over the last N seconds, SLO burn rates over
        ``*.seconds`` families) works from samples alone without
        persisting every bucket.
        """
        if snapshot is None:
            snapshot = _metrics.snapshot()
        iso, epoch = _now()
        counters = dict(snapshot.get("counters", {}))
        for name, hist in snapshot.get("histograms", {}).items():
            if isinstance(hist, dict):
                counters[f"{name}.count"] = hist.get("count", 0)
                counters[f"{name}.sum"] = hist.get("sum", 0.0)
        record = {
            "ts": iso,
            "epoch": epoch,
            "counters": counters,
            "gauges": dict(snapshot.get("gauges", {})),
        }
        with self._lock:
            self._ring.append(record)
            if self.path is not None:
                self._append(record)
        _SAMPLES.inc()
        return record

    def _append(self, record: dict[str, Any]) -> None:
        assert self.path is not None
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, ensure_ascii=False) + "\n")
        self._file_lines += 1
        if self._file_lines > 2 * self.capacity:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the file down to the retained ring (atomic replace)."""
        assert self.path is not None
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in self._ring:
                fh.write(json.dumps(record, ensure_ascii=False) + "\n")
        os.replace(tmp, self.path)
        self._file_lines = len(self._ring)

    # -- reads --------------------------------------------------------------

    def samples(self) -> list[dict[str, Any]]:
        """Retained samples, oldest first."""
        with self._lock:
            return list(self._ring)

    def window(self, since_s: float, *, now_epoch: float | None = None) -> list[dict[str, Any]]:
        """Samples whose epoch falls within the last ``since_s`` seconds."""
        if now_epoch is None:
            now_epoch = _now()[1]
        cutoff = now_epoch - float(since_s)
        return [s for s in self.samples() if s.get("epoch", 0.0) >= cutoff]

    def rates(
        self, since_s: float, *, now_epoch: float | None = None
    ) -> dict[str, Any]:
        """Per-counter rates over the last ``since_s`` seconds.

        Returns ``{"window_s", "samples", "rates": {flat_name: per_s},
        "deltas": {flat_name: delta}}``.  Needs at least two samples in
        the window; returns zero-sample metadata otherwise.
        """
        window = self.window(since_s, now_epoch=now_epoch)
        if len(window) < 2:
            return {"window_s": float(since_s), "samples": len(window), "rates": {}, "deltas": {}}
        first, last = window[0], window[-1]
        elapsed = float(last["epoch"]) - float(first["epoch"])
        if elapsed <= 0:
            return {"window_s": float(since_s), "samples": len(window), "rates": {}, "deltas": {}}
        deltas: dict[str, float] = {}
        for name, end_value in last.get("counters", {}).items():
            start_value = first.get("counters", {}).get(name, 0)
            delta = end_value - start_value
            if delta < 0:  # counter reset mid-window: count from zero
                delta = end_value
            deltas[name] = delta
        return {
            "window_s": float(since_s),
            "samples": len(window),
            "elapsed_s": round(elapsed, 3),
            "deltas": deltas,
            "rates": {name: round(delta / elapsed, 6) for name, delta in deltas.items()},
        }

    def reset(self) -> None:
        """Drop retained samples (the on-disk file is untouched)."""
        with self._lock:
            self._ring.clear()


class TimeSeriesRecorder:
    """Samples a :class:`TimeSeriesLog` on a daemon thread.

    >>> log = TimeSeriesLog()
    >>> recorder = TimeSeriesRecorder(log, interval_s=0.05)
    >>> recorder.start()
    >>> # ... workload ...
    >>> recorder.stop()
    True
    """

    def __init__(self, log: TimeSeriesLog, *, interval_s: float = DEFAULT_INTERVAL_S):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.log = log
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "TimeSeriesRecorder":
        if self._thread is not None:
            raise RuntimeError("recorder already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-timeseries", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        # Sample immediately so even a short-lived recorder leaves a mark,
        # then on every interval tick until stopped.
        self.log.sample()
        while not self._stop.wait(self.interval_s):
            self.log.sample()

    def stop(self) -> bool:
        """Stop the thread, taking one final sample to close the window.

        Returns ``True`` on a clean stop.  A sampler thread that outlives
        the join timeout is propagated instead of silently leaked: a
        warning event (``obs.timeseries.stop_timeout``) and
        ``obs.shutdown.join_timeout{component=timeseries}`` record it,
        and ``False`` is returned so callers can fail loudly.
        """
        if self._thread is None:
            return True
        self._stop.set()
        timeout_s = self.interval_s + 5.0
        self._thread.join(timeout=timeout_s)
        leaked = self._thread.is_alive()
        if leaked:
            _logging.warn(
                "obs.timeseries.stop_timeout",
                thread=self._thread.name,
                timeout_s=timeout_s,
            )
            _metrics.counter("obs.shutdown.join_timeout", component="timeseries").inc()
        self._thread = None
        self.log.sample()
        return not leaked

    def __enter__(self) -> "TimeSeriesRecorder":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

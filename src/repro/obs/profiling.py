"""Sampling wall-clock profiler: collapsed stacks from ``sys._current_frames``.

A :class:`SamplingProfiler` runs a daemon thread that wakes ``hz`` times
a second, snapshots every live thread's Python stack via
:func:`sys._current_frames`, and counts each observed stack in collapsed
form — ``outermost;...;innermost`` frames joined with semicolons, each
frame rendered as ``module:function``.  The output of
:meth:`SamplingProfiler.render_collapsed` is one ``stack count`` line
per distinct stack, directly consumable by ``flamegraph.pl`` (or
speedscope's "collapsed" importer)::

    repro.cli:main;repro.query.executor:execute;... 182

Being a *sampler* it observes wall-clock time wherever threads actually
are — lock waits and I/O included — at a cost proportional to ``hz``
and thread count, not to the work being profiled.  It is **off by
default** and started explicitly: from the CLI (``repro profile
--seconds N --out prof.folded``) or over HTTP (``/profilez?action=start``
on the telemetry daemon).  The sampler excludes its own thread, so an
idle process profiles as its waiting threads, not as the profiler.

Guardrails: ``hz`` is clamped to [1, 1000]; starting an already-running
profiler raises; samples accumulate across start/stop cycles until
:meth:`SamplingProfiler.reset` (so short bursts can be aggregated).
``obs.profiler.samples`` counts sampling sweeps process-wide.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any

from repro.obs import metrics as _metrics

__all__ = [
    "SamplingProfiler",
    "get_default_profiler",
    "DEFAULT_HZ",
    "MAX_HZ",
]

#: Default sampling rate.  97 Hz (a prime, per the perf-tools tradition)
#: avoids lockstep with periodic work at round frequencies.
DEFAULT_HZ = 97

#: Upper clamp on the sampling rate.
MAX_HZ = 1000

_SAMPLES = _metrics.counter("obs.profiler.samples")


def _frame_stack(frame: Any) -> str:
    """Collapsed ``module:function`` stack for one frame, root first."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Periodic all-threads stack sampler with collapsed-stack output."""

    def __init__(self, hz: int = DEFAULT_HZ):
        self.hz = max(1, min(int(hz), MAX_HZ))
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at: float | None = None
        self._active_s = 0.0

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self, *, hz: int | None = None) -> "SamplingProfiler":
        """Begin sampling on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        if hz is not None:
            self.hz = max(1, min(int(hz), MAX_HZ))
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict[str, Any]:
        """Stop sampling and return :meth:`status`; no-op when stopped."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
            if self._started_at is not None:
                self._active_s += time.perf_counter() - self._started_at
                self._started_at = None
        return self.status()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_id = threading.get_ident()
        next_tick = time.perf_counter()
        while not self._stop.is_set():
            frames = sys._current_frames()
            with self._lock:
                self._samples += 1
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    stack = _frame_stack(frame)
                    self._counts[stack] = self._counts.get(stack, 0) + 1
            _SAMPLES.inc()
            next_tick += interval
            delay = next_tick - time.perf_counter()
            if delay <= 0:
                # Sampling overran the interval (many threads / deep
                # stacks): resync rather than spinning to catch up.
                next_tick = time.perf_counter()
                continue
            self._stop.wait(delay)

    # -- results ------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        active = self._active_s
        if self._started_at is not None:
            active += time.perf_counter() - self._started_at
        with self._lock:
            return {
                "running": self.running,
                "hz": self.hz,
                "samples": self._samples,
                "distinct_stacks": len(self._counts),
                "active_seconds": round(active, 3),
            }

    def collect(self) -> dict[str, int]:
        """Accumulated ``collapsed-stack -> sample count`` map (a copy)."""
        with self._lock:
            return dict(self._counts)

    def render_collapsed(self) -> str:
        """``flamegraph.pl``-ready text: one ``stack count`` line each,
        hottest stacks first (order is cosmetic; the format is a bag)."""
        counts = self.collect()
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop accumulated samples (a running profiler keeps sampling)."""
        with self._lock:
            self._counts.clear()
            self._samples = 0
        if self._started_at is not None:
            self._started_at = time.perf_counter()
        self._active_s = 0.0

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


_default_profiler = SamplingProfiler()


def get_default_profiler() -> SamplingProfiler:
    """The process-wide profiler behind ``/profilez`` and ``repro profile``."""
    return _default_profiler

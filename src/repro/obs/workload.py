"""Workload profiler: per-fingerprint resource attribution with top-K eviction.

The missing aggregation layer over the PR 1/4 telemetry: metrics say how
much total work the process did, traces and the slow log explain single
executions — this module answers *which query shapes* the work went to.

:class:`WorkloadTable` keeps one :class:`FingerprintStats` row per query
fingerprint (see :mod:`repro.query.fingerprint`): calls, rows examined /
returned, CPU and wall nanoseconds, bytes scanned, plan-cache hits,
deadline / cancellation / budget / shed counts, and a per-operator
breakdown (rows in/out, CPU, wall, bytes per ``seq-scan`` / ``filter`` /
``sort`` / …) rolled up from EXPLAIN ANALYZE runs.  The table is bounded:
past ``maxsize`` fingerprints the row with the fewest calls is evicted
(``query.workload.evicted`` counts them), so a long-lived server tracks
its top-K shapes, never an unbounded tail of one-off queries.

:class:`KeyUsageTable` is the storage-side companion: per-index
key-access histograms (probes and rows served per key, top-K bounded the
same way) recorded by ``RecordStore.find_by`` / ``range_by`` — the data
that makes key skew measurable before choosing a shard key.

Both tables are thread-safe and follow the metrics layer's hot-path
discipline: recording appends one tuple to a ``collections.deque`` (a
single atomic C call under the GIL — no lock) and the backlog is folded
into the aggregates lazily, on read or when it reaches a fixed
threshold.  Recording happens once per query / probe, never per row on
the unprofiled path, and is near-free when disabled: every recorder
starts with one flag check.  ``repro.obs.set_enabled(False)`` turns
them off with the rest of the observability stack.

Serving surfaces: ``/topz`` on the telemetry daemon renders
:meth:`WorkloadTable.top`; :func:`render_prometheus_workload` exposes the
table as the ``repro_workload_*`` exposition family with a bounded
``fingerprint`` label cardinality (see ``docs/operations.md``);
``repro top`` / ``repro workload-report`` are the CLI views.

Metric names (catalogued in ``docs/observability.md``):
``query.workload.recorded``, ``query.workload.evicted``,
``query.workload.fingerprints``, ``storage.keyusage.evicted``.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Any, Iterable, Mapping

from repro.obs import metrics as _metrics
from repro.obs.promexport import escape_label_value, prometheus_name

__all__ = [
    "FingerprintStats",
    "WorkloadTable",
    "KeyUsageTable",
    "get_default_table",
    "get_default_key_usage",
    "record_execution",
    "record_key_probe",
    "top",
    "reset",
    "set_enabled",
    "is_enabled",
    "render_prometheus_workload",
    "DEFAULT_MAXSIZE",
    "DEFAULT_EXPOSITION_LIMIT",
    "SORT_KEYS",
]

#: Fingerprints tracked before lowest-call eviction kicks in.
DEFAULT_MAXSIZE = 512

#: Backstop backlog size that forces an inline fold on the recording
#: path.  Reads (``/topz``, ``/metrics``, ``top()``, ``snapshot()``,
#: ``histogram()``) always fold first, so on a scraped server the fold
#: work rides the telemetry reader, off the query path entirely; the
#: threshold only bounds memory (~1 MB of pending tuples worst case)
#: when nobody is reading.  A backstop fold adds a ~2 ms blip to the
#: execution that trips it — after that query's own timing was taken.
_FOLD_EVERY = 4096

#: Distinct keys tracked per index field by :class:`KeyUsageTable`.
DEFAULT_KEYS_PER_FIELD = 128

#: Fingerprint label cardinality cap for the ``repro_workload_*``
#: Prometheus family (documented in docs/operations.md).
DEFAULT_EXPOSITION_LIMIT = 20

#: Columns ``top()`` / ``/topz`` / ``repro top`` accept for sorting.
SORT_KEYS = (
    "calls",
    "cpu_ns",
    "wall_ns",
    "rows_returned",
    "rows_examined",
    "bytes_scanned",
)

_RECORDED = _metrics.counter("query.workload.recorded")
_EVICTED = _metrics.counter("query.workload.evicted")
_FINGERPRINTS = _metrics.gauge("query.workload.fingerprints")
_KEY_EVICTED = _metrics.counter("storage.keyusage.evicted")


class FingerprintStats:
    """Mutable aggregate row for one query fingerprint."""

    __slots__ = (
        "fingerprint",
        "template",
        "calls",
        "rows_returned",
        "rows_examined",
        "cpu_ns",
        "wall_ns",
        "bytes_scanned",
        "plan_cache_hits",
        "deadline_exceeded",
        "cancelled",
        "budget_exceeded",
        "shed",
        "operators",
    )

    def __init__(self, fingerprint: str, template: str):
        self.fingerprint = fingerprint
        self.template = template
        self.calls = 0
        self.rows_returned = 0
        self.rows_examined = 0
        self.cpu_ns = 0
        self.wall_ns = 0
        self.bytes_scanned = 0
        self.plan_cache_hits = 0
        self.deadline_exceeded = 0
        self.cancelled = 0
        self.budget_exceeded = 0
        self.shed = 0
        #: op name -> {calls, rows_in, rows_out, cpu_ns, wall_ns, bytes}
        self.operators: dict[str, dict[str, int]] = {}

    def to_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "template": self.template,
            "calls": self.calls,
            "rows_returned": self.rows_returned,
            "rows_examined": self.rows_examined,
            "cpu_ns": self.cpu_ns,
            "wall_ns": self.wall_ns,
            "bytes_scanned": self.bytes_scanned,
            "plan_cache_hits": self.plan_cache_hits,
            "deadline_exceeded": self.deadline_exceeded,
            "cancelled": self.cancelled,
            "budget_exceeded": self.budget_exceeded,
            "shed": self.shed,
            "operators": {op: dict(stats) for op, stats in self.operators.items()},
        }


class WorkloadTable:
    """Thread-safe fingerprint -> :class:`FingerprintStats` aggregate table.

    ``maxsize`` bounds the number of tracked fingerprints; inserting past
    it evicts the row with the fewest calls (ties arbitrary), so the
    table converges on the workload's hottest shapes.  ``evicted_calls``
    remembers how many calls left with evicted rows — the table never
    silently pretends it saw everything.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.enabled = True
        self.evicted_fingerprints = 0
        self.evicted_calls = 0
        self._rows: dict[str, FingerprintStats] = {}
        self._pending: deque[tuple] = deque()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        self._fold()
        return len(self._rows)

    def record(
        self,
        fingerprint: str,
        template: str,
        *,
        rows_returned: int = 0,
        rows_examined: int = 0,
        cpu_ns: int = 0,
        wall_ns: int = 0,
        bytes_scanned: int = 0,
        plan_cached: bool = False,
        interrupted: str | None = None,
        shed: bool = False,
        operators: Iterable[Mapping[str, Any]] | None = None,
    ) -> None:
        """Fold one execution into the fingerprint's aggregate row.

        ``interrupted`` is ``None`` or one of ``"timeout"`` /
        ``"cancelled"`` / ``"budget"``; ``operators`` is the per-node
        breakdown of a profiled run (dicts with ``op``, ``rows_in``,
        ``rows_out``, ``cpu_ns``, ``wall_ns``, ``bytes``).
        """
        self.record_packed((
            fingerprint, template, rows_returned, rows_examined, cpu_ns,
            wall_ns * 1e-9, bytes_scanned, bool(plan_cached), interrupted,
            bool(shed), tuple(operators) if operators else None,
        ))

    def record_packed(self, item: tuple) -> None:
        """Zero-marshalling variant of :meth:`record` for the hot path.

        ``item`` is positional, in one of two shapes: the full 11-tuple
        ``(fingerprint, template, rows_returned, rows_examined, cpu_ns,
        wall_s, bytes_scanned, plan_cached, interrupted, shed,
        operators)``, or the hot 8-tuple that stops after ``plan_cached``
        — an ordinary successful execution has nothing to say in the
        last three slots, so the executor doesn't pay to load them.
        One attributed execution costs one deque append — no keyword
        marshalling, no lock.

        Three hot-path allowances, settled at fold time: ``cpu_ns`` may
        be ``-1`` for an execution whose thread-CPU clock was not
        sampled (the fold scales the sampled executions' CPU up to the
        group's call count — thread-CPU reads cost several hundred ns
        on some kernels, so the executor samples 1-in-N); wall time
        rides as raw **seconds** (the ``perf_counter`` delta the
        executor already holds — one fold-time multiply replaces one
        per-execution multiply); and ``bytes_scanned`` may be a float
        (summed columnarly, truncated to int once per fold).
        ``plan_cached`` and ``shed`` must be real bools — the fold
        counts them with ``count(True)``.
        """
        if not self.enabled:
            return
        self._pending.append(item)
        if len(self._pending) >= _FOLD_EVERY:
            self._fold()

    def _fold(self) -> None:
        """Drain the pending backlog into the aggregate rows.

        Draining happens lock-free (``popleft`` is atomic; concurrent
        folders take disjoint items and the aggregates are commutative),
        then each fingerprint's group is applied columnarly under the
        lock: a steady workload repeats few shapes, so one C-level pass
        per column beats per-item attribute increments.
        """
        hot: list[tuple] = []
        cold: list[tuple] = []
        while True:
            try:
                item = self._pending.popleft()
            except IndexError:
                break
            (hot if len(item) == 8 else cold).append(item)
        if not hot and not cold:
            return
        with self._lock:
            for items, full in ((hot, False), (cold, True)):
                if not items:
                    continue
                cols = list(zip(*items))
                # Hot case: a backlog full of one query shape skips
                # grouping (the fingerprint strings come interned from
                # the plan cache, so count() compares mostly by
                # identity).
                if cols[0].count(cols[0][0]) == len(items):
                    self._apply_group(cols[0][0], items, cols, full)
                else:
                    groups: dict[str, list[tuple]] = {}
                    for item in items:
                        groups.setdefault(item[0], []).append(item)
                    for fingerprint, group in groups.items():
                        self._apply_group(
                            fingerprint, group, list(zip(*group)), full
                        )
            _FINGERPRINTS.set(len(self._rows))
        _RECORDED.inc(len(hot) + len(cold))

    def _apply_group(
        self, fingerprint: str, group: list[tuple], cols: list[tuple], full: bool
    ) -> None:
        # Called under the lock.  ``cols`` is ``group`` transposed;
        # ``full`` marks 11-slot items — the hot 8-slot shape has no
        # interruption/shed/operator columns to roll up.
        row = self._rows.get(fingerprint)
        if row is None:
            row = FingerprintStats(fingerprint, group[0][1])
            self._rows[fingerprint] = row
            if len(self._rows) > self.maxsize:
                self._evict_coldest(keep=fingerprint)
        row.calls += len(group)
        row.rows_returned += sum(cols[2])
        row.rows_examined += sum(cols[3])
        # CPU: -1 marks an unsampled execution; scale the sampled sum up
        # to the group's call count (each -1 contributes -1 to the plain
        # sum, so adding the count restores the sampled-only total).
        unsampled = cols[4].count(-1)
        sampled = len(group) - unsampled
        if sampled:
            row.cpu_ns += (sum(cols[4]) + unsampled) * len(group) // sampled
        row.wall_ns += int(sum(cols[5]) * 1e9 + 0.5)
        row.bytes_scanned += int(sum(cols[6]))
        row.plan_cache_hits += cols[7].count(True)
        if not full:
            return
        interrupted = cols[8]
        row.deadline_exceeded += interrupted.count("timeout")
        row.cancelled += interrupted.count("cancelled")
        row.budget_exceeded += interrupted.count("budget")
        row.shed += cols[9].count(True)
        if not any(cols[10]):
            return
        for operators in cols[10]:
            if not operators:
                continue
            for node in operators:
                op = str(node.get("op", "?"))
                agg = row.operators.get(op)
                if agg is None:
                    agg = row.operators[op] = {
                        "calls": 0,
                        "rows_in": 0,
                        "rows_out": 0,
                        "cpu_ns": 0,
                        "wall_ns": 0,
                        "bytes": 0,
                    }
                agg["calls"] += 1
                agg["rows_in"] += int(node.get("rows_in", 0))
                agg["rows_out"] += int(node.get("rows_out", 0))
                agg["cpu_ns"] += int(node.get("cpu_ns", 0))
                agg["wall_ns"] += int(node.get("wall_ns", 0))
                agg["bytes"] += int(node.get("bytes", 0))

    def _evict_coldest(self, *, keep: str) -> None:
        # Called under the lock.  The just-inserted row is exempt so a
        # fresh fingerprint always gets at least one call recorded.
        coldest = min(
            (fp for fp in self._rows if fp != keep),
            key=lambda fp: self._rows[fp].calls,
        )
        self.evicted_calls += self._rows.pop(coldest).calls
        self.evicted_fingerprints += 1
        _EVICTED.inc()

    def top(self, n: int = 10, *, sort_by: str = "calls") -> list[dict[str, Any]]:
        """The ``n`` hottest rows by ``sort_by`` (one of :data:`SORT_KEYS`)."""
        if sort_by not in SORT_KEYS:
            raise ValueError(
                f"sort_by must be one of {', '.join(SORT_KEYS)}; got {sort_by!r}"
            )
        self._fold()
        with self._lock:
            rows = sorted(
                self._rows.values(),
                key=lambda r: getattr(r, sort_by),
                reverse=True,
            )[: max(0, n)]
            return [row.to_dict() for row in rows]

    def snapshot(self) -> dict[str, Any]:
        """The whole table plus eviction bookkeeping, JSON-ready."""
        self._fold()
        with self._lock:
            return {
                "tracked": len(self._rows),
                "maxsize": self.maxsize,
                "evicted_fingerprints": self.evicted_fingerprints,
                "evicted_calls": self.evicted_calls,
                "fingerprints": [row.to_dict() for row in self._rows.values()],
            }

    def reset(self) -> None:
        with self._lock:
            self._pending.clear()
            self._rows.clear()
            self.evicted_fingerprints = 0
            self.evicted_calls = 0
        _FINGERPRINTS.set(0)


class KeyUsageTable:
    """Per-index key-access histograms: probes and rows served per key.

    One bounded ``key -> (probes, rows)`` map per indexed field; past
    ``keys_per_field`` distinct keys the least-probed key is dropped
    (``storage.keyusage.evicted``), preserving the head of the key
    distribution — exactly the part that decides a partition key.
    """

    def __init__(self, keys_per_field: int = DEFAULT_KEYS_PER_FIELD):
        if keys_per_field < 1:
            raise ValueError(f"keys_per_field must be positive, got {keys_per_field}")
        self.keys_per_field = keys_per_field
        self.enabled = True
        self._fields: dict[str, dict[str, list[int]]] = {}
        self._totals: dict[str, list[int]] = {}  # field -> [probes, rows]
        self._pending: deque[tuple] = deque()
        self._lock = threading.Lock()

    def record(self, field: str, key: Any, rows: int = 1) -> None:
        """Count one probe of ``key`` on ``field`` serving ``rows`` records.

        The hot path of every indexed lookup: one deque append, no lock,
        no string conversion — key labelling happens at fold time.
        """
        if not self.enabled:
            return
        self._pending.append((field, key, rows))
        if len(self._pending) >= _FOLD_EVERY:
            self._fold()

    def record_many(
        self, field: str, key_rows: Iterable[tuple[Any, int]], *, probes: int
    ) -> None:
        """Fold a batch of ``(key, rows)`` pairs from one scan or probe.

        Range scans aggregate their per-key row counts locally and call
        this once, so the table is touched once per scan — never per
        record.
        """
        if not self.enabled:
            return
        self._pending.append((field, tuple(key_rows), probes, True))
        if len(self._pending) >= _FOLD_EVERY:
            self._fold()

    def _fold(self) -> None:
        """Drain the pending backlog into the per-field histograms.

        A steady workload probes the same few keys, so identical single
        probes are first collapsed through a :class:`Counter` (one dict
        op per item, C speed) and each distinct probe is applied once
        with a multiplier.  Unhashable keys and scan batches fall back
        to the per-item path.
        """
        items = []
        while True:
            try:
                items.append(self._pending.popleft())
            except IndexError:
                break
        if not items:
            return
        try:
            counted = Counter(items)  # C-speed collapse of repeat probes
        except TypeError:  # an unhashable key somewhere: per-item path
            counted = None
        with self._lock:
            if counted is not None:
                for item, n in counted.items():
                    if len(item) == 3:  # single probe: (field, key, rows)
                        field, key, rows = item
                        self._apply(field, ((key, rows),), n, n)
                    else:  # batch: (field, key_rows, probes, True)
                        self._apply(item[0], item[1], item[2] * n, n)
            else:
                for item in items:
                    if len(item) == 3:
                        field, key, rows = item
                        self._apply(field, ((key, rows),), 1, 1)
                    else:
                        self._apply(item[0], item[1], item[2], 1)

    def _apply(self, field, key_rows, probes: int, mult: int) -> None:
        # Called under the lock.  ``mult`` repeats each (key, rows) pair:
        # n collapsed identical probes apply as one call with mult=n.
        keys = self._fields.setdefault(field, {})
        totals = self._totals.setdefault(field, [0, 0])
        totals[0] += probes
        for key, rows in key_rows:
            label = _key_label(key)
            rows *= mult
            totals[1] += rows
            cell = keys.get(label)
            if cell is None:
                keys[label] = [mult, rows]
                if len(keys) > self.keys_per_field:
                    coldest = min(keys, key=lambda k: keys[k][0])
                    del keys[coldest]
                    _KEY_EVICTED.inc()
            else:
                cell[0] += mult
                cell[1] += rows

    def histogram(self, field: str, *, n: int = 20) -> dict[str, Any] | None:
        """Top-``n`` key histogram for ``field`` (``None`` when unseen)."""
        self._fold()
        with self._lock:
            keys = self._fields.get(field)
            if keys is None:
                return None
            totals = self._totals[field]
            ranked = sorted(keys.items(), key=lambda kv: kv[1][0], reverse=True)
            top_rows = max((cell[1] for cell in keys.values()), default=0)
            return {
                "field": field,
                "probes": totals[0],
                "rows": totals[1],
                "tracked_keys": len(keys),
                # Share of all served rows that the single hottest key
                # absorbed — the headline skew number for shard planning.
                "top_key_row_share": round(top_rows / totals[1], 4) if totals[1] else 0.0,
                "top_keys": [
                    {"key": label, "probes": cell[0], "rows": cell[1]}
                    for label, cell in ranked[: max(0, n)]
                ],
            }

    def fields(self) -> tuple[str, ...]:
        self._fold()
        with self._lock:
            return tuple(self._fields)

    def snapshot(self, *, keys_per_field: int = 20) -> dict[str, Any]:
        return {
            field: self.histogram(field, n=keys_per_field)
            for field in self.fields()
        }

    def reset(self) -> None:
        with self._lock:
            self._pending.clear()
            self._fields.clear()
            self._totals.clear()


def _key_label(key: Any) -> str:
    """Stable, bounded string form of an index key (tuples for composites)."""
    text = str(key)
    return text if len(text) <= 64 else text[:61] + "..."


# -- process-global defaults -------------------------------------------------

_default_table = WorkloadTable()
_default_key_usage = KeyUsageTable()


def get_default_table() -> WorkloadTable:
    return _default_table


def get_default_key_usage() -> KeyUsageTable:
    return _default_key_usage


def record_execution(fingerprint: str, template: str, **kwargs: Any) -> None:
    """Record into the default table (see :meth:`WorkloadTable.record`)."""
    _default_table.record(fingerprint, template, **kwargs)


def record_key_probe(field: str, key: Any, *, rows: int = 1) -> None:
    """Record one key probe into the default key-usage table."""
    _default_key_usage.record(field, key, rows=rows)


def top(n: int = 10, *, sort_by: str = "calls") -> list[dict[str, Any]]:
    return _default_table.top(n, sort_by=sort_by)


def reset() -> None:
    """Clear the default workload and key-usage tables."""
    _default_table.reset()
    _default_key_usage.reset()


def set_enabled(flag: bool) -> None:
    """Toggle attribution recording on the default tables."""
    _default_table.enabled = flag
    _default_key_usage.enabled = flag


def is_enabled() -> bool:
    return _default_table.enabled


# -- Prometheus exposition ---------------------------------------------------

#: (row attribute, exposition suffix, unit scale) for the workload family.
_EXPOSITION_COLUMNS = (
    ("calls", "calls_total", 1),
    ("rows_returned", "rows_returned_total", 1),
    ("rows_examined", "rows_examined_total", 1),
    ("bytes_scanned", "bytes_scanned_total", 1),
    ("cpu_ns", "cpu_seconds_total", 1e-9),
    ("wall_ns", "wall_seconds_total", 1e-9),
    ("plan_cache_hits", "plan_cache_hits_total", 1),
)


def render_prometheus_workload(
    table: WorkloadTable | None = None,
    *,
    limit: int = DEFAULT_EXPOSITION_LIMIT,
    namespace: str = "repro",
) -> str:
    """The fingerprint table as ``repro_workload_*`` text exposition.

    Only the ``limit`` hottest fingerprints (by calls) are exported —
    the label-cardinality cap that keeps a scrape's series count bounded
    no matter how diverse the workload gets.  Returns ``""`` when the
    table is empty, so callers can append unconditionally.
    """
    if table is None:
        table = _default_table
    rows = table.top(limit, sort_by="calls")
    if not rows:
        return ""
    lines: list[str] = []
    for attr, suffix, scale in _EXPOSITION_COLUMNS:
        metric = prometheus_name(f"workload.{suffix}", namespace=namespace)
        # prometheus_name flattens the dot we used to reuse its sanitizer.
        lines.append(
            f"# HELP {metric} Per-fingerprint workload {attr} "
            f"(top {limit} by calls; repro.obs.workload)"
        )
        lines.append(f"# TYPE {metric} counter")
        for row in rows:
            value = row[attr] * scale
            rendered = repr(float(value)) if scale != 1 else str(value)
            lines.append(
                f'{metric}{{fingerprint="{escape_label_value(row["fingerprint"])}"}} '
                f"{rendered}"
            )
    return "\n".join(lines) + "\n"

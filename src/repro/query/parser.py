"""Recursive-descent parser for the query language.

Grammar (EBNF)::

    query      := ( "*" | or_expr ) [ group_clause ] [ order_clause ]
                  [ limit_clause ] EOF
    or_expr    := and_expr { OR and_expr }
    and_expr   := unary { AND unary }
    unary      := NOT unary | primary
    primary    := "(" or_expr ")" | comparison
    comparison := IDENT op value
                | IDENT IN "(" value { "," value } ")"
                | IDENT LIKE STRING
    op         := "=" | "!=" | "<" | "<=" | ">" | ">=" | ":"
    value      := NUMBER | STRING | BOOL | IDENT      (bare word = string)
    group      := GROUP BY IDENT
    order      := ORDER BY IDENT [ ASC | DESC ]
    limit      := LIMIT NUMBER
"""

from __future__ import annotations

from typing import Any

from repro.errors import QuerySyntaxError
from repro.query.ast_nodes import (
    And,
    Comparison,
    Expr,
    Like,
    Membership,
    Not,
    Operator,
    Or,
    Query,
)
from repro.query.lexer import Token, TokenType, tokenize_query

_OPERATORS = {
    "=": Operator.EQ,
    "!=": Operator.NE,
    "<": Operator.LT,
    "<=": Operator.LE,
    ">": Operator.GT,
    ">=": Operator.GE,
    ":": Operator.MATCH,
}

_VALUE_TYPES = (TokenType.NUMBER, TokenType.STRING, TokenType.BOOL, TokenType.IDENT)


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize_query(text)
        self.position = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def expect(self, token_type: TokenType) -> Token:
        if self.current.type is not token_type:
            raise QuerySyntaxError(
                f"expected {token_type.name}, found {self.current.type.name}",
                text=self.text,
                position=self.current.position,
            )
        return self.advance()

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Query:
        where: Expr | None
        if self.current.type is TokenType.STAR:
            self.advance()
            where = None
        else:
            where = self.or_expr()
        group_by = self.group_clause()
        order_by, descending = self.order_clause()
        limit = self.limit_clause()
        self.expect(TokenType.EOF)
        return Query(
            where=where,
            group_by=group_by,
            order_by=order_by,
            descending=descending,
            limit=limit,
        )

    def group_clause(self) -> str | None:
        if self.current.type is not TokenType.GROUP:
            return None
        self.advance()
        self.expect(TokenType.BY)
        field = self.expect(TokenType.IDENT)
        return str(field.value)

    def or_expr(self) -> Expr:
        node = self.and_expr()
        while self.current.type is TokenType.OR:
            self.advance()
            node = Or(node, self.and_expr())
        return node

    def and_expr(self) -> Expr:
        node = self.unary()
        while self.current.type is TokenType.AND:
            self.advance()
            node = And(node, self.unary())
        return node

    def unary(self) -> Expr:
        if self.current.type is TokenType.NOT:
            self.advance()
            return Not(self.unary())
        return self.primary()

    def primary(self) -> Expr:
        if self.current.type is TokenType.LPAREN:
            self.advance()
            node = self.or_expr()
            self.expect(TokenType.RPAREN)
            return node
        return self.comparison()

    def comparison(self) -> Comparison | Membership | Like:
        field = self.expect(TokenType.IDENT)
        if self.current.type is TokenType.IN:
            self.advance()
            return self.membership(str(field.value))
        if self.current.type is TokenType.LIKE:
            self.advance()
            pattern = self.expect(TokenType.STRING)
            return Like(field=str(field.value), pattern=str(pattern.value))
        op_token = self.expect(TokenType.OP)
        operator = _OPERATORS[op_token.value]
        value = self.value()
        return Comparison(field=str(field.value), op=operator, value=value)

    def membership(self, field: str) -> Membership:
        self.expect(TokenType.LPAREN)
        values = [self.value()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            values.append(self.value())
        self.expect(TokenType.RPAREN)
        return Membership(field=field, values=tuple(values))

    def value(self) -> Any:
        if self.current.type not in _VALUE_TYPES:
            raise QuerySyntaxError(
                f"expected a value, found {self.current.type.name}",
                text=self.text,
                position=self.current.position,
            )
        token = self.advance()
        if token.type is TokenType.IDENT:
            return str(token.value)  # bare word literal
        return token.value

    def order_clause(self) -> tuple[str | None, bool]:
        if self.current.type is not TokenType.ORDER:
            return None, False
        self.advance()
        self.expect(TokenType.BY)
        field = self.expect(TokenType.IDENT)
        descending = False
        if self.current.type is TokenType.ASC:
            self.advance()
        elif self.current.type is TokenType.DESC:
            self.advance()
            descending = True
        return str(field.value), descending

    def limit_clause(self) -> int | None:
        if self.current.type is not TokenType.LIMIT:
            return None
        self.advance()
        token = self.expect(TokenType.NUMBER)
        if not isinstance(token.value, int) or token.value < 0:
            raise QuerySyntaxError(
                "LIMIT requires a non-negative integer",
                text=self.text,
                position=token.position,
            )
        return token.value


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`Query`.

    >>> q = parse_query('year >= 1980 AND author:"Li" ORDER BY year DESC LIMIT 5')
    >>> str(q.where)
    "(year >= 1980 AND author : 'Li')"
    >>> q.order_by, q.descending, q.limit
    ('year', True, 5)
    >>> parse_query("*").where is None
    True
    """
    return _Parser(text).parse()

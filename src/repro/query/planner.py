"""Query planner: choose an index access path and a residual filter.

Planning is rule-based, in decreasing preference:

1. **IndexLookup** — an equality/MATCH conjunct on an indexed field,
   choosing the most selective index by distinct-key cardinality (ties
   break toward hash for its O(1) probe).
2. **IndexMultiLookup** — an ``IN`` list on an indexed field, one probe per
   value (shortest list preferred).
3. **IndexRange from a prefix LIKE** — ``name LIKE "Mc%"`` on a B-tree
   field narrows to the ``["Mc", "Mc\\U0010ffff"]`` string range, with the
   pattern re-checked exactly in the residual.
4. **IndexRange** — range conjuncts on one B-tree-indexed field, merged
   into a single interval (``year >= 1980 AND year < 1990`` → one scan).
5. **FullScan** — everything else, including any query whose top level is
   not a conjunction (OR/NOT trees filter over a scan).

Whatever access path is chosen, all conjuncts that the path does not fully
answer stay in the residual filter, so plans are always *correct* and at
worst *unhelpful* — the property the planner/scan equivalence tests assert.

Repeated queries skip the rule search entirely via :class:`PlanCache`, an
LRU keyed on the (hashable, normalized) query AST plus the store's
``index_epoch`` — the epoch bumps on index create/drop and bulk writes, so
a structural change silently retires every cached plan without an explicit
invalidation hook, and stale epochs simply age out of the LRU.

Observability: every :func:`plan_query` call bumps
``query.plans.considered`` and the labelled ``query.plan.chosen{access=…}``
counter for its winning access path, so the index-vs-scan mix of a
workload can be read straight off a metrics snapshot; cache lookups bump
``query.planner.cache.hit`` / ``query.planner.cache.miss``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs import logging as _planner_logging
from repro.obs import metrics as _planner_metrics

from repro.query.ast_nodes import (
    And,
    Comparison,
    Expr,
    Like,
    Membership,
    Operator,
    Or,
    Query,
    conjuncts,
)
from repro.query.fingerprint import fingerprint_of

#: Upper bound for prefix ranges over strings: above any realistic suffix.
_PREFIX_CEILING = "\U0010ffff"

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.store import RecordStore


@dataclass(frozen=True, slots=True)
class FullScan:
    """Scan every record."""

    op = "seq-scan"  #: operator name in profiles and metric labels

    def describe(self) -> str:
        return "FULL SCAN"


@dataclass(frozen=True, slots=True)
class IndexLookup:
    """Probe the secondary index on ``field`` for ``value``."""

    field: str
    value: Any
    kind: str  # "hash" | "btree"

    op = "index-lookup"

    def describe(self) -> str:
        return f"INDEX LOOKUP ({self.kind}) {self.field} = {self.value!r}"


@dataclass(frozen=True, slots=True)
class CompositeLookup:
    """Probe a composite index with equality on every component field."""

    fields: tuple[str, ...]
    values: tuple[Any, ...]

    op = "composite-lookup"

    def describe(self) -> str:
        parts = ", ".join(f"{f} = {v!r}" for f, v in zip(self.fields, self.values))
        return f"COMPOSITE LOOKUP ({'+'.join(self.fields)}) {parts}"


@dataclass(frozen=True, slots=True)
class CompositeRange:
    """Prefix equality plus a range on the next component of a composite."""

    fields: tuple[str, ...]
    prefix: tuple[Any, ...]
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    op = "composite-range"

    def describe(self) -> str:
        fixed = ", ".join(
            f"{f} = {v!r}" for f, v in zip(self.fields, self.prefix)
        )
        bounded = self.fields[len(self.prefix)]
        lo = "(-inf" if self.low is None else ("[" if self.include_low else "(") + repr(self.low)
        hi = "+inf)" if self.high is None else repr(self.high) + ("]" if self.include_high else ")")
        return (
            f"COMPOSITE RANGE ({'+'.join(self.fields)}) {fixed}; "
            f"{bounded} in {lo}, {hi}"
        )


@dataclass(frozen=True, slots=True)
class IndexMultiLookup:
    """Probe the index on ``field`` once per value (IN lists)."""

    field: str
    values: tuple[Any, ...]
    kind: str  # "hash" | "btree"

    op = "index-multi-lookup"

    def describe(self) -> str:
        return (
            f"INDEX MULTI-LOOKUP ({self.kind}) {self.field} IN "
            f"({', '.join(repr(v) for v in self.values)})"
        )


@dataclass(frozen=True, slots=True)
class IndexRange:
    """Range-scan the B-tree index on ``field``."""

    field: str
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    op = "index-range"

    def describe(self) -> str:
        lo = "(-inf" if self.low is None else ("[" if self.include_low else "(") + repr(self.low)
        hi = "+inf)" if self.high is None else repr(self.high) + ("]" if self.include_high else ")")
        return f"INDEX RANGE (btree) {self.field} in {lo}, {hi}"


AccessPath = (
    FullScan
    | IndexLookup
    | IndexMultiLookup
    | IndexRange
    | CompositeLookup
    | CompositeRange
)


@dataclass(frozen=True, slots=True)
class Plan:
    """An executable plan: access path + residual filter + output clauses."""

    access: AccessPath
    residual: Expr | None
    group_by: str | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None

    def explain(self) -> str:
        """Human-readable plan, one clause per line."""
        lines = [self.access.describe()]
        if self.residual is not None:
            lines.append(f"FILTER {self.residual}")
        if self.group_by:
            lines.append(f"GROUP BY {self.group_by} (COUNT)")
        if self.order_by:
            lines.append(f"ORDER BY {self.order_by} {'DESC' if self.descending else 'ASC'}")
        if self.limit is not None:
            lines.append(f"LIMIT {self.limit}")
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class ScatterPlan:
    """A :class:`Plan` split for scatter-gather execution across shards.

    ``shard_plan`` is what every shard worker runs: the access path plus
    the residual filter, with the output clauses stripped — those move to
    the gather side, where :class:`~repro.query.executor.ShardedQueryEngine`
    reassembles a result identical to running the original plan on one
    store holding all the rows:

    * ``order_by`` → each shard returns its rows sorted by
      ``(order value, primary key)`` and the gather lazily k-way-merges
      the pre-sorted runs (the primary-key tiebreak makes the order total,
      so the merge is deterministic for any shard count).
    * ``group_by`` → each shard returns *partial* per-value counts and the
      gather sums them before formatting, so group rows are never split
      across shards.
    * ``limit`` → pushed down when no aggregation intervenes
      (:attr:`shard_limit`): a shard never produces more than ``limit``
      rows — sorted shards keep a bounded top-k heap, unsorted shards
      stop scanning early — and the gather trims the merged stream again.
    """

    shard_plan: Plan
    group_by: str | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None

    @property
    def shard_limit(self) -> int | None:
        """Max rows any one shard must produce, or None when unbounded.

        A LIMIT under a GROUP BY cannot be pushed down — every shard's
        rows may contribute to every group — so pushdown applies only to
        plain (optionally sorted) row queries.
        """
        if self.limit is None or self.group_by is not None:
            return None
        return self.limit

    def explain(self) -> str:
        """Human-readable scatter plan, one clause per line."""
        lines = [f"SCATTER {self.shard_plan.access.describe()}"]
        if self.shard_plan.residual is not None:
            lines.append(f"  FILTER {self.shard_plan.residual}")
        if self.group_by:
            lines.append(f"  PARTIAL GROUP BY {self.group_by} (COUNT)")
        if self.order_by and self.group_by is None:
            direction = "DESC" if self.descending else "ASC"
            lines.append(f"  SHARD SORT {self.order_by} {direction}, pk")
        if self.shard_limit is not None:
            lines.append(f"  SHARD LIMIT {self.shard_limit}")
        lines.append("GATHER")
        if self.group_by:
            lines.append(f"  COMBINE COUNTS {self.group_by}")
            if self.order_by:
                direction = "DESC" if self.descending else "ASC"
                lines.append(f"  ORDER BY {self.order_by} {direction}")
        elif self.order_by:
            direction = "DESC" if self.descending else "ASC"
            lines.append(f"  MERGE SORTED {self.order_by} {direction}")
        else:
            lines.append("  CONCAT shard order")
        if self.limit is not None:
            lines.append(f"  LIMIT {self.limit}")
        return "\n".join(lines)


def plan_scatter(plan: Plan) -> ScatterPlan:
    """Split ``plan`` into the per-shard sub-plan and the gather spec.

    The access path and residual are shard-local as-is (every shard owns a
    disjoint key range, so running them per shard examines each record
    exactly once); GROUP BY / ORDER BY / LIMIT become merge obligations.
    """
    return ScatterPlan(
        shard_plan=Plan(access=plan.access, residual=plan.residual),
        group_by=plan.group_by,
        order_by=plan.order_by,
        descending=plan.descending,
        limit=plan.limit,
    )


_PLANS_CONSIDERED = _planner_metrics.counter("query.plans.considered")
#: One labelled counter per access path; pre-registered so handles are
#: cached and a snapshot always shows the full label set.
_PLAN_CHOSEN = {
    cls.op: _planner_metrics.counter("query.plan.chosen", access=cls.op)
    for cls in (
        FullScan,
        IndexLookup,
        IndexMultiLookup,
        IndexRange,
        CompositeLookup,
        CompositeRange,
    )
}


_CACHE_HIT = _planner_metrics.counter("query.planner.cache.hit")
_CACHE_MISS = _planner_metrics.counter("query.planner.cache.miss")


class PlanCache:
    """LRU cache of compiled plans, keyed on query AST + index epoch.

    The query AST is frozen dataclasses all the way down, so a normalized
    query hashes and compares structurally.  Keys also carry the store's
    ``index_epoch``; since the epoch only moves forward, plans built
    against a dropped or newly-created index can never be returned — the
    stale keys just stop matching and eventually fall off the LRU tail.
    Queries with unhashable literal values (e.g. a list) are planned
    fresh every time and counted as misses.

    >>> cache = PlanCache(maxsize=2)
    >>> len(cache)
    0
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        # Entries are (plan, fingerprint, template): the workload
        # fingerprint is memoized next to the plan so a cache hit pays
        # one structural hash for both (see docs/profiling.md).
        self._plans: OrderedDict[
            tuple[Query, int], tuple[Plan, str, str]
        ] = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    def get_or_plan(self, query: Query, store: "RecordStore") -> tuple[Plan, bool]:
        """Return ``(plan, was_cached)``, planning on a miss."""
        plan, _, _, cached = self.get_or_plan_fingerprinted(query, store)
        return plan, cached

    def get_or_plan_fingerprinted(
        self, query: Query, store: "RecordStore"
    ) -> tuple[Plan, str, str, bool]:
        """``(plan, fingerprint, template, was_cached)``, planning on a miss."""
        key = (query, store.index_epoch)
        try:
            entry = self._plans[key]
        except KeyError:
            pass
        except TypeError:
            # Unhashable literal somewhere in the AST: plan fresh, skip
            # caching entirely.
            _CACHE_MISS.inc()
            fp, template = fingerprint_of(query)
            return plan_query(query, store), fp, template, False
        else:
            self._plans.move_to_end(key)
            _CACHE_HIT.inc()
            return entry[0], entry[1], entry[2], True
        plan = plan_query(query, store)
        fp, template = fingerprint_of(query)
        self._plans[key] = (plan, fp, template)
        if len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
        _CACHE_MISS.inc()
        return plan, fp, template, False

    def clear(self) -> None:
        self._plans.clear()


def plan_query(query: Query, store: "RecordStore") -> Plan:
    """Plan ``query`` against ``store``'s declared indexes."""
    clauses = [_rewrite_or_of_equalities(c) for c in conjuncts(query.where)]

    access, used = _choose_access(clauses, store)
    _PLANS_CONSIDERED.inc()
    _PLAN_CHOSEN[access.op].inc()
    residual = _combine([c for i, c in enumerate(clauses) if i not in used])
    _planner_logging.debug(
        "query.plan",
        access=access.op,
        detail=access.describe(),
        residual=residual is not None,
        clauses=len(clauses),
        fingerprint=fingerprint_of(query)[0],
    )
    return Plan(
        access=access,
        residual=residual,
        group_by=query.group_by,
        order_by=query.order_by,
        descending=query.descending,
        limit=query.limit,
    )


def _choose_access(
    clauses: list[Expr], store: "RecordStore"
) -> tuple[AccessPath, set[int]]:
    from repro.storage.store import IndexKind  # local import avoids a cycle

    # 0. composite indexes first: equality over every component answers
    #    the most conjuncts at once; prefix equality + a range on the next
    #    component comes second.
    composite = _choose_composite(clauses, store)
    if composite is not None:
        return composite

    # 1. equality lookups: pick the most selective indexed field.  The
    #    selectivity estimate is distinct-key cardinality (more distinct
    #    keys ⇒ a typical probe returns fewer records); ties break toward
    #    the hash index for its O(1) probe.
    best_equality: tuple[int, Comparison, IndexKind, int] | None = None
    for i, clause in enumerate(clauses):
        if not isinstance(clause, Comparison):
            continue
        if clause.op not in (Operator.EQ, Operator.MATCH):
            continue
        kind = store.index_kind(clause.field)
        if kind is None:
            continue
        stats = store.index_statistics(clause.field) or {}
        cardinality = stats.get("distinct_keys", 0)
        candidate = (i, clause, kind, cardinality)
        if best_equality is None:
            best_equality = candidate
        elif cardinality > best_equality[3]:
            best_equality = candidate
        elif (
            cardinality == best_equality[3]
            and kind is IndexKind.HASH
            and best_equality[2] is IndexKind.BTREE
        ):
            best_equality = candidate
    if best_equality is not None:
        i, clause, kind, _ = best_equality
        return IndexLookup(field=clause.field, value=clause.value, kind=kind.value), {i}

    # 2. IN-lists on an indexed field: one probe per value; prefer the
    #    shortest list (fewest probes).
    best_membership: tuple[int, Membership, IndexKind] | None = None
    for i, clause in enumerate(clauses):
        if not isinstance(clause, Membership):
            continue
        kind = store.index_kind(clause.field)
        if kind is None:
            continue
        if best_membership is None or len(clause.values) < len(best_membership[1].values):
            best_membership = (i, clause, kind)
    if best_membership is not None:
        i, clause, kind = best_membership
        return (
            IndexMultiLookup(field=clause.field, values=clause.values, kind=kind.value),
            {i},
        )

    # 3. prefix LIKE on a B-tree field becomes a string range
    #    ("Mc%" → ["Mc", "Mc\U0010ffff"]).  The Like clause is kept in the
    #    residual: the range narrows candidates, the pattern stays exact.
    for i, clause in enumerate(clauses):
        if not isinstance(clause, Like):
            continue
        prefix = clause.prefix
        if prefix is None or not prefix:
            continue
        if store.index_kind(clause.field) is not IndexKind.BTREE:
            continue
        return (
            IndexRange(
                field=clause.field,
                low=prefix,
                high=prefix + _PREFIX_CEILING,
                include_low=True,
                include_high=True,
            ),
            set(),  # narrowing only; Like re-checks exactly
        )

    # 4. merged range on one B-tree field
    ranges: dict[str, list[tuple[int, Comparison]]] = {}
    for i, clause in enumerate(clauses):
        if (
            isinstance(clause, Comparison)
            and clause.op.is_range
            and store.index_kind(clause.field) is IndexKind.BTREE
        ):
            ranges.setdefault(clause.field, []).append((i, clause))
    if ranges:
        # Prefer the field with the most constraints (tightest interval).
        field = max(ranges, key=lambda f: len(ranges[f]))
        interval = _merge_interval([c for _, c in ranges[field]])
        if interval is not None:
            used = {i for i, _ in ranges[field]}
            low, high, inc_low, inc_high = interval
            return (
                IndexRange(
                    field=field,
                    low=low,
                    high=high,
                    include_low=inc_low,
                    include_high=inc_high,
                ),
                used,
            )

    return FullScan(), set()


def _rewrite_or_of_equalities(expr: Expr) -> Expr:
    """Rewrite ``f = a OR f = b OR …`` into ``f IN (a, b, …)``.

    The rewrite is semantics-preserving (Membership evaluates exactly like
    the disjunction, including list-field behaviour) and turns an
    unplannable OR tree into a multi-probe index access.  Mixed
    disjunctions (different fields, non-equality operators) are left
    untouched.
    """
    if not isinstance(expr, Or):
        return expr
    flat: list[Expr] = []
    stack: list[Expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Or):
            stack.append(node.left)
            stack.append(node.right)
        else:
            flat.append(node)
    field: str | None = None
    values: list[Any] = []
    for node in flat:
        if isinstance(node, Comparison) and node.op in (Operator.EQ, Operator.MATCH):
            if field is None:
                field = node.field
            if node.field != field:
                return expr
            values.append(node.value)
        elif isinstance(node, Membership):
            if field is None:
                field = node.field
            if node.field != field:
                return expr
            values.extend(node.values)
        else:
            return expr
    assert field is not None
    # preserve first-seen order while deduplicating (values may repeat)
    seen: list[Any] = []
    for value in reversed(values):  # stack pop reversed the original order
        if value not in seen:
            seen.append(value)
    return Membership(field=field, values=tuple(seen))


def _choose_composite(
    clauses: list[Expr], store: "RecordStore"
) -> tuple[AccessPath, set[int]] | None:
    """Best composite-index access for the conjuncts, if any.

    Preference: full equality over the most component fields; otherwise
    the longest prefix of equalities followed by range conjuncts on the
    next component.  Single-field leftovers stay in the residual.
    """
    equalities: dict[str, tuple[int, Any]] = {}
    ranges: dict[str, list[tuple[int, Comparison]]] = {}
    for i, clause in enumerate(clauses):
        if not isinstance(clause, Comparison):
            continue
        if clause.op in (Operator.EQ, Operator.MATCH):
            equalities.setdefault(clause.field, (i, clause.value))
        elif clause.op.is_range:
            ranges.setdefault(clause.field, []).append((i, clause))

    best: tuple[int, AccessPath, set[int]] | None = None  # (score, path, used)
    for fields in store.composite_indexes():
        # longest all-equality prefix of this composite's field order
        prefix_len = 0
        for field in fields:
            if field in equalities:
                prefix_len += 1
            else:
                break
        if prefix_len == len(fields):
            used = {equalities[f][0] for f in fields}
            path: AccessPath = CompositeLookup(
                fields=fields, values=tuple(equalities[f][1] for f in fields)
            )
            score = 2 * len(fields)  # full equality dominates
            if best is None or score > best[0]:
                best = (score, path, used)
            continue
        if prefix_len == 0 or prefix_len >= len(fields):
            continue
        next_field = fields[prefix_len]
        range_clauses = ranges.get(next_field, [])
        if range_clauses:
            interval = _merge_interval([c for _, c in range_clauses])
            if interval is None:
                continue
            low, high, include_low, include_high = interval
            score = 2 * prefix_len + 1
        elif prefix_len >= 2:
            # A bare multi-field equality prefix is still a useful scan.
            low = high = None
            include_low = include_high = True
            score = 2 * prefix_len
        else:
            continue  # one equality, no range: rule 1 serves it better
        used = {equalities[f][0] for f in fields[:prefix_len]}
        used |= {i for i, _ in range_clauses}
        path = CompositeRange(
            fields=fields,
            prefix=tuple(equalities[f][1] for f in fields[:prefix_len]),
            low=low,
            high=high,
            include_low=include_low,
            include_high=include_high,
        )
        if best is None or score > best[0]:
            best = (score, path, used)

    if best is None:
        return None
    _score, path, used = best
    return path, used


def _merge_interval(
    comparisons: list[Comparison],
) -> tuple[Any, Any, bool, bool] | None:
    """Intersect range comparisons on one field into a single interval.

    Returns ``None`` when bounds are mutually incomparable (mixed types).
    """
    low: Any = None
    high: Any = None
    include_low = True
    include_high = True
    try:
        for comparison in comparisons:
            value = comparison.value
            inclusive = comparison.op in (Operator.GE, Operator.LE)
            if comparison.op in (Operator.GT, Operator.GE):
                # A lower bound is tighter when larger, or equal-but-exclusive.
                if low is None or value > low:
                    low, include_low = value, inclusive
                elif value == low and not inclusive:
                    include_low = False
            else:
                # An upper bound is tighter when smaller, or equal-but-exclusive.
                if high is None or value < high:
                    high, include_high = value, inclusive
                elif value == high and not inclusive:
                    include_high = False
    except TypeError:
        return None
    return low, high, include_low, include_high


def _combine(clauses: list[Expr]) -> Expr | None:
    if not clauses:
        return None
    node = clauses[0]
    for clause in clauses[1:]:
        node = And(node, clause)
    return node

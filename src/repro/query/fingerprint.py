"""Query fingerprinting: normalize a query AST into a stable identity.

A *fingerprint* names a query's **shape** — the fields, operators, and
output clauses — with every literal stripped, so semantically identical
queries that differ only in literals (or in the whitespace the parser
already discards) aggregate under one key::

    year >= 1980 AND surnames:"McAteer"   ─┐
    year >= 1990 AND surnames:"Soler"     ─┼─> surnames : ? AND year >= ?
      year>=1875 AND surnames : "Petricek"─┘       (fingerprint 9c0f3a…)

Normalization rules:

* every comparison / LIKE literal becomes ``?``; an ``IN`` list becomes
  ``(?)`` regardless of length (one probe shape, any list);
* ``AND`` and ``OR`` chains are flattened and their operands sorted, so
  conjunct order does not split a shape (conjunction commutes — the
  planner already treats the clauses as a set);
* output clauses (GROUP BY / ORDER BY / LIMIT presence — not the limit
  *value*) are part of the shape: a paginated scan and a bare filter are
  different workloads.

The fingerprint itself is the first 12 hex digits of the BLAKE2b digest
of the template — short enough for a metric label, stable across
processes and Python hash seeds (unlike ``hash()``).  Both the template
and the digest are returned so human surfaces (``repro top``, ``/topz``)
can show the readable shape next to the key.

Computation is memoized on the (hashable, frozen) :class:`Query` AST —
the same object identity the plan cache keys on — so a repeated query
pays one dict hit, not a tree walk.
"""

from __future__ import annotations

import functools
from hashlib import blake2b
from typing import TYPE_CHECKING

from repro.query.ast_nodes import (
    And,
    Comparison,
    Expr,
    Like,
    Membership,
    Not,
    Or,
    Query,
)

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["fingerprint_of", "query_template", "FINGERPRINT_HEX_LEN"]

#: Hex digits in a fingerprint (6 bytes of BLAKE2b — collision-safe for
#: any realistic number of distinct query shapes, short as a label).
FINGERPRINT_HEX_LEN = 12


def _template(expr: Expr | None) -> str:
    """Literal-stripped, order-normalized rendering of a filter tree."""
    if expr is None:
        return "*"
    if isinstance(expr, Comparison):
        return f"{expr.field} {expr.op.value} ?"
    if isinstance(expr, Membership):
        return f"{expr.field} IN (?)"
    if isinstance(expr, Like):
        return f"{expr.field} LIKE ?"
    if isinstance(expr, Not):
        return f"NOT ({_template(expr.operand)})"
    if isinstance(expr, (And, Or)):
        word = "AND" if isinstance(expr, And) else "OR"
        flat: list[str] = []
        stack: list[Expr] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, type(expr)):
                stack.append(node.left)
                stack.append(node.right)
            else:
                flat.append(_template(node))
        # Sorted: AND/OR commute, so operand order must not split shapes.
        joined = f" {word} ".join(sorted(flat))
        return f"({joined})" if word == "OR" else joined
    raise TypeError(f"unknown expression node {expr!r}")  # pragma: no cover


def query_template(query: Query) -> str:
    """The normalized template of ``query`` (human-readable shape)."""
    parts = [_template(query.where)]
    if query.group_by is not None:
        parts.append(f"GROUP BY {query.group_by}")
    if query.order_by is not None:
        direction = "DESC" if query.descending else "ASC"
        parts.append(f"ORDER BY {query.order_by} {direction}")
    if query.limit is not None:
        parts.append("LIMIT ?")
    return " ".join(parts)


@functools.lru_cache(maxsize=1024)
def _fingerprint_cached(query: Query) -> tuple[str, str]:
    template = query_template(query)
    digest = blake2b(template.encode("utf-8"), digest_size=6).hexdigest()
    return digest[:FINGERPRINT_HEX_LEN], template


def fingerprint_of(query: Query) -> tuple[str, str]:
    """``(fingerprint, template)`` for ``query``.

    Queries whose AST carries an unhashable literal (a list value) skip
    the memo and are normalized fresh — the fingerprint is identical
    either way.
    """
    try:
        return _fingerprint_cached(query)
    except TypeError:
        template = query_template(query)
        digest = blake2b(template.encode("utf-8"), digest_size=6).hexdigest()
        return digest[:FINGERPRINT_HEX_LEN], template

"""Query abstract syntax tree.

Expressions are immutable dataclasses evaluated against plain record dicts.
``field:value`` in the surface language means *matches*: equality for
scalars, membership for list fields — the evaluator dispatches on the
record value's runtime type.
"""

from __future__ import annotations

import enum
import functools
import re
from dataclasses import dataclass, field
from typing import Any, Mapping, Union


class Operator(enum.Enum):
    """Comparison operators of the query language."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    MATCH = ":"  # equality for scalars, membership for lists

    @property
    def is_range(self) -> bool:
        """True for operators a B-tree range scan can serve."""
        return self in (Operator.LT, Operator.LE, Operator.GT, Operator.GE)


@dataclass(frozen=True, slots=True)
class Comparison:
    """``field <op> value``."""

    field: str
    op: Operator
    value: Any

    def evaluate(self, record: Mapping[str, Any]) -> bool:
        actual = record.get(self.field)
        if actual is None:
            return False
        if self.op is Operator.MATCH:
            if isinstance(actual, list):
                return self.value in actual
            return _loose_eq(actual, self.value)
        if self.op is Operator.EQ:
            if isinstance(actual, list):
                return self.value in actual
            return _loose_eq(actual, self.value)
        if self.op is Operator.NE:
            if isinstance(actual, list):
                return self.value not in actual
            return not _loose_eq(actual, self.value)
        if isinstance(actual, list):
            return False  # ordered comparisons are undefined on lists
        try:
            if self.op is Operator.LT:
                return actual < self.value
            if self.op is Operator.LE:
                return actual <= self.value
            if self.op is Operator.GT:
                return actual > self.value
            if self.op is Operator.GE:
                return actual >= self.value
        except TypeError:
            return False
        raise AssertionError(f"unhandled operator {self.op}")  # pragma: no cover

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.field} {self.op.value} {self.value!r}"


def _loose_eq(actual: Any, expected: Any) -> bool:
    """Equality that lets int query literals match float fields and
    case-folds nothing (string matching is exact)."""
    if isinstance(actual, bool) or isinstance(expected, bool):
        return actual is expected or actual == expected
    return actual == expected


@dataclass(frozen=True, slots=True)
class Membership:
    """``field IN (v1, v2, …)`` — equality against any of several values.

    List fields match when any element is among the values.
    """

    field: str
    values: tuple[Any, ...]

    def evaluate(self, record: Mapping[str, Any]) -> bool:
        actual = record.get(self.field)
        if actual is None:
            return False
        if isinstance(actual, list):
            return any(v in self.values for v in actual)
        return any(_loose_eq(actual, v) for v in self.values)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.field} IN ({inner})"


@functools.lru_cache(maxsize=256)
def _like_regex(pattern: str) -> re.Pattern[str]:
    """Compile a SQL-style LIKE pattern (``%`` = any run) to a regex."""
    parts = [re.escape(chunk) for chunk in pattern.split("%")]
    return re.compile("^" + ".*".join(parts) + "$", re.DOTALL)


@dataclass(frozen=True, slots=True)
class Like:
    """``field LIKE "Mc%"`` — SQL-style pattern match on string fields.

    ``%`` matches any (possibly empty) run of characters; matching is
    case-sensitive (so a pure-prefix pattern can be served by a B-tree
    range over the stored strings).  List fields match when any element
    matches.
    """

    field: str
    pattern: str

    def evaluate(self, record: Mapping[str, Any]) -> bool:
        actual = record.get(self.field)
        if actual is None:
            return False
        regex = _like_regex(self.pattern)
        if isinstance(actual, list):
            return any(isinstance(v, str) and regex.match(v) for v in actual)
        return isinstance(actual, str) and bool(regex.match(actual))

    @property
    def prefix(self) -> str | None:
        """The literal prefix when the pattern is ``prefix%`` (else None)."""
        if self.pattern.endswith("%") and "%" not in self.pattern[:-1]:
            return self.pattern[:-1]
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.field} LIKE {self.pattern!r}"


@dataclass(frozen=True, slots=True)
class And:
    """Conjunction of two sub-expressions."""

    left: "Expr"
    right: "Expr"

    def evaluate(self, record: Mapping[str, Any]) -> bool:
        return self.left.evaluate(record) and self.right.evaluate(record)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True, slots=True)
class Or:
    """Disjunction of two sub-expressions."""

    left: "Expr"
    right: "Expr"

    def evaluate(self, record: Mapping[str, Any]) -> bool:
        return self.left.evaluate(record) or self.right.evaluate(record)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True, slots=True)
class Not:
    """Negation of a sub-expression."""

    operand: "Expr"

    def evaluate(self, record: Mapping[str, Any]) -> bool:
        return not self.operand.evaluate(record)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(NOT {self.operand})"


Expr = Union[Comparison, Membership, Like, And, Or, Not]


@dataclass(frozen=True, slots=True)
class Query:
    """A full query: filter expression plus output-shaping clauses.

    ``where=None`` selects everything (``*`` in the surface language).
    ``group_by`` turns the query into an aggregation: the result rows are
    ``{group_by: value, "count": n}`` — list fields count each element —
    and ``order_by`` may then name the group field or ``"count"``.
    """

    where: Expr | None = None
    group_by: str | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    #: Memoized hash — hashing recurses over the whole expression tree,
    #: and plan-cache lookups hash the same query repeatedly.
    _hash: int | None = field(default=None, init=False, repr=False, compare=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(
                (self.where, self.group_by, self.order_by, self.descending, self.limit)
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    def matches(self, record: Mapping[str, Any]) -> bool:
        return self.where is None or self.where.evaluate(record)


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a top-level AND chain into its conjunct list.

    >>> from repro.query.parser import parse_query
    >>> q = parse_query("a = 1 AND b = 2 AND c > 3")
    >>> [str(c) for c in conjuncts(q.where)]
    ['a = 1', 'b = 2', 'c > 3']
    """
    if expr is None:
        return []
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]

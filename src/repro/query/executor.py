"""Query executor: run planned queries against a record store.

The executor is deliberately small: the access path yields candidate
records, the residual expression filters them, and ORDER BY / LIMIT shape
the output.  Records coming from list-field index probes are de-duplicated
by primary key (a list may contain the probe value twice).

:class:`QueryEngine` is the public entry point::

    engine = QueryEngine(store)
    rows = engine.execute('author:"McAteer" AND year >= 1978')
    print(engine.explain('year >= 1978'))

``execute(..., profile=True)`` is the ``EXPLAIN ANALYZE`` surface: instead
of a bare row list it returns a :class:`QueryProfile` whose operator tree
annotates every node (seq-scan, index lookups/ranges, filter, aggregate,
sort, limit) with wall time, CPU time (``time.thread_time_ns``), bytes
touched (sampled estimate), and rows-examined/rows-returned counts.
Profiled execution materializes stage by stage so each node's cost is
attributable; the unprofiled path stays streaming and is instrumented only
with bulk counters (``query.executions``, ``query.rows.returned``) and a
latency histogram (``query.seconds``).

Every execution (profiled or not) is additionally attributed to its query
*fingerprint* (:mod:`repro.query.fingerprint`) in the process-wide
:class:`~repro.obs.workload.WorkloadTable`: calls, rows, CPU/wall
nanoseconds, estimated bytes scanned, plan-cache hits, and deadline /
cancellation / budget interruptions aggregate per query shape, and a
profiled run rolls its per-operator breakdown into the same row.  The
attribution is one fingerprint memo hit, two thread-clock reads, and one
locked table fold per query — covered by the <5% overhead contract — and
collapses to a flag check when ``repro.obs`` is disabled.
"""

from __future__ import annotations

import base64
import heapq
import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import (
    BudgetExceeded,
    QueryCancelled,
    QueryInterrupted,
    QueryPlanError,
    QueryTimeout,
    ShardUnavailableError,
)
from repro.obs import logging as _logging
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs import workload as _workload
from repro.obs.slowlog import SlowQueryLog
from repro.resilience.deadline import CancelToken, Deadline, Guard
from repro.resilience.retry import RetryPolicy
from repro.storage.bufferpool import PageStats, page_stats_scope
from repro.query.ast_nodes import Query
from repro.query.parser import parse_query
from repro.query.planner import (
    CompositeLookup,
    CompositeRange,
    FullScan,
    IndexLookup,
    IndexMultiLookup,
    IndexRange,
    Plan,
    PlanCache,
    ScatterPlan,
    plan_scatter,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.sharded import ShardedStore
    from repro.storage.store import RecordStore

_EXECUTIONS = _metrics.counter("query.executions")
# Bound once: the default table is a process-lifetime singleton (reset
# mutates it in place), and the direct method call keeps the per-query
# attribution cost inside the <5% overhead contract.
_WORKLOAD_TABLE = _workload.get_default_table()
# Pre-bound hot-path method: one global load instead of a global load
# plus a method bind per attributed execution.
_RECORD_PACKED = _WORKLOAD_TABLE.record_packed
_ROWS_EXAMINED = _metrics.counter("query.rows.examined")
_ROWS_RETURNED = _metrics.counter("query.rows.returned")
_QUERY_SECONDS = _metrics.histogram("query.seconds")
_PROFILED = _metrics.counter("query.profiled.count")
# Availability SLO numerator (paired with query.executions): every
# execute() that unwound with an error, interruptions included.
_FAILURES = _metrics.counter("query.failures")

#: Rows sampled when estimating the byte footprint of a row set.
_BYTES_SAMPLE = 4

#: Attributed executions between per-row byte-estimate resamples on the
#: unprofiled path (profiled runs always sample their own rows).  The
#: resample countdown ticks only on thread-CPU sample trips (1 in
#: :data:`_CPU_SAMPLE_EVERY`), so keep this a multiple of that.
_BYTES_REFRESH = 512

#: Unprofiled executions between thread-CPU clock samples.  The
#: CLOCK_THREAD_CPUTIME_ID read behind ``time.thread_time_ns`` is a real
#: syscall on many kernels (no vDSO) — hundreds of ns, two reads per
#: execution.  Sampling 1-in-N keeps per-fingerprint CPU attribution
#: statistically sound (the fold scales sampled CPU up to the call
#: count) at 1/N of the clock cost.  Profiled runs always measure.
_CPU_SAMPLE_EVERY = 16


def _record_bytes(record: dict[str, Any]) -> int:
    """Cheap byte estimate of one record: string lengths + 8 per scalar."""
    total = 0
    for key, value in record.items():
        total += len(key)
        if isinstance(value, str):
            total += len(value)
        elif isinstance(value, list):
            total += sum(len(v) if isinstance(v, str) else 8 for v in value)
        else:
            total += 8
    return total


def _estimate_bytes(rows: list[dict[str, Any]], count: int | None = None) -> int:
    """Estimated bytes across ``count`` rows, sampled from ``rows``.

    The first few rows are measured and the average extrapolated, so the
    cost is constant regardless of result size — good enough for skew
    and attribution, not an accounting-grade number.
    """
    if count is None:
        count = len(rows)
    if not rows or count <= 0:
        return 0
    sample = rows[:_BYTES_SAMPLE]
    return int(sum(_record_bytes(r) for r in sample) / len(sample) * count)


def _interruption_kind(exc: QueryInterrupted) -> str:
    if isinstance(exc, QueryTimeout):
        return "timeout"
    if isinstance(exc, BudgetExceeded):
        return "budget"
    if isinstance(exc, QueryCancelled):
        return "cancelled"
    return "cancelled"  # unknown subclass: closest bucket


@dataclass(frozen=True, slots=True)
class OpProfile:
    """One node of a profiled operator tree (``EXPLAIN ANALYZE`` output).

    ``rows_examined`` counts the rows the operator looked at (its input,
    or for a seq-scan the whole table); ``rows_returned`` counts the rows
    it passed upward.  ``seconds`` is the node's own wall time, measured
    over the materialization of its output (children excluded);
    ``cpu_ns`` is the thread-CPU time of the same stage, and ``bytes``
    the sampled byte estimate of the rows it handled.
    """

    op: str  #: "seq-scan" | "index-lookup" | … | "filter" | "sort" | "limit"
    detail: str
    rows_examined: int
    rows_returned: int
    seconds: float
    children: tuple["OpProfile", ...] = ()
    cpu_ns: int = 0
    bytes: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "detail": self.detail,
            "rows_examined": self.rows_examined,
            "rows_returned": self.rows_returned,
            "seconds": self.seconds,
            "cpu_ns": self.cpu_ns,
            "bytes": self.bytes,
            "children": [child.to_dict() for child in self.children],
        }

    def workload_node(self) -> dict[str, int | str]:
        """This node as a :class:`~repro.obs.workload.WorkloadTable`
        operator-breakdown entry."""
        return {
            "op": self.op,
            "rows_in": self.rows_examined,
            "rows_out": self.rows_returned,
            "cpu_ns": self.cpu_ns,
            "wall_ns": int(self.seconds * 1e9),
            "bytes": self.bytes,
        }

    def render(self) -> str:
        """Indented tree, root first (the outermost operator on top)."""
        lines: list[str] = []
        self._render_into(lines, "", "")
        return "\n".join(lines)

    def _render_into(self, lines: list[str], prefix: str, child_prefix: str) -> None:
        lines.append(
            f"{prefix}{self.op} ({self.detail})  "
            f"examined={self.rows_examined} returned={self.rows_returned}  "
            f"{self.seconds * 1e3:.3f}ms cpu={self.cpu_ns / 1e6:.3f}ms "
            f"bytes~{self.bytes}"
        )
        for child in self.children:
            child._render_into(lines, child_prefix + "└─ ", child_prefix + "   ")

    def iter_nodes(self) -> Iterator["OpProfile"]:
        """This node and every descendant, root first."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()


@dataclass(frozen=True, slots=True)
class QueryProfile:
    """Rows plus the annotated operator tree of one profiled execution.

    ``page_hits`` / ``page_misses`` are the buffer-pool pages this query
    touched (thread-attributed through
    :func:`repro.storage.bufferpool.page_stats_scope`; summed across
    shard workers on a scatter).  Both stay 0 against a memory-format
    store — there is no pool to hit.
    """

    rows: list[dict[str, Any]]
    root: OpProfile
    plan_text: str
    seconds: float
    plan_cached: bool = False  #: plan came from the engine's PlanCache
    fingerprint: str | None = None  #: workload fingerprint of the query shape
    page_hits: int = 0  #: buffer-pool hits attributed to this query
    page_misses: int = 0  #: buffer-pool misses attributed to this query
    partial: bool = False  #: a partial-mode scatter skipped shard(s)
    shards_failed: tuple[int, ...] = ()  #: skipped shard indexes

    def render(self) -> str:
        """The operator tree plus a total-time footer."""
        cached = "  (plan: cached)" if self.plan_cached else ""
        fp = f"  [fingerprint {self.fingerprint}]" if self.fingerprint else ""
        pages = ""
        if self.page_hits or self.page_misses:
            pages = f"  pages: {self.page_hits} hit / {self.page_misses} miss"
        degraded = ""
        if self.partial:
            failed = ", ".join(str(s) for s in self.shards_failed)
            degraded = f"\nPARTIAL RESULT: shard(s) {failed} failed or quarantined"
        return (
            f"{self.root.render()}\n"
            f"total: {self.seconds * 1e3:.3f}ms{pages}{cached}{fp}{degraded}"
        )

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "plan": self.plan_text,
            "plan_cached": self.plan_cached,
            "fingerprint": self.fingerprint,
            "seconds": self.seconds,
            "row_count": len(self.rows),
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "tree": self.root.to_dict(),
        }
        if self.partial:
            # Complete results keep the pre-sharding JSON shape; the
            # degradation keys only appear when shards actually dropped out.
            doc["partial"] = True
            doc["shards_failed"] = list(self.shards_failed)
        return doc


@dataclass(frozen=True, slots=True)
class Page:
    """One page of a cursor-paginated result."""

    rows: list[dict[str, Any]]
    next_cursor: str | None  #: None when this is the last page

    @property
    def has_more(self) -> bool:
        return self.next_cursor is not None


def _encode_cursor(sort_value: Any, primary_key: Any) -> str:
    payload = json.dumps([sort_value, primary_key], separators=(",", ":"))
    return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii")


def _decode_cursor(cursor: str) -> tuple[Any, Any]:
    try:
        payload = json.loads(base64.urlsafe_b64decode(cursor.encode("ascii")))
        sort_value, primary_key = payload
    except Exception as exc:
        raise QueryPlanError(f"malformed cursor: {exc}") from exc
    return sort_value, primary_key


class QueryEngine:
    """Plans and executes query strings (or pre-parsed :class:`Query`).

    Plans are memoized in a per-engine :class:`PlanCache` (LRU of
    ``plan_cache_size`` entries, keyed on the parsed AST plus the store's
    ``index_epoch``) — a repeated query skips the planner's rule search
    entirely, and any index create/drop or bulk write retires every
    cached plan by bumping the epoch.

    Every :meth:`execute` runs under a trace ID (see
    :func:`repro.obs.logging.trace`): its log events, its spans, and —
    when a :class:`~repro.obs.slowlog.SlowQueryLog` is attached and the
    query crosses the threshold — its slow-log entry all carry that one
    ID.  A slow query that ran unprofiled is re-executed with profiling
    (still under the same trace ID) so the slow-log entry gets an
    EXPLAIN ANALYZE tree; the extra cost is paid only past the threshold.
    """

    def __init__(
        self,
        store: "RecordStore",
        *,
        plan_cache_size: int = 256,
        slow_log: SlowQueryLog | None = None,
    ):
        self.store = store
        self.plan_cache = PlanCache(maxsize=plan_cache_size)
        self.slow_log = slow_log
        # Cached per-row byte estimate for workload attribution: rows
        # share one schema, so a periodically refreshed average is as
        # good as sampling every execution at a fraction of the cost.
        self._bytes_per_row = 0.0
        # One merged countdown serves both sampling schedules: every
        # trip takes a thread-CPU sample, and every _BYTES_REFRESH /
        # _CPU_SAMPLE_EVERY trips the byte estimate is resampled too —
        # a single attribute decrement on the per-execution path.
        self._probe = 0  # executions until the next thread-CPU sample
        self._bytes_rounds = 0  # sample trips until the next byte resample

    # -- public API ---------------------------------------------------------

    def execute(
        self,
        query: str | Query,
        *,
        profile: bool = False,
        guard: Guard | None = None,
        timeout_s: float | None = None,
        cancel: CancelToken | None = None,
        max_rows: int | None = None,
    ) -> list[dict[str, Any]] | QueryProfile:
        """Run ``query`` and return the matching records.

        With ``profile=True``, returns a :class:`QueryProfile` instead:
        the rows plus the annotated operator tree with per-node timings
        and rows-examined/rows-returned counts (``EXPLAIN ANALYZE``).

        Execution can be bounded: pass a pre-built
        :class:`~repro.resilience.Guard`, or let the convenience knobs
        (``timeout_s`` wall clock, ``cancel`` token, ``max_rows`` row
        budget) build one.  A violated bound unwinds with the matching
        :class:`~repro.errors.QueryInterrupted` subclass carrying
        partial-progress stats; a profiled run additionally attaches the
        partial EXPLAIN ANALYZE tree as ``exc.partial``.  An explicit
        ``guard`` takes precedence over the knobs.
        """
        if guard is None and (
            timeout_s is not None or cancel is not None or max_rows is not None
        ):
            guard = Guard(
                deadline=Deadline.after(timeout_s) if timeout_s is not None else None,
                cancel=cancel,
                max_rows=max_rows,
            )
        try:
            return self._execute(query, profile=profile, guard=guard)
        except Exception:
            _FAILURES.inc()
            raise

    def _execute(
        self,
        query: str | Query,
        *,
        profile: bool,
        guard: Guard | None,
    ) -> list[dict[str, Any]] | QueryProfile:
        with _logging.trace() as trace_id:
            parsed = self._parse(query)
            plan, fp, template, cached = self.plan_cache.get_or_plan_fingerprinted(
                parsed, self.store
            )
            query_text = query if isinstance(query, str) else str(query)
            if not _WORKLOAD_TABLE.enabled:
                fp = None
            # Thread-CPU clock reads are sampled (see _CPU_SAMPLE_EVERY);
            # cpu_start = -1 marks an unsampled execution.
            cpu_start = -1
            if fp is not None:
                if profile:
                    cpu_start = time.thread_time_ns()
                else:
                    self._probe -= 1
                    if self._probe < 0:
                        self._probe = _CPU_SAMPLE_EVERY - 1
                        cpu_start = time.thread_time_ns()
            start = time.perf_counter()
            try:
                if profile:
                    result: QueryProfile = self.run_plan_profiled(
                        plan, plan_cached=cached, guard=guard, fingerprint=fp
                    )
                    rows, seconds = len(result.rows), result.seconds
                    ran_profile: QueryProfile | None = result
                else:
                    plain = self.run_plan(plan, guard=guard)
                    rows, seconds = len(plain), time.perf_counter() - start
                    ran_profile = None
            except QueryInterrupted as exc:
                if fp is not None:
                    _RECORD_PACKED((
                        fp, template, 0, exc.rows_examined,
                        time.thread_time_ns() - cpu_start if cpu_start >= 0 else -1,
                        time.perf_counter() - start,
                        0, cached, _interruption_kind(exc), False, None,
                    ))
                raise
            if fp is not None:
                if guard is not None:
                    examined = guard.rows_examined
                elif isinstance(plan.access, FullScan):
                    examined = len(self.store)
                else:
                    examined = rows
                if cpu_start < 0:
                    cpu_ns = -1
                else:
                    cpu_ns = time.thread_time_ns() - cpu_start
                    # A sample trip also ticks the byte-estimate
                    # resample countdown (see _BYTES_REFRESH).
                    if not profile:
                        self._bytes_rounds -= 1
                        if self._bytes_rounds < 0 and plain:
                            self._refresh_bytes_per_row(plain)
                # Packed positional form of WorkloadTable.record — one
                # deque append per execution (see record_packed); the
                # common successful path uses the short 8-slot shape.
                if profile:
                    if result.rows:
                        self._refresh_bytes_per_row(result.rows)
                    _RECORD_PACKED((
                        fp, template, rows, examined, cpu_ns, seconds,
                        examined * self._bytes_per_row, cached, None, False,
                        [n.workload_node() for n in result.root.iter_nodes()],
                    ))
                else:
                    _RECORD_PACKED((
                        fp, template, rows, examined, cpu_ns, seconds,
                        examined * self._bytes_per_row, cached,
                    ))
            if _logging.would_log("debug"):
                _logging.debug(
                    "query.execute",
                    query=query_text,
                    access=plan.access.op,
                    plan_cached=cached,
                    fingerprint=fp,
                    rows=rows,
                    seconds=round(seconds, 6),
                    profiled=profile,
                )
            self._maybe_slow_log(
                query_text, plan, cached, rows, seconds, ran_profile, trace_id, fp
            )
            return result if profile else plain

    def explain(self, query: str | Query) -> str:
        """The plan that :meth:`execute` would use, as text."""
        parsed = self._parse(query)
        plan, _ = self._plan(parsed)
        return plan.explain()

    def _plan(self, parsed: Query) -> tuple[Plan, bool]:
        return self.plan_cache.get_or_plan(parsed, self.store)

    def _refresh_bytes_per_row(self, out_rows: list[dict[str, Any]]) -> None:
        """Resample the cached per-row byte estimate from live rows.

        Sampling rows on every execution would dominate the attribution
        budget on sub-100µs queries; instead the first execution (and
        every :data:`_BYTES_REFRESH`\\ th after it) samples its result
        rows, and the rest extrapolate from the cached average inline at
        the record site.
        """
        sample = out_rows[:_BYTES_SAMPLE]
        self._bytes_per_row = sum(_record_bytes(r) for r in sample) / len(sample)
        self._bytes_rounds = _BYTES_REFRESH // _CPU_SAMPLE_EVERY

    def _maybe_slow_log(
        self,
        query_text: str,
        plan: Plan,
        plan_cached: bool,
        rows: int,
        seconds: float,
        profile: QueryProfile | None,
        trace_id: str,
        fingerprint: str | None = None,
    ) -> None:
        slow = self.slow_log
        if slow is None or seconds < slow.threshold_s:
            return
        reexecuted = False
        if profile is None and slow.profile_on_slow:
            # Re-run profiled (same plan, same trace ID) so the entry has
            # an operator tree; only queries already past the threshold pay.
            profile = self.run_plan_profiled(
                plan, plan_cached=plan_cached, fingerprint=fingerprint
            )
            reexecuted = True
        slow.record(
            query=query_text,
            plan=plan.explain(),
            plan_cached=plan_cached,
            rows=rows,
            seconds=seconds,
            profile=profile,
            reexecuted=reexecuted,
            trace_id=trace_id,
            fingerprint=fingerprint,
        )

    def execute_without_indexes(self, query: str | Query) -> list[dict[str, Any]]:
        """Run ``query`` as a pure scan (the E3 baseline and test oracle)."""
        parsed = self._parse(query)
        plan = Plan(
            access=FullScan(),
            residual=parsed.where,
            order_by=parsed.order_by,
            descending=parsed.descending,
            limit=parsed.limit,
        )
        return self.run_plan(plan)

    # -- plan execution --------------------------------------------------------

    def count(self, query: str | Query) -> int:
        """Number of records matching ``query`` (ignores GROUP BY/LIMIT)."""
        parsed = self._parse(query)
        plan, _ = self._plan(Query(where=parsed.where))
        total = 0
        rows: Any = self._candidates(plan)
        if plan.residual is not None:
            rows = (r for r in rows if plan.residual.evaluate(r))
        for _ in rows:
            total += 1
        return total

    def execute_paged(
        self, query: str | Query, *, page_size: int, cursor: str | None = None
    ) -> Page:
        """Run ``query`` returning one stable page at a time.

        Rows are ordered by the query's ORDER BY (primary key as the
        implicit fallback and as the tiebreak), and the returned cursor
        names the last row seen — so pages stay consistent even if rows
        are inserted or deleted between calls (no offset drift; a row is
        never skipped or repeated unless it itself changed).  GROUP BY and
        LIMIT are rejected: pagination owns the output shape.
        """
        if page_size <= 0:
            raise QueryPlanError(f"page_size must be positive, got {page_size}")
        parsed = self._parse(query)
        if parsed.group_by is not None or parsed.limit is not None:
            raise QueryPlanError("paged queries must not use GROUP BY or LIMIT")

        pk_field = self.store.schema.primary_key
        order_field = parsed.order_by or pk_field
        if not self.store.schema.has_field(order_field):
            raise QueryPlanError(f"cannot ORDER BY unknown field {order_field!r}")
        plan, _ = self._plan(Query(where=parsed.where))
        rows: Any = self._candidates(plan)
        if plan.residual is not None:
            rows = (r for r in rows if plan.residual.evaluate(r))

        def row_key(record: dict[str, Any]) -> tuple:
            return (
                _sort_key(record.get(order_field)),
                _sort_key(record.get(pk_field)),
            )

        ordered = sorted(rows, key=row_key, reverse=parsed.descending)
        start = 0
        if cursor is not None:
            after_value, after_pk = _decode_cursor(cursor)
            after_key = (_sort_key(after_value), _sort_key(after_pk))
            for start, record in enumerate(ordered):
                this_key = row_key(record)
                if (this_key > after_key) != parsed.descending and this_key != after_key:
                    break
            else:
                start = len(ordered)
        page_rows = ordered[start : start + page_size]
        next_cursor = None
        if start + page_size < len(ordered) and page_rows:
            last = page_rows[-1]
            next_cursor = _encode_cursor(last.get(order_field), last.get(pk_field))
        return Page(rows=page_rows, next_cursor=next_cursor)

    def delete(self, query: str | Query) -> int:
        """Atomically delete every record matching ``query``'s filter.

        GROUP BY / ORDER BY / LIMIT clauses are rejected — a destructive
        operation must not depend on presentation clauses.
        """
        parsed = self._parse(query)
        if parsed.group_by or parsed.order_by or parsed.limit is not None:
            raise QueryPlanError(
                "DELETE accepts a bare filter (no GROUP BY/ORDER BY/LIMIT)"
            )
        return self.store.delete_where(parsed.matches)

    def run_plan(self, plan: Plan, *, guard: Guard | None = None) -> list[dict[str, Any]]:
        """Execute a :class:`Plan` produced by the planner.

        ``guard`` bounds the execution (deadline / cancellation / row
        budget), ticked once per candidate row the access path examines.
        """
        start = time.perf_counter()
        if guard is not None:
            # Fail fast on a pre-expired deadline or pre-cancelled token
            # instead of after the first check stride.
            guard.check()
        rows = self._candidates(plan, guard)
        if plan.residual is not None:
            residual = plan.residual
            rows = (r for r in rows if residual.evaluate(r))
        if plan.group_by is not None:
            rows = iter(self._aggregate(rows, plan.group_by))
        if plan.order_by is not None:
            self._check_order_field(plan)
            field = plan.order_by
            materialized = sorted(
                rows,
                key=lambda r: _sort_key(r.get(field)),
                reverse=plan.descending,
            )
            rows = iter(materialized)
        if plan.limit is not None:
            out: list[dict[str, Any]] = []
            for record in rows:
                if len(out) == plan.limit:
                    break
                out.append(record)
        else:
            out = list(rows)
        _EXECUTIONS.inc()
        _ROWS_RETURNED.inc(len(out))
        _QUERY_SECONDS.observe(time.perf_counter() - start)
        return out

    def run_plan_profiled(
        self,
        plan: Plan,
        *,
        plan_cached: bool = False,
        guard: Guard | None = None,
        fingerprint: str | None = None,
    ) -> QueryProfile:
        """Execute ``plan`` stage by stage, timing and counting each node.

        Unlike :meth:`run_plan` this materializes every stage so each
        operator's cost is attributable; results are identical.
        ``plan_cached`` is recorded in the profile so EXPLAIN ANALYZE
        shows whether the plan came from the cache, and ``fingerprint``
        (when known) is stamped on the profile and its span.  When a
        ``guard`` interrupts the run, the partial operator tree built so
        far is attached to the raised error as ``exc.partial`` before it
        propagates.
        """
        total_start = time.perf_counter()
        try:
            return self._run_plan_profiled(
                plan,
                plan_cached=plan_cached,
                guard=guard,
                total_start=total_start,
                fingerprint=fingerprint,
            )
        except QueryInterrupted as exc:
            seconds = time.perf_counter() - total_start
            root = OpProfile(
                op=plan.access.op,
                detail=f"{plan.access.describe()} [interrupted: {type(exc).__name__}]",
                rows_examined=exc.rows_examined,
                rows_returned=0,
                seconds=seconds,
            )
            exc.partial = QueryProfile(
                rows=[],
                root=root,
                plan_text=plan.explain(),
                seconds=seconds,
                plan_cached=plan_cached,
                fingerprint=fingerprint,
            )
            raise

    def _run_plan_profiled(
        self,
        plan: Plan,
        *,
        plan_cached: bool,
        guard: Guard | None,
        total_start: float,
        fingerprint: str | None = None,
    ) -> QueryProfile:
        with _tracing.span("query.execute", access=plan.access.op, profiled=True) as qspan:
            trace_id = _logging.current_trace_id()
            if trace_id is not None:
                qspan.set_attribute("trace_id", trace_id)
            if fingerprint is not None:
                qspan.set_attribute("fingerprint", fingerprint)
            if guard is not None:
                guard.check()
            start = time.perf_counter()
            cpu_start = time.thread_time_ns()
            # Pool pages are only touched while the access path streams
            # candidate records off the paged tree, so the attribution
            # scope need not cover the later (pure in-memory) stages.
            pstats = PageStats()
            with page_stats_scope(pstats):
                candidates = list(self._candidates(plan, guard))
            examined = len(self.store) if isinstance(plan.access, FullScan) else len(candidates)
            node = OpProfile(
                op=plan.access.op,
                detail=plan.access.describe(),
                rows_examined=examined,
                rows_returned=len(candidates),
                seconds=time.perf_counter() - start,
                cpu_ns=time.thread_time_ns() - cpu_start,
                bytes=_estimate_bytes(candidates, examined),
            )
            rows = candidates
            if plan.residual is not None:
                residual = plan.residual
                start = time.perf_counter()
                cpu_start = time.thread_time_ns()
                filtered = [r for r in rows if residual.evaluate(r)]
                node = OpProfile(
                    op="filter",
                    detail=str(residual),
                    rows_examined=len(rows),
                    rows_returned=len(filtered),
                    seconds=time.perf_counter() - start,
                    cpu_ns=time.thread_time_ns() - cpu_start,
                    bytes=_estimate_bytes(rows),
                    children=(node,),
                )
                rows = filtered
            if plan.group_by is not None:
                start = time.perf_counter()
                cpu_start = time.thread_time_ns()
                grouped = self._aggregate(iter(rows), plan.group_by)
                node = OpProfile(
                    op="aggregate",
                    detail=f"GROUP BY {plan.group_by} (COUNT)",
                    rows_examined=len(rows),
                    rows_returned=len(grouped),
                    seconds=time.perf_counter() - start,
                    cpu_ns=time.thread_time_ns() - cpu_start,
                    bytes=_estimate_bytes(rows),
                    children=(node,),
                )
                rows = grouped
            if plan.order_by is not None:
                self._check_order_field(plan)
                order_field = plan.order_by
                start = time.perf_counter()
                cpu_start = time.thread_time_ns()
                rows = sorted(
                    rows,
                    key=lambda r: _sort_key(r.get(order_field)),
                    reverse=plan.descending,
                )
                node = OpProfile(
                    op="sort",
                    detail=f"ORDER BY {order_field} {'DESC' if plan.descending else 'ASC'}",
                    rows_examined=len(rows),
                    rows_returned=len(rows),
                    seconds=time.perf_counter() - start,
                    cpu_ns=time.thread_time_ns() - cpu_start,
                    bytes=_estimate_bytes(rows),
                    children=(node,),
                )
            if plan.limit is not None:
                start = time.perf_counter()
                cpu_start = time.thread_time_ns()
                limited = rows[: plan.limit]
                node = OpProfile(
                    op="limit",
                    detail=f"LIMIT {plan.limit}",
                    rows_examined=len(rows),
                    rows_returned=len(limited),
                    seconds=time.perf_counter() - start,
                    cpu_ns=time.thread_time_ns() - cpu_start,
                    bytes=_estimate_bytes(limited),
                    children=(node,),
                )
                rows = limited
            _EXECUTIONS.inc()
            _PROFILED.inc()
            _ROWS_EXAMINED.inc(examined)  # base-table rows touched by the access path
            _ROWS_RETURNED.inc(len(rows))
            seconds = time.perf_counter() - total_start
            _QUERY_SECONDS.observe(seconds)
            qspan.set_attribute("rows", len(rows))
            if pstats.hits or pstats.misses:
                qspan.set_attribute("page_hits", pstats.hits)
                qspan.set_attribute("page_misses", pstats.misses)
            return QueryProfile(
                rows=rows,
                root=node,
                plan_text=plan.explain(),
                seconds=seconds,
                plan_cached=plan_cached,
                fingerprint=fingerprint,
                page_hits=pstats.hits,
                page_misses=pstats.misses,
            )

    def _check_order_field(self, plan: Plan) -> None:
        field = plan.order_by
        known = self.store.schema.has_field(field)
        if plan.group_by is not None:
            known = field in (plan.group_by, "count")
        if not known:
            raise QueryPlanError(f"cannot ORDER BY unknown field {field!r}")

    def _aggregate(
        self, rows: Iterator[dict[str, Any]], field: str
    ) -> list[dict[str, Any]]:
        """COUNT rows per distinct ``field`` value (list fields count each
        element); output rows are ``{field: value, "count": n}`` sorted by
        value for deterministic default order."""
        if not self.store.schema.has_field(field):
            raise QueryPlanError(f"cannot GROUP BY unknown field {field!r}")
        counts: dict[Any, int] = {}
        for row in rows:
            value = row.get(field)
            if value is None:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                counts[v] = counts.get(v, 0) + 1
        return [
            {field: value, "count": count}
            for value, count in sorted(counts.items(), key=lambda kv: _sort_key(kv[0]))
        ]

    # -- candidates from the access path ------------------------------------------

    @staticmethod
    def _ticked(
        rows: Iterator[dict[str, Any]], guard: Guard | None
    ) -> Iterator[dict[str, Any]]:
        """``rows`` with every record examined charged to ``guard``.

        Rows are charged in blocks of up to ``guard.stride``, clipped to
        the remaining row budget so a violation still reports
        ``used == limit + 1`` exactly, keeping the per-row cost of an
        armed guard to a few nanoseconds.
        """
        if guard is None:
            yield from rows
            return
        rows = iter(rows)
        stride = guard.stride
        while True:
            budget = guard.max_rows
            size = (
                stride
                if budget is None
                else min(stride, budget - guard.rows_examined + 1)
            )
            chunk = tuple(islice(rows, size if size > 0 else 1))
            if not chunk:
                return
            guard.tick(len(chunk))
            yield from chunk

    def _candidates(
        self, plan: Plan, guard: Guard | None = None
    ) -> Iterator[dict[str, Any]]:
        access = plan.access
        if isinstance(access, FullScan):
            # The store's scan loop charges every record examined
            # (predicate-filtered ones included) to the guard so huge
            # scans stay interruptible.
            yield from self.store.scan(guard=guard)
            return
        if isinstance(access, IndexLookup):
            yield from self._ticked(self.store.find_by(access.field, access.value), guard)
            return
        if isinstance(access, IndexMultiLookup):
            seen: set[Any] = set()
            for value in access.values:
                for record in self._ticked(
                    self.store.find_by(access.field, value), guard
                ):
                    key = self.store.schema.primary_key_of(record)
                    if key not in seen:
                        seen.add(key)
                        yield record
            return
        if isinstance(access, CompositeLookup):
            yield from self._ticked(
                self.store.find_by_composite(access.fields, access.values), guard
            )
            return
        if isinstance(access, CompositeRange):
            yield from self._ticked(
                self.store.range_by_composite(
                    access.fields,
                    access.prefix,
                    access.low,
                    access.high,
                    include_low=access.include_low,
                    include_high=access.include_high,
                ),
                guard,
            )
            return
        if isinstance(access, IndexRange):
            seen: set[Any] = set()
            for record in self._ticked(
                self.store.range_by(
                    access.field,
                    access.low,
                    access.high,
                    include_low=access.include_low,
                    include_high=access.include_high,
                ),
                guard,
            ):
                key = self.store.schema.primary_key_of(record)
                if key not in seen:
                    seen.add(key)
                    yield record
            return
        raise QueryPlanError(f"unknown access path {access!r}")  # pragma: no cover

    @staticmethod
    def _parse(query: str | Query) -> Query:
        if isinstance(query, Query):
            return query
        return parse_query(query)


def _sort_key(value: Any) -> tuple[int, Any]:
    """Total order over heterogeneous field values: None first, then by type."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, str(value))


# -- scatter-gather execution across a sharded store ------------------------

_SCATTER_COUNT = _metrics.counter("query.scatter.count")
_SCATTER_MERGE_SECONDS = _metrics.histogram("query.scatter.merge.seconds")
# Partial-mode scatters that actually returned a degraded (incomplete)
# result — the numerator of a "how often are we serving partial" SLO.
_SCATTER_PARTIAL = _metrics.counter("query.scatter.partial.count")


class PartialResult(list):
    """Rows from a partial-mode scatter, plus degradation metadata.

    A plain ``list`` subclass, so every caller that just iterates rows is
    unaffected; ``partial`` is ``True`` when at least one shard was
    skipped, and ``shards_failed`` names the skipped shard indexes.
    Strict-mode executions never return this type.
    """

    __slots__ = ("partial", "shards_failed")

    def __init__(
        self,
        rows: list[dict[str, Any]],
        *,
        partial: bool = False,
        shards_failed: tuple[int, ...] = (),
    ):
        super().__init__(rows)
        self.partial = partial
        self.shards_failed = shards_failed


class _SharedRowBudget:
    """One row budget shared by every shard worker of a scatter.

    The single-store guard enforces ``max_rows`` exactly; across
    concurrently scanning workers exactness would need a lock per row, so
    the shared ledger is charged in the same stride-sized blocks the
    workers already tick in — the budget still trips within one stride
    per worker of the limit, it just cannot promise ``used == limit + 1``.
    """

    __slots__ = ("max_rows", "rows", "_lock")

    def __init__(self, max_rows: int):
        self.max_rows = max_rows
        self.rows = 0
        self._lock = threading.Lock()

    def add(self, n: int) -> int:
        with self._lock:
            self.rows += n
            return self.rows


class _EitherCancelled:
    """Duck-typed :class:`CancelToken` view over caller + scatter tokens.

    A worker must stop when either the caller cancelled the query or a
    sibling worker failed (the scatter's internal abort); :class:`Guard`
    only reads ``.cancelled``, so a two-token view slots straight in.
    """

    __slots__ = ("_caller", "_abort")

    def __init__(self, caller: CancelToken | None, abort: CancelToken):
        self._caller = caller
        self._abort = abort

    @property
    def cancelled(self) -> bool:
        return (
            self._caller is not None and self._caller.cancelled
        ) or self._abort.cancelled


class _ShardGuard(Guard):
    """Per-worker guard charging a scatter-shared row budget.

    A :class:`Guard` is single-execution state and must not be shared
    across threads, but its deadline and cancellation *inputs* are
    thread-safe — so every worker gets its own guard wired to the shared
    :class:`Deadline` / cancel tokens, and the row budget moves to a
    locked :class:`_SharedRowBudget` so all workers draw from one limit.
    """

    __slots__ = ("_ledger",)

    def __init__(
        self,
        *,
        deadline: Deadline | None,
        cancel: "_EitherCancelled | CancelToken | None",
        ledger: _SharedRowBudget | None,
        stride: int,
    ):
        super().__init__(deadline=deadline, cancel=cancel, stride=stride)  # type: ignore[arg-type]
        self._ledger = ledger

    def tick(self, rows: int = 1) -> None:
        self.rows_examined += rows
        ledger = self._ledger
        if ledger is not None:
            total = ledger.add(rows)
            if total > ledger.max_rows:
                self._raise_budget("rows", ledger.max_rows, total)
        self._until_check -= rows
        if self._until_check <= 0:
            self._until_check = self.stride
            self.check()


@dataclass(slots=True)
class PartialAggregate:
    """Mergeable aggregate state over one numeric field.

    Carries the classic decomposable set — count, sum, min, max — from
    which avg derives as ``sum / count``, so per-shard partials combine
    into exactly the whole-corpus aggregate (for ints bit-for-bit; float
    sums can differ in the last ulp across groupings, as any
    order-changing summation does).
    """

    count: int = 0
    total: Any = 0
    minimum: Any = None
    maximum: Any = None

    def add(self, value: Any) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "PartialAggregate") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if self.minimum is None or other.minimum < self.minimum:
            self.minimum = other.minimum
        if self.maximum is None or other.maximum > self.maximum:
            self.maximum = other.maximum

    def finalize(self) -> dict[str, Any]:
        """The aggregate row: count/sum/min/max/avg (None-valued on empty)."""
        if self.count == 0:
            return {"count": 0, "sum": 0, "min": None, "max": None, "avg": None}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "avg": self.total / self.count,
        }


class ShardedQueryEngine:
    """Scatter-gather query execution over a :class:`ShardedStore`.

    Planning happens once, at the facade: the sharded store exposes the
    same index metadata surface as a single store (epochs, kinds,
    summed statistics), so the ordinary planner — and this engine's
    :class:`PlanCache` — work unchanged.  The chosen plan is then split by
    :func:`~repro.query.planner.plan_scatter`: every shard runs the access
    path + residual against its own partition on a worker thread, and the
    gather phase reassembles the output:

    * **sorted scans** — shards return runs pre-sorted by
      ``(ORDER BY value, primary key)`` and the gather k-way-merges them
      lazily (:func:`heapq.merge`), stopping at LIMIT.  The primary-key
      tiebreak totalizes the order, so the result is identical for any
      shard count.  (It can differ from a *plain* :class:`QueryEngine` on
      duplicate sort keys only: the plain engine's stable sort keeps
      insertion order among ties where this engine uses primary-key
      order.)
    * **aggregates** — shards return partial per-value counts; the gather
      sums and formats them exactly like
      :meth:`QueryEngine._aggregate`, so GROUP BY output is byte-identical
      to single-store execution.
    * **LIMIT pushdown** — without aggregation each shard produces at most
      LIMIT rows (bounded top-k heap when sorted, early-exit scan when
      not) and the merged stream is trimmed again.  As in SQL, a query
      *without* ORDER BY returns its matches in unspecified order (here:
      shard-major), and LIMIT without ORDER BY picks an unspecified
      subset — both depend on the shard count.  Sorted scans and
      aggregates are the deterministic surfaces.

    Deadlines, cancellation, and row budgets span the whole scatter: the
    caller's :class:`Deadline` / :class:`CancelToken` are shared by every
    worker directly (both are thread-safe), while the row budget moves
    into a locked ledger all workers draw down together.  The first
    failing worker aborts its siblings through an internal cancel token;
    the first *root-cause* error (anything but the induced cancellation)
    is what propagates, with ``rows_examined`` summed across workers.

    Reads only — run ingest and queries from different phases, exactly as
    with a single :class:`RecordStore`.

    Observability: every execution runs under one trace ID that the
    shard workers adopt — the scatter emits a ``query.scatter`` root
    span with one ``query.shard`` child per shard (``shard`` / ``rows``
    / ``seconds`` attributes), worker log lines carry the caller's trace
    ID, and a slow execution lands one slow-log entry covering the whole
    fan-out.  ``execute(..., profile=True)`` returns a
    :class:`QueryProfile` whose root ``scatter`` node has one ``shard``
    child per shard (rows, per-shard wall time, buffer-pool page
    hits/misses attributed through
    :func:`~repro.storage.bufferpool.page_stats_scope`).
    """

    def __init__(
        self,
        store: "ShardedStore",
        *,
        plan_cache_size: int = 256,
        slow_log: SlowQueryLog | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.store = store
        self.plan_cache = PlanCache(maxsize=plan_cache_size)
        self.slow_log = slow_log
        #: Bounded per-shard retry used by partial mode before a failing
        #: shard is given up on (transient faults recover in place; a
        #: persistent fault costs max_attempts tries, then the shard is
        #: skipped).  Strict mode never retries — its semantics are
        #: byte-for-byte the pre-partial behaviour.
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=2)
        self._engines = tuple(QueryEngine(shard) for shard in store.shards)
        self._engines_for = store.shards  # tuple identity watched for reopens
        self._pool: ThreadPoolExecutor | None = None
        self._shard_rows = tuple(
            _metrics.counter("query.scatter.shard.rows", shard=str(i))
            for i in range(store.shard_count)
        )
        self._shard_skipped = tuple(
            _metrics.counter("query.scatter.shard.skipped", shard=str(i))
            for i in range(store.shard_count)
        )
        self._bytes_per_row = 0.0

    def _refresh_engines(self) -> None:
        """Rebuild per-shard engines for shards the store swapped out
        (``ShardedStore.reopen_shard`` after a repair).  Identity check
        only — the no-change case costs one ``is``."""
        shards = self.store.shards
        if shards is self._engines_for:
            return
        engines = list(self._engines)
        for i, shard in enumerate(shards):
            if engines[i].store is not shard:
                engines[i] = QueryEngine(shard)
        self._engines = tuple(engines)
        self._engines_for = shards

    # -- public API --------------------------------------------------------

    def execute(
        self,
        query: str | Query,
        *,
        profile: bool = False,
        guard: Guard | None = None,
        timeout_s: float | None = None,
        cancel: CancelToken | None = None,
        max_rows: int | None = None,
        partial: bool = False,
    ) -> list[dict[str, Any]] | QueryProfile:
        """Run ``query`` across all shards and return the merged records.

        With ``profile=True``, returns a :class:`QueryProfile` instead:
        the merged rows plus a two-level operator tree — a ``scatter``
        root with one ``shard`` child per shard carrying that worker's
        rows, wall time, and buffer-pool page hits/misses.

        Bounds work as on :meth:`QueryEngine.execute` — pass a pre-built
        :class:`Guard` or the convenience knobs — except that the bound
        covers the *whole scatter*: the deadline and cancel token are
        shared by every shard worker, and ``max_rows`` limits the total
        rows examined across all shards (enforced at stride granularity;
        see :class:`_SharedRowBudget`).

        ``partial=True`` opts into graceful degradation: quarantined
        shards are skipped up front, a shard whose worker fails is
        retried (bounded, via the engine's :class:`RetryPolicy`) and
        then skipped instead of failing the whole query, and the rows
        come back as a :class:`PartialResult` whose ``partial`` /
        ``shards_failed`` attributes say exactly what is missing (the
        profile carries the same fields).  Interruptions — deadline,
        cancellation, row budget — still raise: they bound the *caller's*
        resources, not a shard's health.  The default (strict) mode is
        all-or-nothing: a worker failure propagates, and a quarantined
        shard raises :class:`~repro.errors.ShardUnavailableError` up
        front — its bytes cannot be trusted, so strict refuses to read
        around (or from) it.
        """
        if guard is None and (
            timeout_s is not None or cancel is not None or max_rows is not None
        ):
            guard = Guard(
                deadline=Deadline.after(timeout_s) if timeout_s is not None else None,
                cancel=cancel,
                max_rows=max_rows,
            )
        try:
            return self._execute(
                query, profile=profile, guard=guard, partial=partial
            )
        except Exception:
            _FAILURES.inc()
            raise

    def execute_partial(
        self, query: str | Query, **kwargs: Any
    ) -> PartialResult | QueryProfile:
        """:meth:`execute` with ``partial=True`` (convenience alias)."""
        return self.execute(query, partial=True, **kwargs)  # type: ignore[return-value]

    def _execute(
        self,
        query: str | Query,
        *,
        profile: bool,
        guard: Guard | None,
        partial: bool = False,
    ) -> list[dict[str, Any]] | QueryProfile:
        with _logging.trace() as trace_id:
            parsed = self._parse(query)
            plan, fp, template, cached = self.plan_cache.get_or_plan_fingerprinted(
                parsed, self.store  # type: ignore[arg-type]
            )
            splan = plan_scatter(plan)
            self._check_clause_fields(splan)
            if not _WORKLOAD_TABLE.enabled:
                fp = None
            query_text = query if isinstance(query, str) else str(query)
            start = time.perf_counter()
            with _tracing.span(
                "query.scatter",
                access=plan.access.op,
                shards=self.store.shard_count,
            ) as sspan:
                sspan.set_attribute("trace_id", trace_id)
                try:
                    out, examined, metas, shards_failed = self._run_scatter(
                        splan, guard, partial=partial
                    )
                except QueryInterrupted as exc:
                    if fp is not None:
                        _RECORD_PACKED((
                            fp, template, 0, exc.rows_examined, -1,
                            time.perf_counter() - start,
                            0, cached, _interruption_kind(exc), False, None,
                        ))
                    raise
                seconds = time.perf_counter() - start
                sspan.set_attribute("rows", len(out))
                if shards_failed:
                    sspan.set_attribute("shards_failed", list(shards_failed))
            if partial:
                out = PartialResult(
                    out,
                    partial=bool(shards_failed),
                    shards_failed=shards_failed,
                )
                if shards_failed:
                    _SCATTER_PARTIAL.inc()
            _QUERY_SECONDS.observe(seconds)
            if fp is not None:
                # Worker CPU burns on pool threads, invisible to this
                # thread's CPU clock — record the execution unsampled
                # (cpu_ns = -1) rather than attribute only merge cost.
                _RECORD_PACKED((
                    fp, template, len(out), examined, -1, seconds,
                    _estimate_bytes(out, examined), cached,
                ))
            result: QueryProfile | None = None
            if profile:
                _PROFILED.inc()
                result = self._scatter_profile(
                    splan, out, examined, metas, seconds, cached, fp,
                    shards_failed=shards_failed if partial else (),
                )
            if _logging.would_log("debug"):
                _logging.debug(
                    "query.scatter.execute",
                    query=query_text,
                    access=plan.access.op,
                    shards=self.store.shard_count,
                    plan_cached=cached,
                    fingerprint=fp,
                    rows=len(out),
                    seconds=round(seconds, 6),
                    partial=bool(shards_failed),
                )
            self._maybe_slow_log(
                query_text, splan, cached, len(out), seconds, result, trace_id, fp
            )
            return result if result is not None else out

    def _scatter_profile(
        self,
        splan: ScatterPlan,
        out: list[dict[str, Any]],
        examined: int,
        metas: list[dict[str, Any] | None],
        seconds: float,
        plan_cached: bool,
        fingerprint: str | None,
        shards_failed: tuple[int, ...] = (),
    ) -> QueryProfile:
        """Assemble the EXPLAIN ANALYZE tree of one scatter execution."""
        children: list[OpProfile] = []
        hits = misses = 0
        for idx in shards_failed:
            children.append(
                OpProfile(
                    op="shard",
                    detail=f"shard {idx}  SKIPPED (failed or quarantined)",
                    rows_examined=0,
                    rows_returned=0,
                    seconds=0.0,
                )
            )
        for meta in metas:
            if meta is None:
                continue
            hits += meta["page_hits"]
            misses += meta["page_misses"]
            children.append(
                OpProfile(
                    op="shard",
                    detail=(
                        f"shard {meta['shard']}  pages "
                        f"hit={meta['page_hits']} miss={meta['page_misses']}"
                    ),
                    rows_examined=meta["examined"],
                    rows_returned=meta["rows"],
                    seconds=meta["seconds"],
                )
            )
        root = OpProfile(
            op="scatter",
            detail=(
                f"{splan.shard_plan.access.describe()} "
                f"over {self.store.shard_count} shards"
            ),
            rows_examined=examined,
            rows_returned=len(out),
            seconds=seconds,
            children=tuple(children),
        )
        return QueryProfile(
            rows=out,
            root=root,
            plan_text=splan.explain(),
            seconds=seconds,
            plan_cached=plan_cached,
            fingerprint=fingerprint,
            page_hits=hits,
            page_misses=misses,
            partial=bool(shards_failed),
            shards_failed=shards_failed,
        )

    def _maybe_slow_log(
        self,
        query_text: str,
        splan: ScatterPlan,
        plan_cached: bool,
        rows: int,
        seconds: float,
        profile: QueryProfile | None,
        trace_id: str,
        fingerprint: str | None,
    ) -> None:
        """One slow-log entry for the whole fan-out (no profiled re-run:
        re-scattering would double every shard's work — the per-shard
        spans already attribute the time)."""
        slow = self.slow_log
        if slow is None or seconds < slow.threshold_s:
            return
        slow.record(
            query=query_text,
            plan=splan.explain(),
            plan_cached=plan_cached,
            rows=rows,
            seconds=seconds,
            profile=profile,
            reexecuted=False,
            trace_id=trace_id,
            fingerprint=fingerprint,
        )

    def explain(self, query: str | Query) -> str:
        """The scatter plan :meth:`execute` would use, as text."""
        parsed = self._parse(query)
        plan, _, _, _ = self.plan_cache.get_or_plan_fingerprinted(
            parsed, self.store  # type: ignore[arg-type]
        )
        return plan_scatter(plan).explain()

    def count(self, query: str | Query) -> int:
        """Number of records matching ``query`` (clauses beyond the filter
        are rejected, as on :meth:`QueryEngine.count`)."""
        parsed = self._parse(query)
        if parsed.group_by or parsed.order_by or parsed.limit is not None:
            raise QueryPlanError(
                "COUNT accepts a bare filter (no GROUP BY/ORDER BY/LIMIT)"
            )
        return len(self.execute(parsed))

    def aggregate(
        self,
        query: str | Query,
        field: str,
        *,
        guard: Guard | None = None,
    ) -> dict[str, Any]:
        """Scatter-gather numeric aggregate of ``field`` over the filter.

        Each shard folds its matching records into a
        :class:`PartialAggregate`; the partials merge into one row of
        ``{"count", "sum", "min", "max", "avg"}`` over the non-None
        values.  ``query`` must be a bare filter — GROUP BY COUNT goes
        through :meth:`execute`; this is the programmatic surface for the
        remaining decomposable aggregates.
        """
        parsed = self._parse(query)
        if parsed.group_by or parsed.order_by or parsed.limit is not None:
            raise QueryPlanError(
                "aggregate() accepts a bare filter (no GROUP BY/ORDER BY/LIMIT)"
            )
        schema = self.store.schema
        if not schema.has_field(field):
            raise QueryPlanError(f"cannot aggregate unknown field {field!r}")
        kind = schema.field(field).type.value
        if kind not in ("int", "float"):
            raise QueryPlanError(
                f"aggregate needs a numeric field; {field!r} is {kind}"
            )
        plan, _, _, _ = self.plan_cache.get_or_plan_fingerprinted(
            parsed, self.store  # type: ignore[arg-type]
        )
        splan = plan_scatter(plan)

        def fold(rows: Iterator[dict[str, Any]]) -> PartialAggregate:
            partial = PartialAggregate()
            add = partial.add
            for row in rows:
                value = row.get(field)
                if value is not None:
                    add(value)
            return partial

        partials, _, _, _ = self._scatter(splan, guard, fold)
        merged = PartialAggregate()
        for partial in partials:
            merged.merge(partial)
        _EXECUTIONS.inc()
        _SCATTER_COUNT.inc()
        return merged.finalize()

    def close(self) -> None:
        """Shut down the worker pool (idempotent; shards stay open)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- scatter/gather internals ------------------------------------------

    @staticmethod
    def _parse(query: str | Query) -> Query:
        if isinstance(query, Query):
            return query
        return parse_query(query)

    def _check_clause_fields(self, splan: ScatterPlan) -> None:
        schema = self.store.schema
        if splan.group_by is not None and not schema.has_field(splan.group_by):
            raise QueryPlanError(f"cannot GROUP BY unknown field {splan.group_by!r}")
        if splan.order_by is not None:
            known = schema.has_field(splan.order_by)
            if splan.group_by is not None:
                known = splan.order_by in (splan.group_by, "count")
            if not known:
                raise QueryPlanError(
                    f"cannot ORDER BY unknown field {splan.order_by!r}"
                )

    def _run_scatter(
        self, splan: ScatterPlan, guard: Guard | None, *, partial: bool = False
    ) -> tuple[
        list[dict[str, Any]], int, list[dict[str, Any] | None], tuple[int, ...]
    ]:
        """Execute the scatter plan; returns (rows, rows_examined,
        per-shard metadata in shard order, failed shard indexes)."""
        if splan.group_by is not None:
            worker = self._fold_counts(splan.group_by)
        elif splan.order_by is not None:
            worker = self._fold_sorted(splan)
        else:
            worker = self._fold_plain(splan)
        parts, examined, metas, failed = self._scatter(
            splan, guard, worker, partial=partial
        )

        merge_start = time.perf_counter()
        if splan.group_by is not None:
            out = self._gather_counts(splan, parts)
        elif splan.order_by is not None:
            out = self._gather_sorted(splan, parts)
        else:
            out = self._gather_plain(splan, parts)
        _SCATTER_MERGE_SECONDS.observe(time.perf_counter() - merge_start)
        for meta in metas:
            if meta is not None:
                self._shard_rows[meta["shard"]].inc(meta["rows"])
        _EXECUTIONS.inc()
        _SCATTER_COUNT.inc()
        _ROWS_RETURNED.inc(len(out))
        return out, examined, metas, failed

    def _scatter(
        self,
        splan: ScatterPlan,
        guard: Guard | None,
        fold: Any,
        *,
        partial: bool = False,
    ) -> tuple[list[Any], int, list[dict[str, Any] | None], tuple[int, ...]]:
        """Run ``fold`` over every shard's candidate rows, in parallel.

        ``fold(rows_iterator) -> part`` consumes one shard's
        residual-filtered candidates; the per-shard parts come back in
        shard order.  Returns ``(parts, total_rows_examined, metas,
        failed)`` where ``metas[i]`` describes shard ``i``'s work (rows,
        wall time, buffer-pool page touches) — ``None`` for a worker
        that failed — and ``failed`` is the tuple of skipped shard
        indexes (always empty in strict mode, which raises instead).
        Workers adopt the caller's trace context, so their
        ``query.shard`` spans nest under the ``query.scatter`` root and
        their log lines carry the same trace ID.

        In partial mode a quarantined shard is skipped without being
        touched, a shard whose worker raises gets a bounded retry (the
        engine's :class:`RetryPolicy` — only transient faults actually
        re-run) and is then skipped, and sibling workers are *not*
        aborted by a skippable failure.  Interruptions (deadline /
        cancel / budget) abort the scatter in both modes.
        """
        self._refresh_engines()
        if guard is not None:
            guard.check()  # fail fast before spawning workers
        abort = CancelToken()
        worker_guards: list[Guard | None]
        if guard is None:
            worker_guards = [None] * self.store.shard_count
        else:
            ledger = (
                _SharedRowBudget(guard.max_rows)
                if guard.max_rows is not None
                else None
            )
            cancel = _EitherCancelled(guard.cancel, abort)
            worker_guards = [
                _ShardGuard(
                    deadline=guard.deadline,
                    cancel=cancel,
                    ledger=ledger,
                    stride=guard.stride,
                )
                for _ in range(self.store.shard_count)
            ]

        ctx = _tracing.TraceContext.capture()
        metas: list[dict[str, Any] | None] = [None] * self.store.shard_count
        health = getattr(self.store, "health", None)
        failed: dict[int, BaseException] = {}
        failed_lock = threading.Lock()
        skipped = object()  # sentinel part for a shard given up on

        def attempt(idx: int) -> Any:
            engine = self._engines[idx]
            wguard = worker_guards[idx]
            stats = PageStats()
            shard_start = time.perf_counter()
            with page_stats_scope(stats):
                rows = engine._candidates(splan.shard_plan, wguard)
                residual = splan.shard_plan.residual
                if residual is not None:
                    rows = (r for r in rows if residual.evaluate(r))
                part = fold(rows)
            elapsed = time.perf_counter() - shard_start
            n = part.count if isinstance(part, PartialAggregate) else len(part)
            if wguard is not None:
                shard_examined = wguard.rows_examined
            elif isinstance(splan.shard_plan.access, FullScan):
                shard_examined = len(self.store.shards[idx])
            else:
                shard_examined = n
            metas[idx] = {
                "shard": idx,
                "rows": n,
                "seconds": elapsed,
                "examined": shard_examined,
                "page_hits": stats.hits,
                "page_misses": stats.misses,
            }
            return part

        def run_shard(idx: int) -> Any:
            with ctx.attach(), _tracing.span("query.shard", shard=idx) as sspan:
                try:
                    if partial:
                        part = self.retry.call(
                            lambda: attempt(idx), describe=f"query.shard{idx}"
                        )
                    else:
                        part = attempt(idx)
                except QueryInterrupted:
                    # The caller's bound tripped (or a sibling's abort
                    # propagated) — not a shard fault, in either mode.
                    abort.cancel()
                    raise
                except BaseException as exc:
                    if health is not None:
                        health.record_error(idx, exc, source="query")
                    if not partial:
                        abort.cancel()  # stop the sibling workers promptly
                        raise
                    with failed_lock:
                        failed[idx] = exc
                    self._shard_skipped[idx].inc()
                    sspan.set_attribute("skipped", True)
                    _logging.warn(
                        "query.scatter.shard_skipped",
                        shard=idx,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    return skipped
                if health is not None:
                    health.record_success(idx)
                meta = metas[idx]
                if meta is not None:
                    sspan.set_attribute("rows", meta["rows"])
                    sspan.set_attribute("seconds", round(meta["seconds"], 6))
                return part

        count = self.store.shard_count
        indexes = list(range(count))
        if health is not None:
            for idx in list(indexes):
                if not health.is_serving(idx):
                    if not partial:
                        # Strict queries must not read a shard pulled
                        # out of service — a corruption quarantine means
                        # its bytes cannot be trusted.  Fail fast with
                        # the typed error instead of fanning out.
                        raise ShardUnavailableError(
                            idx, health.state(idx), health.reason(idx)
                        )
                    indexes.remove(idx)
                    failed[idx] = ShardUnavailableError(
                        idx, health.state(idx), health.reason(idx)
                    )
                    self._shard_skipped[idx].inc()
        if len(indexes) == 1:
            parts = [run_shard(indexes[0])]
        else:
            pool = self._pool
            if pool is None:
                pool = self._pool = ThreadPoolExecutor(
                    max_workers=count, thread_name_prefix="repro-scatter"
                )
            futures: list[Future] = [pool.submit(run_shard, i) for i in indexes]
            parts = []
            errors: list[BaseException] = []
            for future in futures:
                try:
                    parts.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
            if errors:
                self._raise_first(errors, worker_guards)
        parts = [part for part in parts if part is not skipped]

        if failed and worker_guards[0] is None:
            # A skipped shard's rows cannot be counted as examined — sum
            # what the surviving workers actually reported instead of
            # the whole-store estimate.
            examined = sum(m["examined"] for m in metas if m is not None)
        else:
            examined = self._examined(splan, parts, worker_guards)
        if guard is not None:
            # Fold the workers' progress back into the caller's guard so
            # its stats()/partial-progress reporting covers the scatter.
            guard.rows_examined += examined
        return parts, examined, metas, tuple(sorted(failed))

    def _examined(
        self,
        splan: ScatterPlan,
        parts: list[Any],
        worker_guards: list[Guard | None],
    ) -> int:
        if worker_guards[0] is not None:
            return sum(g.rows_examined for g in worker_guards if g is not None)
        if isinstance(splan.shard_plan.access, FullScan):
            return len(self.store)
        return sum(
            part.count if isinstance(part, PartialAggregate) else len(part)
            for part in parts
        )

    def _raise_first(
        self, errors: list[BaseException], worker_guards: list[Guard | None]
    ) -> None:
        """Propagate the scatter's root cause.

        Workers stopped by the internal abort token unwind with
        :class:`QueryCancelled` — secondary noise when a sibling hit the
        real limit — so any other error (in shard order) wins; a
        cancellation propagates only when it is all there is (i.e. the
        caller really cancelled).  Interrupted errors report the rows
        examined by the *whole* scatter, not one worker.
        """
        total = sum(g.rows_examined for g in worker_guards if g is not None)
        chosen = next(
            (e for e in errors if not isinstance(e, QueryCancelled)), errors[0]
        )
        if isinstance(chosen, QueryInterrupted):
            chosen.rows_examined = total
        raise chosen

    # -- per-shard folds ----------------------------------------------------

    def _fold_counts(self, field: str) -> Any:
        def fold(rows: Iterator[dict[str, Any]]) -> dict[Any, int]:
            counts: dict[Any, int] = {}
            for row in rows:
                value = row.get(field)
                if value is None:
                    continue
                values = value if isinstance(value, list) else [value]
                for v in values:
                    counts[v] = counts.get(v, 0) + 1
            return counts

        return fold

    def _fold_sorted(self, splan: ScatterPlan) -> Any:
        field = splan.order_by
        pk = self.store.schema.primary_key

        def sort_key(record: dict[str, Any]) -> tuple:
            return (_sort_key(record.get(field)), _sort_key(record.get(pk)))

        limit = splan.shard_limit

        def fold(rows: Iterator[dict[str, Any]]) -> list[dict[str, Any]]:
            if limit is not None:
                top = heapq.nlargest if splan.descending else heapq.nsmallest
                return top(limit, rows, key=sort_key)
            return sorted(rows, key=sort_key, reverse=splan.descending)

        return fold

    def _fold_plain(self, splan: ScatterPlan) -> Any:
        limit = splan.shard_limit

        def fold(rows: Iterator[dict[str, Any]]) -> list[dict[str, Any]]:
            if limit is not None:
                return list(islice(rows, limit))
            return list(rows)

        return fold

    # -- gather merges ------------------------------------------------------

    def _gather_counts(
        self, splan: ScatterPlan, parts: list[dict[Any, int]]
    ) -> list[dict[str, Any]]:
        field = splan.group_by
        totals: dict[Any, int] = {}
        for part in parts:
            for value, count in part.items():
                totals[value] = totals.get(value, 0) + count
        # Format exactly as QueryEngine._aggregate: value-sorted rows.
        out = [
            {field: value, "count": count}
            for value, count in sorted(totals.items(), key=lambda kv: _sort_key(kv[0]))
        ]
        if splan.order_by is not None:
            order_field = splan.order_by
            out.sort(
                key=lambda r: _sort_key(r.get(order_field)),
                reverse=splan.descending,
            )
        if splan.limit is not None:
            out = out[: splan.limit]
        return out

    def _gather_sorted(
        self, splan: ScatterPlan, parts: list[list[dict[str, Any]]]
    ) -> list[dict[str, Any]]:
        field = splan.order_by
        pk = self.store.schema.primary_key

        def sort_key(record: dict[str, Any]) -> tuple:
            return (_sort_key(record.get(field)), _sort_key(record.get(pk)))

        merged: Iterator[dict[str, Any]] = heapq.merge(
            *parts, key=sort_key, reverse=splan.descending
        )
        if splan.limit is not None:
            return list(islice(merged, splan.limit))
        return list(merged)

    def _gather_plain(
        self, splan: ScatterPlan, parts: list[list[dict[str, Any]]]
    ) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        for part in parts:
            out.extend(part)
        if splan.limit is not None:
            out = out[: splan.limit]
        return out

"""Query executor: run planned queries against a record store.

The executor is deliberately small: the access path yields candidate
records, the residual expression filters them, and ORDER BY / LIMIT shape
the output.  Records coming from list-field index probes are de-duplicated
by primary key (a list may contain the probe value twice).

:class:`QueryEngine` is the public entry point::

    engine = QueryEngine(store)
    rows = engine.execute('author:"McAteer" AND year >= 1978')
    print(engine.explain('year >= 1978'))
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import QueryPlanError
from repro.query.ast_nodes import Query
from repro.query.parser import parse_query
from repro.query.planner import (
    CompositeLookup,
    CompositeRange,
    FullScan,
    IndexLookup,
    IndexMultiLookup,
    IndexRange,
    Plan,
    plan_query,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.store import RecordStore


@dataclass(frozen=True, slots=True)
class Page:
    """One page of a cursor-paginated result."""

    rows: list[dict[str, Any]]
    next_cursor: str | None  #: None when this is the last page

    @property
    def has_more(self) -> bool:
        return self.next_cursor is not None


def _encode_cursor(sort_value: Any, primary_key: Any) -> str:
    payload = json.dumps([sort_value, primary_key], separators=(",", ":"))
    return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii")


def _decode_cursor(cursor: str) -> tuple[Any, Any]:
    try:
        payload = json.loads(base64.urlsafe_b64decode(cursor.encode("ascii")))
        sort_value, primary_key = payload
    except Exception as exc:
        raise QueryPlanError(f"malformed cursor: {exc}") from exc
    return sort_value, primary_key


class QueryEngine:
    """Plans and executes query strings (or pre-parsed :class:`Query`)."""

    def __init__(self, store: "RecordStore"):
        self.store = store

    # -- public API ---------------------------------------------------------

    def execute(self, query: str | Query) -> list[dict[str, Any]]:
        """Run ``query`` and return the matching records."""
        parsed = self._parse(query)
        plan = plan_query(parsed, self.store)
        return self.run_plan(plan)

    def explain(self, query: str | Query) -> str:
        """The plan that :meth:`execute` would use, as text."""
        parsed = self._parse(query)
        return plan_query(parsed, self.store).explain()

    def execute_without_indexes(self, query: str | Query) -> list[dict[str, Any]]:
        """Run ``query`` as a pure scan (the E3 baseline and test oracle)."""
        parsed = self._parse(query)
        plan = Plan(
            access=FullScan(),
            residual=parsed.where,
            order_by=parsed.order_by,
            descending=parsed.descending,
            limit=parsed.limit,
        )
        return self.run_plan(plan)

    # -- plan execution --------------------------------------------------------

    def count(self, query: str | Query) -> int:
        """Number of records matching ``query`` (ignores GROUP BY/LIMIT)."""
        parsed = self._parse(query)
        plan = plan_query(
            Query(where=parsed.where), self.store
        )
        total = 0
        rows: Any = self._candidates(plan)
        if plan.residual is not None:
            rows = (r for r in rows if plan.residual.evaluate(r))
        for _ in rows:
            total += 1
        return total

    def execute_paged(
        self, query: str | Query, *, page_size: int, cursor: str | None = None
    ) -> Page:
        """Run ``query`` returning one stable page at a time.

        Rows are ordered by the query's ORDER BY (primary key as the
        implicit fallback and as the tiebreak), and the returned cursor
        names the last row seen — so pages stay consistent even if rows
        are inserted or deleted between calls (no offset drift; a row is
        never skipped or repeated unless it itself changed).  GROUP BY and
        LIMIT are rejected: pagination owns the output shape.
        """
        if page_size <= 0:
            raise QueryPlanError(f"page_size must be positive, got {page_size}")
        parsed = self._parse(query)
        if parsed.group_by is not None or parsed.limit is not None:
            raise QueryPlanError("paged queries must not use GROUP BY or LIMIT")

        pk_field = self.store.schema.primary_key
        order_field = parsed.order_by or pk_field
        if not self.store.schema.has_field(order_field):
            raise QueryPlanError(f"cannot ORDER BY unknown field {order_field!r}")
        plan = plan_query(
            Query(where=parsed.where), self.store
        )
        rows: Any = self._candidates(plan)
        if plan.residual is not None:
            rows = (r for r in rows if plan.residual.evaluate(r))

        def row_key(record: dict[str, Any]) -> tuple:
            return (
                _sort_key(record.get(order_field)),
                _sort_key(record.get(pk_field)),
            )

        ordered = sorted(rows, key=row_key, reverse=parsed.descending)
        start = 0
        if cursor is not None:
            after_value, after_pk = _decode_cursor(cursor)
            after_key = (_sort_key(after_value), _sort_key(after_pk))
            for start, record in enumerate(ordered):
                this_key = row_key(record)
                if (this_key > after_key) != parsed.descending and this_key != after_key:
                    break
            else:
                start = len(ordered)
        page_rows = ordered[start : start + page_size]
        next_cursor = None
        if start + page_size < len(ordered) and page_rows:
            last = page_rows[-1]
            next_cursor = _encode_cursor(last.get(order_field), last.get(pk_field))
        return Page(rows=page_rows, next_cursor=next_cursor)

    def delete(self, query: str | Query) -> int:
        """Atomically delete every record matching ``query``'s filter.

        GROUP BY / ORDER BY / LIMIT clauses are rejected — a destructive
        operation must not depend on presentation clauses.
        """
        parsed = self._parse(query)
        if parsed.group_by or parsed.order_by or parsed.limit is not None:
            raise QueryPlanError(
                "DELETE accepts a bare filter (no GROUP BY/ORDER BY/LIMIT)"
            )
        return self.store.delete_where(parsed.matches)

    def run_plan(self, plan: Plan) -> list[dict[str, Any]]:
        """Execute a :class:`Plan` produced by the planner."""
        rows = self._candidates(plan)
        if plan.residual is not None:
            residual = plan.residual
            rows = (r for r in rows if residual.evaluate(r))
        if plan.group_by is not None:
            rows = iter(self._aggregate(rows, plan.group_by))
        if plan.order_by is not None:
            field = plan.order_by
            known = self.store.schema.has_field(field)
            if plan.group_by is not None:
                known = field in (plan.group_by, "count")
            if not known:
                raise QueryPlanError(f"cannot ORDER BY unknown field {field!r}")
            materialized = sorted(
                rows,
                key=lambda r: _sort_key(r.get(field)),
                reverse=plan.descending,
            )
            rows = iter(materialized)
        if plan.limit is not None:
            limited: list[dict[str, Any]] = []
            for record in rows:
                if len(limited) == plan.limit:
                    break
                limited.append(record)
            return limited
        return list(rows)

    def _aggregate(
        self, rows: Iterator[dict[str, Any]], field: str
    ) -> list[dict[str, Any]]:
        """COUNT rows per distinct ``field`` value (list fields count each
        element); output rows are ``{field: value, "count": n}`` sorted by
        value for deterministic default order."""
        if not self.store.schema.has_field(field):
            raise QueryPlanError(f"cannot GROUP BY unknown field {field!r}")
        counts: dict[Any, int] = {}
        for row in rows:
            value = row.get(field)
            if value is None:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                counts[v] = counts.get(v, 0) + 1
        return [
            {field: value, "count": count}
            for value, count in sorted(counts.items(), key=lambda kv: _sort_key(kv[0]))
        ]

    # -- candidates from the access path ------------------------------------------

    def _candidates(self, plan: Plan) -> Iterator[dict[str, Any]]:
        access = plan.access
        if isinstance(access, FullScan):
            yield from self.store.scan()
            return
        if isinstance(access, IndexLookup):
            yield from self.store.find_by(access.field, access.value)
            return
        if isinstance(access, IndexMultiLookup):
            seen: set[Any] = set()
            for value in access.values:
                for record in self.store.find_by(access.field, value):
                    key = self.store.schema.primary_key_of(record)
                    if key not in seen:
                        seen.add(key)
                        yield record
            return
        if isinstance(access, CompositeLookup):
            yield from self.store.find_by_composite(access.fields, access.values)
            return
        if isinstance(access, CompositeRange):
            yield from self.store.range_by_composite(
                access.fields,
                access.prefix,
                access.low,
                access.high,
                include_low=access.include_low,
                include_high=access.include_high,
            )
            return
        if isinstance(access, IndexRange):
            seen: set[Any] = set()
            for record in self.store.range_by(
                access.field,
                access.low,
                access.high,
                include_low=access.include_low,
                include_high=access.include_high,
            ):
                key = self.store.schema.primary_key_of(record)
                if key not in seen:
                    seen.add(key)
                    yield record
            return
        raise QueryPlanError(f"unknown access path {access!r}")  # pragma: no cover

    @staticmethod
    def _parse(query: str | Query) -> Query:
        if isinstance(query, Query):
            return query
        return parse_query(query)


def _sort_key(value: Any) -> tuple[int, Any]:
    """Total order over heterogeneous field values: None first, then by type."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, str(value))

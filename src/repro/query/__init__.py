"""Query engine: a small query language with an index-aware planner.

The language covers what an index editor actually asks of a publication
database::

    author:"McAteer" AND year >= 1978
    surname = "Smith" OR surname = "Smyth"
    student:true AND volume = 95 ORDER BY page LIMIT 10

Pipeline: :mod:`lexer` → :mod:`parser` (AST in :mod:`ast_nodes`) →
:mod:`planner` (chooses an index access path and a residual filter) →
:mod:`executor` (streams records out of the store).  ``explain()`` renders
the chosen plan, which the E3/E4 experiments rely on.
"""

from repro.query.ast_nodes import (
    And,
    Comparison,
    Expr,
    Like,
    Membership,
    Not,
    Operator,
    Or,
    Query,
)
from repro.query.lexer import Token, TokenType, tokenize_query
from repro.query.parser import parse_query
from repro.query.planner import (
    CompositeLookup,
    CompositeRange,
    FullScan,
    IndexLookup,
    IndexMultiLookup,
    IndexRange,
    Plan,
    ScatterPlan,
    plan_query,
    plan_scatter,
)
from repro.query.executor import (
    PartialAggregate,
    PartialResult,
    QueryEngine,
    ShardedQueryEngine,
)

__all__ = [
    "Expr",
    "Comparison",
    "Membership",
    "Like",
    "And",
    "Or",
    "Not",
    "Operator",
    "Query",
    "Token",
    "TokenType",
    "tokenize_query",
    "parse_query",
    "Plan",
    "FullScan",
    "IndexLookup",
    "IndexMultiLookup",
    "IndexRange",
    "CompositeLookup",
    "CompositeRange",
    "plan_query",
    "plan_scatter",
    "ScatterPlan",
    "PartialAggregate",
    "PartialResult",
    "QueryEngine",
    "ShardedQueryEngine",
]

"""Tokenizer for the query language.

Token set: identifiers, integer/float literals, quoted strings, boolean
literals, comparison operators (``= != < <= > >= :``), parentheses, the
keywords ``AND OR NOT ORDER BY ASC DESC LIMIT`` (case-insensitive), and
``*`` (select-all).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import QuerySyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    BOOL = "bool"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    STAR = "*"
    IN = "in"
    LIKE = "like"
    AND = "and"
    OR = "or"
    NOT = "not"
    ORDER = "order"
    GROUP = "group"
    BY = "by"
    ASC = "asc"
    DESC = "desc"
    LIMIT = "limit"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: Any
    position: int


_KEYWORDS = {
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "order": TokenType.ORDER,
    "group": TokenType.GROUP,
    "by": TokenType.BY,
    "in": TokenType.IN,
    "like": TokenType.LIKE,
    "asc": TokenType.ASC,
    "desc": TokenType.DESC,
    "limit": TokenType.LIMIT,
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><=|>=|!=|=|<|>|:)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<star>\*)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)

_ESCAPE_RE = re.compile(r"\\(.)")


def tokenize_query(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`QuerySyntaxError` on junk.

    >>> [t.type.name for t in tokenize_query('year >= 1980 AND author:"Li"')]
    ['IDENT', 'OP', 'NUMBER', 'AND', 'IDENT', 'OP', 'STRING', 'EOF']
    """
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r}", text=text, position=position
            )
        kind = match.lastgroup
        raw = match.group(0)
        if kind == "ws":
            pass
        elif kind == "op":
            yield Token(TokenType.OP, raw, position)
        elif kind == "lparen":
            yield Token(TokenType.LPAREN, raw, position)
        elif kind == "rparen":
            yield Token(TokenType.RPAREN, raw, position)
        elif kind == "comma":
            yield Token(TokenType.COMMA, raw, position)
        elif kind == "star":
            yield Token(TokenType.STAR, raw, position)
        elif kind == "number":
            value: Any = float(raw) if "." in raw else int(raw)
            yield Token(TokenType.NUMBER, value, position)
        elif kind == "string":
            body = raw[1:-1]
            yield Token(TokenType.STRING, _ESCAPE_RE.sub(r"\1", body), position)
        elif kind == "ident":
            lowered = raw.lower()
            if lowered in _KEYWORDS:
                yield Token(_KEYWORDS[lowered], raw, position)
            elif lowered in ("true", "false"):
                yield Token(TokenType.BOOL, lowered == "true", position)
            else:
                yield Token(TokenType.IDENT, raw, position)
        position = match.end()
    yield Token(TokenType.EOF, None, position)

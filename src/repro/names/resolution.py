"""Entity resolution: clustering author-name variants that denote one person.

OCR'd front matter spells the same author several ways (the paper text
contains *Herdon/Hemdon*, *Johnson/Johson*, *Cumutte/Curnutte*).  The
resolver blocks candidate pairs by phonetic surname key, scores them with
:func:`repro.names.similarity.name_similarity`, and merges matches with a
union–find structure.  The result is a set of clusters with a canonical
representative each.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.names.model import PersonName
from repro.names.normalize import surname_key
from repro.names.similarity import name_similarity, soundex


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, size: int):
        self._parent = list(range(size))
        self._size = [1] * size

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def groups(self) -> dict[int, list[int]]:
        """Map each representative to the sorted members of its set."""
        out: dict[int, list[int]] = defaultdict(list)
        for i in range(len(self._parent)):
            out[self.find(i)].append(i)
        return dict(out)


@dataclass(frozen=True, slots=True)
class NameCluster:
    """A resolved cluster: one inferred person, several observed spellings."""

    canonical: PersonName
    members: tuple[PersonName, ...]

    @property
    def variant_count(self) -> int:
        """Number of distinct raw spellings in the cluster."""
        return len({m.raw or m.inverted() for m in self.members})


@dataclass(slots=True)
class ResolutionReport:
    """Outcome of a resolution run.

    ``assignments[i]`` is the cluster index (into :attr:`clusters`) of the
    i-th *input* name, preserving the caller's ordering for scoring.
    """

    clusters: list[NameCluster]
    assignments: list[int]
    pairs_scored: int
    pairs_merged: int

    @property
    def input_count(self) -> int:
        return len(self.assignments)

    def cluster_of(self, name: PersonName) -> NameCluster | None:
        """Find the cluster containing ``name`` (by identity key)."""
        key = name.identity_key()
        for cluster in self.clusters:
            if any(m.identity_key() == key for m in cluster.members):
                return cluster
        return None

    def score_against(
        self, truth: Sequence[Sequence[int]]
    ) -> tuple[float, float]:
        """Pairwise precision/recall against planted ground-truth clusters.

        ``truth`` lists ground-truth clusters as sequences of input indexes
        (the same indexes :attr:`assignments` is keyed by).
        """
        predicted_pairs = {
            (i, j)
            for i in range(len(self.assignments))
            for j in range(i + 1, len(self.assignments))
            if self.assignments[i] == self.assignments[j]
        }
        truth_pairs = set()
        for group in truth:
            members = sorted(group)
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    truth_pairs.add((members[x], members[y]))

        if not predicted_pairs:
            precision = 1.0  # no merges → no wrong merges
        else:
            precision = len(predicted_pairs & truth_pairs) / len(predicted_pairs)
        recall = (
            1.0
            if not truth_pairs
            else len(predicted_pairs & truth_pairs) / len(truth_pairs)
        )
        return precision, recall


class NameResolver:
    """Clusters :class:`PersonName` values that likely denote one person.

    Parameters
    ----------
    threshold:
        Minimum :func:`name_similarity` score to merge two names.
    block_by_initial:
        Also require matching first given-initial within a block, which
        sharply cuts candidate pairs on large corpora.  Names without a
        given name always stay eligible.
    """

    def __init__(self, *, threshold: float = 0.90, block_by_initial: bool = True):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.block_by_initial = block_by_initial

    def resolve(self, names: Sequence[PersonName]) -> ResolutionReport:
        """Cluster ``names`` and return a :class:`ResolutionReport`."""
        blocks = self._build_blocks(names)
        uf = UnionFind(len(names))
        seen_pairs: set[tuple[int, int]] = set()
        scored = 0
        merged = 0
        for indexes in blocks.values():
            for a_pos in range(len(indexes)):
                for b_pos in range(a_pos + 1, len(indexes)):
                    i, j = indexes[a_pos], indexes[b_pos]
                    pair = (i, j) if i < j else (j, i)
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    scored += 1
                    if name_similarity(names[i], names[j]) >= self.threshold:
                        if uf.union(i, j):
                            merged += 1

        clusters: list[NameCluster] = []
        member_indexes: list[list[int]] = []
        for members in uf.groups().values():
            group = [names[i] for i in members]
            clusters.append(
                NameCluster(canonical=_pick_canonical(group), members=tuple(group))
            )
            member_indexes.append(list(members))
        order = sorted(
            range(len(clusters)),
            key=lambda c: (
                surname_key(clusters[c].canonical.surname),
                clusters[c].canonical.given,
            ),
        )
        clusters = [clusters[c] for c in order]
        member_indexes = [member_indexes[c] for c in order]
        assignments = [0] * len(names)
        for cluster_id, indexes in enumerate(member_indexes):
            for i in indexes:
                assignments[i] = cluster_id
        return ResolutionReport(
            clusters=clusters,
            assignments=assignments,
            pairs_scored=scored,
            pairs_merged=merged,
        )

    def _build_blocks(self, names: Sequence[PersonName]) -> dict[str, list[int]]:
        """Candidate blocks: phonetic key ∪ surname-prefix key.

        Soundex alone misses OCR confusions that change a consonant's
        class (``Herdon``/``Hemdon``: H635 vs H535), so every name is also
        blocked on its first two surname letters.  A pair sharing either
        key meets; union–find makes double-counted pairs harmless.
        """
        blocks: dict[str, list[int]] = defaultdict(list)
        for i, name in enumerate(names):
            skey = surname_key(name.surname)
            keys = [f"sx:{soundex(skey)}", f"pf:{skey[:2]}"]
            if self.block_by_initial:
                initial = name.initials[:1]
                for key in keys:
                    blocks[f"{key}:{initial}"].append(i)
                    if initial:
                        # Names lacking a given name must still meet everyone.
                        blocks[f"{key}:"].append(i)
            else:
                for key in keys:
                    blocks[key].append(i)
        return blocks


def _pick_canonical(group: Iterable[PersonName]) -> PersonName:
    """Choose the representative spelling for a cluster.

    Preference order: the most frequent identity key, ties broken toward the
    longest given name (fullest information), then lexicographic stability.
    """
    members = list(group)
    counts = Counter(m.identity_key() for m in members)

    def rank(name: PersonName) -> tuple[int, int, str]:
        return (
            counts[name.identity_key()],
            len(name.given),
            # invert for deterministic ascending tie-break on the name itself
            name.inverted(),
        )

    return max(members, key=rank)


def resolve_names(
    names: Sequence[PersonName], *, threshold: float = 0.90
) -> ResolutionReport:
    """Convenience wrapper: resolve with default blocking."""
    return NameResolver(threshold=threshold).resolve(names)

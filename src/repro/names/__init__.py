"""Author-name handling: parsing, normalization, similarity, resolution.

The paper's artifact is keyed entirely by author names in inverted
(`Surname, Given M., Suffix`) form, decorated with honorifics (``Hon.``,
``Dr.``) and the student-material asterisk.  This package turns those raw
strings into structured :class:`~repro.names.model.PersonName` values,
provides the string-distance toolbox used for OCR-noise matching, and
clusters name variants that denote the same person.
"""

from repro.names.model import NameForm, PersonName
from repro.names.parser import parse_name, try_parse_name
from repro.names.normalize import (
    fold_case,
    normalization_key,
    strip_diacritics,
    strip_ocr_artifacts,
)
from repro.names.similarity import (
    damerau_levenshtein,
    jaccard_ngrams,
    jaro,
    jaro_winkler,
    levenshtein,
    name_similarity,
    soundex,
)
from repro.names.resolution import NameResolver, ResolutionReport, resolve_names

__all__ = [
    "NameForm",
    "PersonName",
    "parse_name",
    "try_parse_name",
    "fold_case",
    "normalization_key",
    "strip_diacritics",
    "strip_ocr_artifacts",
    "levenshtein",
    "damerau_levenshtein",
    "jaro",
    "jaro_winkler",
    "jaccard_ngrams",
    "soundex",
    "name_similarity",
    "NameResolver",
    "ResolutionReport",
    "resolve_names",
]

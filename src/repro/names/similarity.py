"""String- and name-similarity measures used for OCR-noise matching.

All measures are implemented from scratch on top of the standard library.
Distances operate on already-normalized keys (see
:mod:`repro.names.normalize`); :func:`name_similarity` composes them into a
single score over :class:`~repro.names.model.PersonName` pairs.
"""

from __future__ import annotations

from repro.names.model import PersonName
from repro.names.normalize import normalization_key, surname_key


def levenshtein(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Edit distance between ``a`` and ``b`` (insert/delete/substitute = 1).

    When ``max_distance`` is given the computation is banded: the function
    returns ``max_distance + 1`` as soon as the true distance provably
    exceeds the bound, which keeps blocking-based resolution fast.

    >>> levenshtein("kitten", "sitting")
    3
    >>> levenshtein("abc", "abc")
    0
    >>> levenshtein("abcdef", "zzzzzz", max_distance=2)
    3
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if max_distance is not None and len(b) - len(a) > max_distance:
        return max_distance + 1

    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        row_min = j
        for i, ca in enumerate(a, start=1):
            cost = min(
                previous[i] + 1,  # deletion
                current[i - 1] + 1,  # insertion
                previous[i - 1] + (ca != cb),  # substitution
            )
            current.append(cost)
            row_min = min(row_min, cost)
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def damerau_levenshtein(a: str, b: str) -> int:
    """Edit distance that also counts adjacent transpositions as one edit.

    This is the restricted (optimal string alignment) variant, which is the
    right model for OCR and typing noise.

    >>> damerau_levenshtein("ca", "ac")
    1
    >>> damerau_levenshtein("herdon", "hemdon")
    1
    """
    if a == b:
        return 0
    rows = len(a) + 1
    cols = len(b) + 1
    dist = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        dist[i][0] = i
    for j in range(cols):
        dist[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = a[i - 1] != b[j - 1]
            best = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                best = min(best, dist[i - 2][j - 2] + 1)
            dist[i][j] = best
    return dist[-1][-1]


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1].

    >>> round(jaro("martha", "marhta"), 4)
    0.9444
    >>> jaro("", "") == 1.0
    True
    """
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)

    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ch:
                a_matched[i] = b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched subsequences.
    b_indices = [j for j, used in enumerate(b_matched) if used]
    transpositions = 0
    k = 0
    for i, used in enumerate(a_matched):
        if used:
            if a[i] != b[b_indices[k]]:
                transpositions += 1
            k += 1
    transpositions //= 2

    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, *, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity: Jaro boosted for common prefixes (≤ 4 chars).

    >>> jaro_winkler("mcateer", "mcateer")
    1.0
    >>> jaro_winkler("dixon", "dicksonx") > jaro("dixon", "dicksonx")
    True
    """
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix == 4:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def jaccard_ngrams(a: str, b: str, *, n: int = 2) -> float:
    """Jaccard similarity of the character n-gram sets of ``a`` and ``b``.

    Strings shorter than ``n`` are padded conceptually by using the whole
    string as a single gram.

    >>> jaccard_ngrams("night", "nacht") < jaccard_ngrams("night", "nights")
    True
    """
    grams_a = _ngrams(a, n)
    grams_b = _ngrams(b, n)
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    if not union:
        return 0.0
    return len(grams_a & grams_b) / len(union)


def _ngrams(text: str, n: int) -> set[str]:
    if len(text) < n:
        return {text} if text else set()
    return {text[i : i + n] for i in range(len(text) - n + 1)}


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(text: str) -> str:
    """American Soundex code of ``text`` (4 characters, e.g. ``"R163"``).

    Non-alphabetic characters are ignored; empty input yields ``"0000"``.

    >>> soundex("Robert")
    'R163'
    >>> soundex("Rupert")
    'R163'
    >>> soundex("Ashcraft")
    'A261'
    """
    letters = [c for c in text.casefold() if c.isalpha()]
    if not letters:
        return "0000"
    first = letters[0]
    code = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        digit = _SOUNDEX_CODES.get(ch, "")
        if digit and digit != previous:
            code.append(digit)
            if len(code) == 4:
                break
        if ch not in "hw":  # h/w do not reset the run; vowels do
            previous = digit
    return "".join(code).ljust(4, "0")


def name_similarity(a: PersonName, b: PersonName) -> float:
    """Composite similarity in [0, 1] between two parsed names.

    Weighted blend: surname Jaro–Winkler (dominant), given-name Jaro–Winkler
    over normalized keys, an initials-compatibility term, and a suffix
    agreement gate.  Different generational suffixes denote different people
    and clamp the score to 0.

    >>> from repro.names.parser import parse_name
    >>> herdon = parse_name("Herdon, Judith")
    >>> hemdon = parse_name("Hemdon, Judith")
    >>> name_similarity(herdon, hemdon) > 0.9
    True
    >>> jr = parse_name("Smith, John, Jr.")
    >>> iii = parse_name("Smith, John, III")
    >>> name_similarity(jr, iii)
    0.0
    """
    if a.suffix and b.suffix and a.suffix != b.suffix:
        return 0.0

    s_a = surname_key(a.surname)
    s_b = surname_key(b.surname)
    # OCR damage is a small number of character edits; surnames further
    # apart than that are different names no matter how high Jaro–Winkler
    # runs on their shared prefix ("Whisker" vs "White").
    if s_a != s_b and damerau_levenshtein(s_a, s_b) > 2:
        return 0.0
    surname_score = jaro_winkler(s_a, s_b)

    g_a = normalization_key(a.given)
    g_b = normalization_key(b.given)

    # Two clearly different full first names denote different people even
    # under an identical surname ("Johnson, Earl" vs "Johnson, Edward");
    # only small edit distances are plausible OCR variants.
    first_a = g_a.split()[0] if g_a else ""
    first_b = g_b.split()[0] if g_b else ""
    if (
        len(first_a) > 2
        and len(first_b) > 2
        and damerau_levenshtein(first_a, first_b) > 2
    ):
        return 0.0
    if g_a and g_b:
        given_score = jaro_winkler(g_a, g_b)
        # Initial-vs-full-name compatibility: "J" matches "Judith" — but
        # only when one side actually is an initial; two different full
        # names sharing a first letter ("Earl"/"Edward") are not variants.
        if given_score < 0.8 and _initials_compatible(g_a, g_b):
            given_score = max(given_score, 0.85)
    elif g_a or g_b:
        given_score = 0.6  # one side missing: weak evidence either way
    else:
        given_score = 1.0

    return 0.65 * surname_score + 0.35 * given_score


def _initials_compatible(a: str, b: str) -> bool:
    """True when the given names match as initial-vs-name expansions.

    Each aligned token pair must share its first letter **and** at least
    one of the two tokens must be a bare initial (length 1): ``"j timothy"``
    is compatible with ``"john timothy"`` via its initial, but
    ``"earl"``/``"edward"`` are two different full names.
    """
    ta = a.split()
    tb = b.split()
    if not ta or not tb:
        return False
    saw_initial_expansion = False
    for x, y in zip(ta, tb):
        if x[0] != y[0]:
            return False
        if len(x) == 1 or len(y) == 1:
            saw_initial_expansion = True
        elif x != y:
            return False  # two differing full tokens are not variants
    return saw_initial_expansion

"""Parsing raw author-name strings into :class:`PersonName` values.

The primary input format is the inverted form used by author indexes::

    Abdalla, Tarek F.*
    Arceneaux, Webster J., III
    Byrd, Hon. Robert C.
    Fox, Fred L., 1I*          (OCR: "1I" is "II")
    Webster-O'Keefe, M. Katherine

Direct form (``Given Surname``) is also accepted for ingest paths that see
bylines instead of index rows.
"""

from __future__ import annotations

import re

from repro.errors import NameParseError
from repro.names.model import (
    NameForm,
    PersonName,
    canonical_honorific,
    canonical_suffix,
)
from repro.names.normalize import strip_ocr_artifacts

#: Surname particles that attach to the following token in direct form
#: ("Ludwig van Beethoven" -> surname "van Beethoven").
_PARTICLES = frozenset(
    {"van", "von", "de", "der", "den", "del", "della", "di", "da", "la", "le", "st.", "ter"}
)

#: Characters OCR commonly substitutes for the Roman-numeral ``I``.
_ROMAN_CONFUSIONS = str.maketrans({"l": "I", "1": "I", "|": "I", "!": "I", "i": "I"})

_TRAILING_STUDENT = re.compile(r"\*\s*$")
_COMMA_SPLIT = re.compile(r"\s*,\s*")


def _ocr_suffix(token: str) -> str | None:
    """Canonical suffix for ``token``, tolerating OCR ``l``/``1`` for ``I``.

    >>> _ocr_suffix("ll")
    'II'
    >>> _ocr_suffix("1I")
    'II'
    >>> _ocr_suffix("Jr.")
    'Jr.'
    >>> _ocr_suffix("Leon") is None
    True
    """
    direct = canonical_suffix(token)
    if direct is not None:
        return direct
    cleaned = token.strip().rstrip(",")
    if cleaned.endswith("."):
        # A trailing period marks a given-name initial ("Larry V."), never
        # a Roman-numeral suffix; only Jr./Sr. carry periods, and those
        # were handled by canonical_suffix above.
        return None
    repaired = cleaned.translate(_ROMAN_CONFUSIONS)
    # Only accept repairs that are pure Roman-numeral strings; anything with
    # a surviving non-I/V character was a real word, not a numeral.
    if repaired and set(repaired) <= {"I", "V"}:
        return canonical_suffix(repaired)
    return None


def _split_honorific(text: str) -> tuple[str, str]:
    """Split a leading honorific off ``text``; returns (honorific, rest)."""
    parts = text.split(None, 1)
    if not parts:
        return "", text
    honorific = canonical_honorific(parts[0])
    if honorific is None:
        return "", text
    rest = parts[1] if len(parts) > 1 else ""
    return honorific, rest


def parse_name(raw: str, *, form: NameForm | None = None) -> PersonName:
    """Parse ``raw`` into a :class:`PersonName`.

    Parameters
    ----------
    raw:
        The name string.  A trailing ``*`` marks student material.
    form:
        Force a syntactic form.  When ``None`` the form is inferred: a comma
        means inverted, otherwise direct (or surname-only for one token).

    Raises
    ------
    NameParseError
        If the string is empty or unparseable.
    """
    original = raw
    text = strip_ocr_artifacts(raw)
    if not text:
        raise NameParseError("empty name", text=original)

    is_student = bool(_TRAILING_STUDENT.search(text))
    if is_student:
        text = _TRAILING_STUDENT.sub("", text).strip()
    if not text:
        raise NameParseError("name contains only a student marker", text=original)

    if form is None:
        form = NameForm.INVERTED if "," in text else _infer_direct_form(text)

    if form is NameForm.INVERTED:
        name = _parse_inverted(text, original)
    elif form is NameForm.DIRECT:
        name = _parse_direct(text, original)
    else:
        name = PersonName(surname=text, raw=original, form=NameForm.SURNAME_ONLY)

    if is_student:
        name = name.with_student(True)
    return name


def try_parse_name(raw: str, *, form: NameForm | None = None) -> PersonName | None:
    """Like :func:`parse_name` but returns ``None`` instead of raising."""
    try:
        return parse_name(raw, form=form)
    except NameParseError:
        return None


def _infer_direct_form(text: str) -> NameForm:
    return NameForm.SURNAME_ONLY if len(text.split()) == 1 else NameForm.DIRECT


def _parse_inverted(text: str, original: str) -> PersonName:
    parts = _COMMA_SPLIT.split(text)
    parts = [p for p in parts if p]
    if not parts:
        raise NameParseError("no name content around commas", text=original)

    surname = parts[0]
    rest = parts[1:]

    suffix = ""
    if rest:
        candidate = _ocr_suffix(rest[-1])
        if candidate is not None and (len(rest) > 1 or _looks_like_bare_suffix(rest[-1])):
            suffix = candidate
            rest = rest[:-1]

    given_text = ", ".join(rest)
    honorific, given_text = _split_honorific(given_text)

    # A suffix can also ride inside the given segment without its own comma
    # ("George W. III"): peel it off the final whitespace token.
    if not suffix and given_text:
        tokens = given_text.split()
        candidate = _ocr_suffix(tokens[-1])
        if candidate is not None and len(tokens) > 1:
            suffix = candidate
            given_text = " ".join(tokens[:-1])

    return PersonName(
        surname=surname,
        given=given_text.strip(),
        suffix=suffix,
        honorific=honorific,
        raw=original,
        form=NameForm.INVERTED,
    )


def _looks_like_bare_suffix(token: str) -> bool:
    """Guard against eating a one-token given name that resembles a numeral.

    ``"Watts, V"`` is ambiguous; we treat a lone ``V`` (or ``II``…) after
    the surname as a given-name initial unless it carries a period-free
    multi-char numeral shape (``III``) or the Jr./Sr. spellings.
    """
    cleaned = token.strip().strip(",")
    if canonical_suffix(cleaned) in {"Jr.", "Sr."}:
        return True
    repaired = cleaned.translate(_ROMAN_CONFUSIONS)
    return len(repaired) >= 2 and set(repaired) <= {"I", "V"}


def _parse_direct(text: str, original: str) -> PersonName:
    # Direct form may still carry a comma before the suffix
    # ("John Smith, Jr."); commas are separators here, never content.
    tokens = [t for t in text.replace(",", " ").split() if t]
    if not tokens:
        raise NameParseError("empty direct-form name", text=original)

    honorific = canonical_honorific(tokens[0]) or ""
    if honorific:
        tokens = tokens[1:]
        if not tokens:
            raise NameParseError("honorific without a name", text=original)

    suffix = ""
    if len(tokens) >= 2:
        candidate = _ocr_suffix(tokens[-1])
        if candidate is not None:
            suffix = candidate
            tokens = tokens[:-1]

    if len(tokens) == 1:
        return PersonName(
            surname=tokens[0],
            suffix=suffix,
            honorific=honorific,
            raw=original,
            form=NameForm.DIRECT,
        )

    # Glue particles onto the surname: "Joan Van Tol" -> surname "Van Tol".
    surname_start = len(tokens) - 1
    while surname_start > 1 and tokens[surname_start - 1].casefold() in _PARTICLES:
        surname_start -= 1

    surname = " ".join(tokens[surname_start:])
    given = " ".join(tokens[:surname_start])
    return PersonName(
        surname=surname,
        given=given,
        suffix=suffix,
        honorific=honorific,
        raw=original,
        form=NameForm.DIRECT,
    )

"""Name normalization: case/diacritic folding and OCR artifact cleanup.

These functions produce *matching keys*, not display strings: they are
lossy on purpose.  Display formatting lives on
:class:`repro.names.model.PersonName`; collation keys live in
:mod:`repro.core.collation`.
"""

from __future__ import annotations

import re
import unicodedata

# OCR confusions that appear in scanned front matter.  Keys are regex
# fragments applied to *whole tokens* of the matching key, so "ll" -> "II"
# only fires where a generational suffix is expected (handled by the parser);
# here we only fix intra-word artifacts that are safe in any position.
_APOSTROPHE_VARIANTS = re.compile(r"[‘’ʼ`']")
_MULTI_SPACE = re.compile(r"\s+")
_NON_NAME_CHARS = re.compile(r"[^a-z0-9\- ]")


def strip_diacritics(text: str) -> str:
    """Remove combining marks: ``"Müller"`` → ``"Muller"``.

    Uses NFKD decomposition and drops combining code points, which covers
    the Latin-script diacritics that occur in author names.
    """
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def fold_case(text: str) -> str:
    """Aggressive case folding suitable for matching keys."""
    return text.casefold()


def strip_ocr_artifacts(text: str) -> str:
    """Remove noise characters that scanners introduce into names.

    - normalizes curly/backtick apostrophes to ``'``
    - drops stray brackets and pipes (column-rule bleed-through)
    - collapses runs of whitespace

    The result is still a display-ish string (case preserved).

    >>> strip_ocr_artifacts("W’mck,  Michael |W.")
    "W'mck, Michael W."
    """
    text = _APOSTROPHE_VARIANTS.sub("'", text)
    text = text.replace("|", " ").replace("[", " ").replace("]", " ")
    text = _MULTI_SPACE.sub(" ", text)
    return text.strip()


def normalization_key(text: str) -> str:
    """Canonical matching key for a name fragment.

    Lower-cased, diacritics stripped, apostrophes removed, punctuation other
    than hyphens dropped, whitespace collapsed.

    >>> normalization_key("O’Brien")
    'obrien'
    >>> normalization_key("Bates-Smith,  Pamela A.")
    'bates-smith pamela a'
    """
    text = strip_ocr_artifacts(text)
    text = strip_diacritics(text)
    text = fold_case(text)
    text = text.replace("'", "")
    text = text.replace(".", " ").replace(",", " ")
    text = _NON_NAME_CHARS.sub("", text)
    return _MULTI_SPACE.sub(" ", text).strip()


def surname_key(surname: str) -> str:
    """Matching key for surnames: :func:`normalization_key` minus hyphens.

    Hyphenated and spaced double surnames match each other
    (``Bates-Smith`` vs ``Bates Smith``).
    """
    return normalization_key(surname).replace("-", " ")


def equivalent_names(a: str, b: str) -> bool:
    """True when two raw name fragments normalize to the same key."""
    return normalization_key(a) == normalization_key(b)

"""Structured representation of person names.

The model follows the inverted bibliographic form used by author indexes::

    Surname, Given M., Suffix

optionally preceded by an honorific (``Hon.``, ``Dr.``) and optionally
followed by the student-material marker ``*`` (the paper's footnote 1:
"Student material is indicated with an asterisk").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ValidationError

#: Generational suffixes in their canonical spelling, mapped to a sort rank.
#: Rank order follows bibliographic convention: the bare name sorts first,
#: then Jr., Sr., then numerals in numeric order.
SUFFIX_RANKS: dict[str, int] = {
    "": 0,
    "Jr.": 1,
    "Sr.": 2,
    "II": 3,
    "III": 4,
    "IV": 5,
    "V": 6,
}

#: Accepted spellings for each canonical suffix, lower-cased.  The OCR'd
#: paper text writes ``II`` as ``ll``/``1I``/``11`` and ``III`` as ``lII``
#: etc.; those variants are handled by the parser's OCR pre-pass, not here.
SUFFIX_SPELLINGS: dict[str, str] = {
    "jr": "Jr.",
    "jr.": "Jr.",
    "junior": "Jr.",
    "sr": "Sr.",
    "sr.": "Sr.",
    "senior": "Sr.",
    "ii": "II",
    "iii": "III",
    "iv": "IV",
    "v": "V",
}

#: Honorifics recognized in front of a given name, canonical spelling.
HONORIFICS: dict[str, str] = {
    "hon": "Hon.",
    "hon.": "Hon.",
    "dr": "Dr.",
    "dr.": "Dr.",
    "rev": "Rev.",
    "rev.": "Rev.",
    "prof": "Prof.",
    "prof.": "Prof.",
    "judge": "Judge",
    "justice": "Justice",
}


class NameForm(enum.Enum):
    """How a raw name string was written."""

    INVERTED = "inverted"  #: ``Surname, Given``
    DIRECT = "direct"  #: ``Given Surname``
    SURNAME_ONLY = "surname_only"  #: a bare surname


@dataclass(frozen=True, slots=True)
class PersonName:
    """A parsed person name.

    Attributes
    ----------
    surname:
        Family name, possibly hyphenated or multi-word (``Bates-Smith``,
        ``Van Damme``).  Never empty.
    given:
        Given names and initials as written (``Tarek F.``), empty when the
        source only had a surname.
    suffix:
        Canonical generational suffix (one of :data:`SUFFIX_RANKS`) or ``""``.
    honorific:
        Canonical honorific (``Hon.``) or ``""``.
    is_student:
        True when the source carried the student-material asterisk.
    raw:
        The original string, preserved verbatim for provenance.
    form:
        Which syntactic form the raw string used.
    """

    surname: str
    given: str = ""
    suffix: str = ""
    honorific: str = ""
    is_student: bool = False
    raw: str = ""
    form: NameForm = NameForm.INVERTED

    def __post_init__(self) -> None:
        if not self.surname or not self.surname.strip():
            raise ValidationError("surname must be non-empty", field="surname")
        if self.suffix not in SUFFIX_RANKS:
            raise ValidationError(
                f"suffix must be canonical, got {self.suffix!r}", field="suffix"
            )

    @property
    def suffix_rank(self) -> int:
        """Sort rank of the generational suffix (bare name first)."""
        return SUFFIX_RANKS[self.suffix]

    @property
    def initials(self) -> str:
        """Upper-case initials of the given names, e.g. ``"TF"``."""
        parts = [p for p in self.given.replace(".", " ").split() if p]
        return "".join(p[0].upper() for p in parts)

    def inverted(self, *, student_marker: bool = False) -> str:
        """Render in index form: ``Surname, Hon. Given M., Suffix*``.

        ``student_marker`` appends the asterisk when :attr:`is_student` is
        set, matching the paper's convention.
        """
        pieces = [self.surname]
        given = f"{self.honorific} {self.given}".strip()
        if given:
            pieces.append(given)
        if self.suffix:
            pieces.append(self.suffix)
        text = ", ".join(pieces)
        if student_marker and self.is_student:
            text += "*"
        return text

    def direct(self) -> str:
        """Render in natural reading order: ``Hon. Given M. Surname, Suffix``."""
        front = " ".join(p for p in (self.honorific, self.given, self.surname) if p)
        if self.suffix:
            return f"{front}, {self.suffix}"
        return front

    def with_student(self, is_student: bool) -> "PersonName":
        """Return a copy with the student flag replaced."""
        return PersonName(
            surname=self.surname,
            given=self.given,
            suffix=self.suffix,
            honorific=self.honorific,
            is_student=is_student,
            raw=self.raw,
            form=self.form,
        )

    def identity_key(self) -> tuple[str, str, str]:
        """Key identifying the same *person* across student/non-student rows.

        Honorifics and the student marker are presentation, not identity; the
        suffix is identity (``Jr.`` and ``III`` are different people).
        """
        return (self.surname.casefold(), self.given.casefold(), self.suffix)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.inverted(student_marker=True)


def canonical_suffix(token: str) -> str | None:
    """Map a raw suffix token to its canonical spelling.

    Returns ``None`` when the token is not a recognized suffix.  Trailing
    commas/periods are tolerated; Roman numerals are upper-cased.

    >>> canonical_suffix("jr")
    'Jr.'
    >>> canonical_suffix("III")
    'III'
    >>> canonical_suffix("Esq") is None
    True
    """
    cleaned = token.strip().strip(",").casefold()
    return SUFFIX_SPELLINGS.get(cleaned)


def canonical_honorific(token: str) -> str | None:
    """Map a raw honorific token to its canonical spelling, or ``None``."""
    return HONORIFICS.get(token.strip().casefold())

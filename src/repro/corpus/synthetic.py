"""Seeded synthetic corpora for the scale experiments.

The reference corpus has 271 records; the benchmarks need thousands.  The
generator produces publication records whose *distributions* mirror the
artifact: a heavy-tailed author productivity curve (a few authors write
many pieces), ~40% student material, 1–4 authors per piece, volume/year
pairs that advance together, and titles built from the artifact's legal
vocabulary.

Everything is driven by one ``random.Random(seed)`` so corpora are exactly
reproducible; :meth:`SyntheticCorpus.noisy_variants` additionally plants
OCR damage with known ground truth for the E5 resolution experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.citation.model import Citation
from repro.core.entry import PublicationRecord
from repro.names.model import PersonName
from repro.textproc.ocr import OCRNoiseModel

_SURNAMES = [
    "Abbott", "Adkins", "Alvarez", "Anderson", "Archer", "Atkinson",
    "Bailey", "Barnes", "Bates-Smith", "Beasley", "Bell", "Bennett",
    "Blake", "Bowman", "Brewer", "Brown", "Bryant", "Burke", "Byrd",
    "Caldwell", "Campbell", "Cardi", "Carpenter", "Chambers", "Chapman",
    "Clark", "Cleckley", "Cole", "Collins", "Conner", "Cooper", "Cox",
    "Crain-Mountney", "Crawford", "Curry", "Dalton", "Daniels", "Davis",
    "Dawson", "Deem", "Delgado", "Dennison", "Dickerson", "DiSalvo",
    "Dixon", "Donley", "Dorsey", "Duffy", "Dunbar", "Eaton", "Elkins",
    "Ellis", "Emerson", "Epstein", "Evans", "Farley", "Farrell",
    "Ferguson", "Fisher", "FitzGerald", "Flannery", "Fleming", "Fox",
    "Franklin", "Frazier", "Friedberg", "Fuller", "Galloway", "Garcia",
    "Gibson", "Goodwin", "Graham", "Gray", "Greer", "Griffith", "Hagen",
    "Hall", "Hamilton", "Harper", "Harris", "Hayes", "Henderson",
    "Herndon", "Higginbotham", "Hill", "Hogg", "Holland", "Hooks",
    "Horwitz", "Houston", "Hughes", "Hurney", "Ingram", "Jackson",
    "Jaffe", "Jenkins", "Johnson", "Jones", "Jordan", "Kaplan", "Keeley",
    "Keller", "Kennedy", "Kincaid", "King", "Kurland", "Lane", "Lapp",
    "Lavender", "Lawrence", "Levine", "Lewin", "Lewis", "Lilly",
    "Lorensen", "Lovell", "Lynd", "MacLeod", "Maddox", "Marshall",
    "Martin", "Mason", "Matthews", "Maxwell", "McAteer", "McBride",
    "McCauley", "McCune", "McDowell", "McGinley", "McGraw", "McLaughlin",
    "Meadows", "Mercer", "Miller", "Minow", "Mitchell", "Mooney", "Moran",
    "Morgan", "Morris", "Morse", "Murphy", "Neely", "Nichol", "Norman",
    "O'Brien", "O'Hanlon", "Olson", "Ordman", "Osborne", "Palmer",
    "Parker", "Parsons", "Patterson", "Perry", "Peterson", "Philipps",
    "Porter", "Price", "Prunty", "Query", "Quick", "Ramsey", "Randolph",
    "Reed", "Reynolds", "Rice", "Richards", "Riley", "Roberts",
    "Robinson", "Rockefeller", "Rogers", "Ross", "Rowe", "Russell",
    "Ryan", "Saunders", "Schauer", "Scott", "Sebok", "Shaffer", "Sharpe",
    "Shepherd", "Simmons", "Slack", "Smith", "Snyder", "Solomons",
    "Southworth", "Spieler", "Squillace", "Stanley", "Starcher", "Steele",
    "Stephens", "Stewart", "Stone", "Strong", "Subotnik", "Sullivan",
    "Summers", "Sutton", "Tarkenton", "Taylor", "Thomas", "Thompson",
    "Tinney", "Trumka", "Tucker", "Turner", "Tushnet", "Udall",
    "Van Damme", "Van Tol", "Vaughn", "Wagner", "Wald", "Walker",
    "Wallace", "Ward", "Warner", "Watson", "Webb", "Webster-O'Keefe",
    "Weller", "Wells", "West", "Whisker", "White", "Wilkinson",
    "Williams", "Wilson", "Winter", "Wood", "Woodrum", "Wright", "Yost",
    "Young", "Zimarowski", "Zlotnick",
]

_GIVEN = [
    "Alice", "Amy", "Ann", "Anthony", "Barbara", "Benjamin", "Bruce",
    "Carl", "Carol", "Charles", "Christopher", "Claire", "Daniel",
    "David", "Deborah", "Dennis", "Diana", "Donald", "Dorothy", "Earl",
    "Edward", "Elaine", "Elizabeth", "Ellen", "Emily", "Eric", "Frank",
    "Gary", "George", "Gerald", "Grace", "Harold", "Harry", "Helen",
    "Henry", "Irene", "James", "Jane", "Janet", "Jean", "Jeffrey",
    "Jennifer", "Joan", "John", "Joseph", "Joshua", "Judith", "Karen",
    "Katherine", "Keith", "Kenneth", "Kevin", "Larry", "Laura",
    "Lawrence", "Linda", "Lloyd", "Louise", "Margaret", "Maria", "Mark",
    "Martha", "Martin", "Mary", "Michael", "Nancy", "Patricia",
    "Patrick", "Paul", "Peter", "Philip", "Rachel", "Ralph", "Raymond",
    "Rebecca", "Richard", "Robert", "Roger", "Ronald", "Rosemary",
    "Russell", "Ruth", "Samuel", "Sarah", "Scott", "Sharon", "Stephen",
    "Steven", "Susan", "Thomas", "Timothy", "Vincent", "Walter",
    "William",
]

_SUFFIXES = ["", "", "", "", "", "", "", "", "Jr.", "II", "III", "IV"]
_HONORIFICS = ["", "", "", "", "", "", "", "", "", "Hon.", "Dr."]

_TITLE_OPENERS = [
    "A Critique of", "A Survey of", "An Analysis of", "The Future of",
    "Reforming", "Rethinking", "The Law of", "Developments in",
    "A Proposal for", "Judicial Review of", "The Limits of",
    "Constitutional Dimensions of", "An Economic Analysis of",
    "A Practitioner's Guide to", "Essay-On",
]

_TITLE_TOPICS = [
    "Surface Mining Reclamation", "the Clean Water Act",
    "Workers' Compensation", "Black Lung Benefits", "Coal Leasing",
    "the Uniform Commercial Code", "Comparative Negligence",
    "Habeas Corpus", "Mineral Rights", "Labor Arbitration",
    "Strict Products Liability", "Ad Valorem Taxation",
    "Double Jeopardy", "Equitable Distribution", "the Establishment Clause",
    "Grievance Mediation", "Mine Safety Standards", "Secondary Boycotts",
    "Intestate Succession", "Prejudgment Remedies", "Acid Rain Controls",
    "Attorney Malpractice", "Jury Selection", "the Eleventh Amendment",
]

_TITLE_QUALIFIERS = [
    "in West Virginia", "Under the 1977 Act", "After the Amendments",
    "in the Coal Fields", "in the Federal Courts", "Revisited",
    ": A Case Study", ": Problems and Proposals", ": An Overview",
    ": The View from the Bench", "in the Appalachian Economy",
    ": A Comparative Perspective", "", "", "",
]


@dataclass(frozen=True, slots=True)
class SyntheticCorpusConfig:
    """Generator parameters.

    Attributes
    ----------
    size:
        Number of publication records.
    seed:
        RNG seed; same config → byte-identical corpus.
    author_pool:
        Distinct authors to draw from; productivity is heavy-tailed, so a
        pool smaller than ``size`` yields multi-article authors like the
        artifact's.  Defaults to ``max(size // 2, 10)``.
    student_share:
        Probability a record is student material (the artifact: ~0.47).
    coauthor_rate:
        Probability of each additional author beyond the first (geometric,
        capped at 4 authors).
    first_volume / first_year:
        Citation numbering anchors.
    volumes:
        Number of annual volumes the corpus spans.
    """

    size: int = 1000
    seed: int = 0
    author_pool: int | None = None
    student_share: float = 0.47
    coauthor_rate: float = 0.18
    first_volume: int = 69
    first_year: int = 1966
    volumes: int = 27

    def resolved_pool(self) -> int:
        if self.author_pool is not None:
            return self.author_pool
        return max(self.size // 2, 10)


class SyntheticCorpus:
    """Deterministic corpus generator (see module docstring).

    >>> corpus = SyntheticCorpus(SyntheticCorpusConfig(size=50, seed=7))
    >>> records = corpus.records()
    >>> len(records)
    50
    >>> records == SyntheticCorpus(SyntheticCorpusConfig(size=50, seed=7)).records()
    True
    """

    def __init__(self, config: SyntheticCorpusConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self._authors = self._make_author_pool()
        self._records: list[PublicationRecord] | None = None

    # -- authors ------------------------------------------------------------

    def _make_author_pool(self) -> list[PersonName]:
        """Distinct, *separable* authors.

        Two different pool members must not be confusable with each other
        (``Duffy, Diana`` vs ``Duffy, Diana, Jr.``): planted ground truth
        that no resolver could distinguish would only measure the collision
        rate of the generator, not resolution quality.  Candidates too
        similar to an existing same-surname author are redrawn.
        """
        from repro.names.similarity import name_similarity

        rng = self._rng
        pool: list[PersonName] = []
        by_surname: dict[str, list[PersonName]] = {}
        seen: set[tuple] = set()
        while len(pool) < self.config.resolved_pool():
            surname = rng.choice(_SURNAMES)
            given_first = rng.choice(_GIVEN)
            style = rng.random()
            if style < 0.45:
                given = f"{given_first} {rng.choice(_GIVEN)[0]}."
            elif style < 0.65:
                given = f"{given_first[0]}. {rng.choice(_GIVEN)}"
            else:
                given = given_first
            name = PersonName(
                surname=surname,
                given=given,
                suffix=rng.choice(_SUFFIXES),
                honorific=rng.choice(_HONORIFICS),
            )
            key = name.identity_key()
            if key in seen:
                continue
            rivals = by_surname.get(surname.casefold(), [])
            if any(name_similarity(name, rival) >= 0.80 for rival in rivals):
                continue
            seen.add(key)
            by_surname.setdefault(surname.casefold(), []).append(name)
            pool.append(name)
        return pool

    def _pick_author(self) -> PersonName:
        # Heavy tail: squaring a uniform biases toward low indexes, so the
        # pool's head authors accumulate many articles.
        u = self._rng.random()
        index = int((u * u) * len(self._authors))
        return self._authors[min(index, len(self._authors) - 1)]

    # -- records -------------------------------------------------------------

    def records(self) -> list[PublicationRecord]:
        """The corpus (generated once, cached)."""
        if self._records is None:
            self._records = [self._make_record(i) for i in range(self.config.size)]
        return self._records

    def _make_record(self, i: int) -> PublicationRecord:
        rng = self._rng
        cfg = self.config
        authors = [self._pick_author()]
        while len(authors) < 4 and rng.random() < cfg.coauthor_rate:
            candidate = self._pick_author()
            if all(c.identity_key() != candidate.identity_key() for c in authors):
                authors.append(candidate)
        volume_offset = rng.randrange(cfg.volumes)
        volume = cfg.first_volume + volume_offset
        year = cfg.first_year + volume_offset + rng.choice((0, 0, 0, 1))
        citation = Citation(volume=volume, page=1 + rng.randrange(1400), year=year)
        title = " ".join(
            part
            for part in (
                rng.choice(_TITLE_OPENERS),
                rng.choice(_TITLE_TOPICS),
                rng.choice(_TITLE_QUALIFIERS),
            )
            if part
        ).replace(" :", ":")
        return PublicationRecord(
            record_id=i + 1,
            title=title,
            authors=tuple(authors),
            citation=citation,
            is_student_work=rng.random() < cfg.student_share,
        )

    # -- planted OCR noise (E5 ground truth) -------------------------------------

    def noisy_variants(
        self, *, noise_rate: float = 2.0, variants_per_author: int = 3
    ) -> tuple[list[PersonName], list[list[int]]]:
        """OCR-damaged name variants with ground-truth clusters.

        Returns ``(names, truth)`` where ``truth`` lists, per real author,
        the indexes into ``names`` that denote that author.  The first
        variant of each author is clean; the rest pass through
        :class:`OCRNoiseModel` (surname only, the dominant damage channel
        in the artifact).
        """
        model = OCRNoiseModel(rate=noise_rate, rng=random.Random(self.config.seed + 1))
        names: list[PersonName] = []
        truth: list[list[int]] = []
        for author in self._authors:
            group: list[int] = []
            for v in range(variants_per_author):
                surname = author.surname if v == 0 else model.corrupt(author.surname)
                if not surname.strip():
                    surname = author.surname
                group.append(len(names))
                names.append(
                    PersonName(
                        surname=surname,
                        given=author.given,
                        suffix=author.suffix,
                        honorific=author.honorific,
                    )
                )
            truth.append(group)
        return names, truth


def generate_records(size: int, seed: int = 0) -> Sequence[PublicationRecord]:
    """Shorthand used by benchmarks: ``generate_records(5000, seed=1)``."""
    return SyntheticCorpus(SyntheticCorpusConfig(size=size, seed=seed)).records()
